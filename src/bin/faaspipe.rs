//! The `faaspipe` command-line tool.
//!
//! ```text
//! faaspipe table1 [--records N] [--exchange B] [--io-concurrency K] [--trace-out F] [--jobs N]
//!                                         reproduce the paper's Table 1
//! faaspipe run <spec.json> [--records N] [--seed S] [--io-concurrency K] [--trace-out F]
//!                                         execute a JSON workflow spec
//! faaspipe synth --records N --out F      generate synthetic WGBS bedMethyl
//! faaspipe compress <in.bed> <out.mc>     METHCOMP-compress a bedMethyl file
//! faaspipe decompress <in.mc> <out.bed>   decompress a METHCOMP archive
//! faaspipe tune --gb X [--chunks N]       recommend a shuffle worker count
//! faaspipe cluster [--tenants N] [--rate R] [--horizon S]
//!                                         multi-tenant cluster simulation
//! ```
//!
//! Exit status is non-zero on any error; messages go to stderr.

use std::process::ExitCode;

use bytes::Bytes;

use faaspipe::cluster::{
    run_cluster, AdmissionPolicy, ArrivalProcess, ClusterConfig, TenantSpec, TraceMode,
};
use faaspipe::core::dag::WorkerChoice;
use faaspipe::core::executor::{Executor, Services};
use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::core::pricing::PriceBook;
use faaspipe::core::report::{render_table1, Table1Row};
use faaspipe::core::spec::PipelineSpec;
use faaspipe::core::tracker::Tracker;
use faaspipe::des::{Sim, SimTime};
use faaspipe::exchange::ExchangeKind;
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::methcomp::codec as mc;
use faaspipe::methcomp::synth::Synthesizer;
use faaspipe::methcomp::Dataset;
use faaspipe::shuffle::{SortConfig, SortRecord, TuningModel, TuningPrices, WorkModel};
use faaspipe::store::{ObjectStore, StoreConfig};
use faaspipe::trace::{chrome_trace_json, critical_path, Category, SpanId, TraceData, TraceSink};
use faaspipe::vm::VmFleet;

const USAGE: &str = "usage:
  faaspipe table1 [--records N] [--exchange scatter|coalesced|vm_relay|direct|sharded_relay[:N][:prewarm]|auto] [--io-concurrency K] [--trace-out <trace.json>] [--jobs N]
                  (--exchange auto plans workers, I/O window, backend, and shards from the cost model;
                   --jobs runs the two pipeline modes concurrently, default FAASPIPE_JOBS / core count)
  faaspipe run <spec.json> [--records N] [--seed S] [--io-concurrency K] [--trace-out <trace.json>]
  faaspipe synth --records N --out <file.bed> [--shuffled] [--seed S]
  faaspipe compress <input.bed> <output.mc>
  faaspipe decompress <input.mc> <output.bed>
  faaspipe index <input.bed> <output.mcx>
  faaspipe query <archive.mcx> <chrom> <start> <end>
  faaspipe tune --gb <size> [--chunks N] [--max-workers N] [--budget $]
  faaspipe cluster [--tenants N] [--rate R] [--horizon S] [--records N] [--seed S]
                   [--exchange B] [--arrivals <trace.txt>] [--max-concurrent N]
                   [--store-ops OPS] [--stream-trace <out.jsonl>] [--verify]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("table1") => cmd_table1(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("index") => cmd_index(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{}'\n{}", other, USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {}", message);
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of an argument list; a trailing flag with no
/// value is an error rather than silently ignored.
fn flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("{} requires a value", name)),
        },
    }
}

fn flag_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, name)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| format!("invalid value '{}' for {}: {}", v, name, e)),
    }
}

fn cmd_table1(args: &[String]) -> Result<(), String> {
    let records: usize = flag_parse(args, "--records", 150_000)?;
    let exchange: ExchangeKind = flag_parse(args, "--exchange", ExchangeKind::Scatter)?;
    let io_concurrency: usize = flag_parse(
        args,
        "--io-concurrency",
        SortConfig::default().io_concurrency,
    )?;
    if io_concurrency == 0 {
        return Err("--io-concurrency must be at least 1".into());
    }
    let trace_out = flag(args, "--trace-out")?;
    let jobs = faaspipe::sweep::jobs_from_args(args)?;
    let traced = trace_out.is_some();
    // The two pipeline modes are independent sims; run them through the
    // sweep engine (they land back in mode order, so the table and the
    // merged trace are identical at any job count).
    let mut sweep = faaspipe::sweep::Sweep::new();
    for mode in [PipelineMode::PureServerless, PipelineMode::VmHybrid] {
        sweep.push(mode.to_string(), move || {
            let mut cfg = PipelineConfig::paper_table1();
            cfg.mode = mode;
            cfg.physical_records = records;
            cfg.exchange = exchange;
            cfg.io_concurrency = io_concurrency;
            // `auto` opens the worker count too: the planner picks W
            // along with K, backend, and shards instead of the paper's
            // fixed 8.
            if exchange == ExchangeKind::Auto {
                cfg.workers = WorkerChoice::Auto;
            }
            cfg.trace = traced;
            run_methcomp_pipeline(&cfg).map_err(|e| e.to_string())
        });
    }
    let outcomes = sweep.run_expect(jobs);
    let mut rows = Vec::new();
    let mut traces: Vec<(String, TraceData)> = Vec::new();
    for (mode, outcome) in [PipelineMode::PureServerless, PipelineMode::VmHybrid]
        .into_iter()
        .zip(outcomes)
    {
        let outcome = outcome?;
        eprintln!("--- {} ---\n{}", mode, outcome.tracker_log);
        if traced {
            let breakdown =
                critical_path(&outcome.trace).ok_or("traced run produced no breakdown")?;
            eprintln!("{}", breakdown.render());
            traces.push((mode.to_string(), outcome.trace.clone()));
        }
        rows.push(Table1Row::from_outcome(&outcome));
    }
    println!("{}", render_table1(&rows));
    if let Some(path) = trace_out {
        let labelled: Vec<(&str, &TraceData)> = traces
            .iter()
            .map(|(label, data)| (label.as_str(), data))
            .collect();
        let chrome = chrome_trace_json(&TraceData::merged(&labelled));
        std::fs::write(&path, chrome).map_err(|e| format!("{}: {}", path, e))?;
        eprintln!("wrote {}", path);
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("run requires a spec file")?;
    let records: usize = flag_parse(args, "--records", 50_000)?;
    let seed: u64 = flag_parse(args, "--seed", 7)?;
    let io_concurrency: usize = flag_parse(
        args,
        "--io-concurrency",
        SortConfig::default().io_concurrency,
    )?;
    if io_concurrency == 0 {
        return Err("--io-concurrency must be at least 1".into());
    }
    let trace_out = flag(args, "--trace-out")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {}", path, e))?;
    let spec = PipelineSpec::from_json(&text).map_err(|e| e.to_string())?;
    let dag = spec.to_dag().map_err(|e| e.to_string())?;

    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    let fleet = VmFleet::new();
    store
        .create_bucket(&dag.bucket)
        .map_err(|e| e.to_string())?;

    // Stage synthetic input under the first stage's input prefix.
    let input_prefix = match dag.stages().first().map(|s| &s.kind) {
        Some(faaspipe::core::StageKind::ShuffleSort { input, .. })
        | Some(faaspipe::core::StageKind::VmSort { input, .. })
        | Some(faaspipe::core::StageKind::Encode { input, .. })
        | Some(faaspipe::core::StageKind::Decode { input, .. }) => input.clone(),
        None => return Err("workflow has no stages".into()),
    };
    let dataset = Synthesizer::new(seed).generate_shuffled(records);
    let chunks = 8usize;
    for (i, chunk) in dataset
        .records
        .chunks(records.div_ceil(chunks).max(1))
        .enumerate()
    {
        store
            .put_untimed(
                &dag.bucket,
                &format!("{}{:04}", input_prefix, i),
                Bytes::from(SortRecord::write_all(chunk)),
            )
            .map_err(|e| e.to_string())?;
    }

    let sink = if trace_out.is_some() {
        TraceSink::recording()
    } else {
        TraceSink::disabled()
    };
    let run_span = if trace_out.is_some() {
        let run = sink.span_start(
            Category::Run,
            &dag.name,
            "driver",
            "driver",
            SpanId::NONE,
            SimTime::ZERO,
        );
        sink.attr(run, "seed", seed);
        store.set_trace_sink(sink.clone());
        faas.set_trace_sink(sink.clone());
        fleet.set_trace_sink(sink.clone());
        run
    } else {
        SpanId::NONE
    };
    let tracker = if trace_out.is_some() {
        Tracker::with_sink(sink.clone(), run_span)
    } else {
        Tracker::new()
    };
    let executor = Executor::new(
        Services {
            store: store.clone(),
            faas: faas.clone(),
            fleet: fleet.clone(),
        },
        WorkModel::default(),
        tracker.clone(),
    )
    .with_io_concurrency(io_concurrency);
    let handle = executor.spawn_dag(&mut sim, &dag);
    let report = sim.run().map_err(|e| e.to_string())?;
    sink.span_end(run_span, report.end_time);
    let results = handle.ok_results()?;
    println!("{}", tracker.render());
    for s in &results {
        println!(
            "stage '{}': {} ({} workers, {} output bytes)",
            s.stage,
            s.finished.saturating_duration_since(s.started),
            s.workers_used,
            s.output_bytes
        );
    }
    let cost = PriceBook::default().assemble(
        &faas.records(),
        &store.metrics(),
        &fleet.records(),
        report.end_time,
    );
    println!("{}", cost.render());
    if let Some(path) = trace_out {
        let data = sink.snapshot();
        if let Some(breakdown) = critical_path(&data) {
            println!("{}", breakdown.render());
        }
        std::fs::write(&path, chrome_trace_json(&data)).map_err(|e| format!("{}: {}", path, e))?;
        eprintln!("wrote {}", path);
    }
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let records: usize = flag_parse(args, "--records", 0)?;
    if records == 0 {
        return Err("synth requires --records N".into());
    }
    let out = flag(args, "--out")?.ok_or("synth requires --out <file>")?;
    let seed: u64 = flag_parse(args, "--seed", 7)?;
    let shuffled = args.iter().any(|a| a == "--shuffled");
    let mut synth = Synthesizer::new(seed);
    let ds = if shuffled {
        synth.generate_shuffled(records)
    } else {
        synth.generate_records(records)
    };
    std::fs::write(&out, ds.to_text()).map_err(|e| format!("{}: {}", out, e))?;
    eprintln!(
        "wrote {} records ({} bytes) to {}",
        ds.len(),
        ds.to_text().len(),
        out
    );
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let [input, output] = two_paths(args, "compress")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("{}: {}", input, e))?;
    let ds = Dataset::from_text(&text).map_err(|e| e.to_string())?;
    let packed = mc::compress(&ds);
    std::fs::write(&output, &packed).map_err(|e| format!("{}: {}", output, e))?;
    eprintln!(
        "{} records: {} -> {} bytes ({:.1}x)",
        ds.len(),
        text.len(),
        packed.len(),
        text.len() as f64 / packed.len() as f64
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let [input, output] = two_paths(args, "decompress")?;
    let packed = std::fs::read(&input).map_err(|e| format!("{}: {}", input, e))?;
    let ds = mc::decompress(&packed).map_err(|e| e.to_string())?;
    std::fs::write(&output, ds.to_text()).map_err(|e| format!("{}: {}", output, e))?;
    eprintln!("restored {} records to {}", ds.len(), output);
    Ok(())
}

fn cmd_index(args: &[String]) -> Result<(), String> {
    let [input, output] = two_paths(args, "index")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("{}: {}", input, e))?;
    let mut ds = Dataset::from_text(&text).map_err(|e| e.to_string())?;
    ds.sort();
    let packed = faaspipe::methcomp::index::compress_indexed(
        &ds,
        faaspipe::methcomp::index::DEFAULT_BLOCK_RECORDS,
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(&output, &packed).map_err(|e| format!("{}: {}", output, e))?;
    let idx = faaspipe::methcomp::index::read_index(&packed).map_err(|e| e.to_string())?;
    eprintln!(
        "{} records in {} blocks: {} -> {} bytes ({:.1}x)",
        ds.len(),
        idx.blocks.len(),
        text.len(),
        packed.len(),
        text.len() as f64 / packed.len() as f64
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [archive_path, chrom_name, start, end] = positional.as_slice() else {
        return Err("query requires <archive.mcx> <chrom> <start> <end>".into());
    };
    let chrom = faaspipe::methcomp::bed::chrom_id(chrom_name)
        .ok_or_else(|| format!("unknown chromosome '{}'", chrom_name))?;
    let start: u64 = start
        .parse()
        .map_err(|_| format!("bad start '{}'", start))?;
    let end: u64 = end.parse().map_err(|_| format!("bad end '{}'", end))?;
    let archive =
        std::fs::read(archive_path.as_str()).map_err(|e| format!("{}: {}", archive_path, e))?;
    let (hits, decoded) = faaspipe::methcomp::index::query_region(&archive, chrom, start, end)
        .map_err(|e| e.to_string())?;
    for r in &hits {
        println!("{}", r.to_line());
    }
    eprintln!(
        "{} records in {}:{}..{} ({} blocks decoded)",
        hits.len(),
        chrom_name,
        start,
        end,
        decoded
    );
    Ok(())
}

fn two_paths(args: &[String], cmd: &str) -> Result<[String; 2], String> {
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    match paths.as_slice() {
        [a, b] => Ok([(*a).clone(), (*b).clone()]),
        _ => Err(format!("{} requires <input> <output>", cmd)),
    }
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let tenants: usize = flag_parse(args, "--tenants", 2)?;
    if tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    let rate: f64 = flag_parse(args, "--rate", 0.02)?;
    let horizon: u64 = flag_parse(args, "--horizon", 300)?;
    let records: usize = flag_parse(args, "--records", 20_000)?;
    let exchange: ExchangeKind = flag_parse(args, "--exchange", ExchangeKind::Scatter)?;
    let max_concurrent: Option<String> = flag(args, "--max-concurrent")?;
    let store_ops: Option<String> = flag(args, "--store-ops")?;

    let mut admission = AdmissionPolicy::unlimited();
    if let Some(v) = max_concurrent {
        let n: u64 = v
            .parse()
            .map_err(|_| format!("invalid value '{}' for --max-concurrent", v))?;
        admission = admission.with_max_concurrent(n);
    }
    if let Some(v) = store_ops {
        let ops: f64 = v
            .parse()
            .map_err(|_| format!("invalid value '{}' for --store-ops", v))?;
        admission = admission.with_store_ops(ops, ops);
    }

    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| {
            let mut t = TenantSpec::new(format!("t{}", i));
            t.exchange = exchange;
            t.admission = admission.clone();
            t
        })
        .collect();

    let arrivals = match flag(args, "--arrivals")? {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {}", path, e))?;
            ArrivalProcess::from_trace_str(&text)?
        }
        None => ArrivalProcess::Poisson {
            rate_per_sec: rate,
            horizon: faaspipe::des::SimDuration::from_secs(horizon),
        },
    };

    let mut cfg = ClusterConfig::new(specs, arrivals);
    cfg.physical_records = records;
    cfg.seed = flag_parse(args, "--seed", cfg.seed)?;
    cfg.verify = args.iter().any(|a| a == "--verify");
    if let Some(path) = flag(args, "--stream-trace")? {
        cfg.trace = TraceMode::Stream(path.into());
    }

    let report = run_cluster(&cfg).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    println!("--- cost ---\n{}", report.cost.render());
    if let TraceMode::Stream(path) = &cfg.trace {
        eprintln!("streamed trace to {}", path.display());
    }
    Ok(())
}

fn cmd_tune(args: &[String]) -> Result<(), String> {
    let gb: f64 = flag_parse(args, "--gb", 0.0)?;
    if gb <= 0.0 {
        return Err("tune requires --gb <size>".into());
    }
    let chunks: usize = flag_parse(args, "--chunks", 8)?;
    let max_workers: usize = flag_parse(args, "--max-workers", 128)?;
    let store_cfg = StoreConfig::default();
    let faas_cfg = FaasConfig::default();
    let work = WorkModel::default();
    let model = TuningModel {
        data_bytes: gb * 1e9,
        input_chunks: chunks,
        request_latency_s: store_cfg.first_byte_latency.as_secs_f64(),
        conn_bw: store_cfg.per_connection_bw.as_bytes_per_sec(),
        agg_bw: store_cfg.aggregate_bw.as_bytes_per_sec(),
        ops_per_sec: store_cfg.ops_per_sec,
        startup_s: faas_cfg.cold_start.as_secs_f64(),
        cpu_share: faas_cfg.cpu_share(),
        sort_bps: work.sort_mibps * 1024.0 * 1024.0,
        merge_bps: work.merge_mibps * 1024.0 * 1024.0,
        max_workers,
    };
    let prices = TuningPrices::default();
    let best = match flag(args, "--budget")? {
        None => model.best_workers(),
        Some(v) => {
            let budget: f64 = v
                .parse()
                .map_err(|_| format!("invalid value '{}' for --budget", v))?;
            model.best_workers_under_budget(budget, &prices)
        }
    };
    let b = model.breakdown(best);
    println!("recommended workers for a {:.1} GB shuffle: {}", gb, best);
    println!(
        "modelled makespan {:.1}s (startup {:.1}, transfer {:.1}, requests {:.1}, compute {:.1})",
        b.total_s(),
        b.startup_s,
        b.transfer_s,
        b.request_s,
        b.compute_s
    );
    println!("modelled cost ${:.4}", model.cost_with(best, &prices));
    println!("pareto frontier (workers, latency s, cost $):");
    for (w, l, c) in model.pareto(&prices) {
        println!("  {:>4}  {:>7.1}  {:>8.4}", w, l, c);
    }
    Ok(())
}
