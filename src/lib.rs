//! # faaspipe — serverless FaaS pipelines, object storage- vs VM-driven data exchange
//!
//! Umbrella crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the paper-reproduction map.
//!
//! - [`des`] — deterministic discrete-event simulation kernel
//! - [`store`] — simulated object storage (IBM COS stand-in)
//! - [`faas`] — simulated cloud-functions platform
//! - [`vm`] — simulated VM instances
//! - [`codec`] — compression substrate (bit I/O, Huffman, LZ77, range coder)
//! - [`methcomp`] — DNA-methylation BED model, synthesizer, and METHCOMP codec
//! - [`shuffle`] — Primula-like serverless shuffle/sort operator
//! - [`exchange`] — pluggable intermediate data-exchange backends
//!   (object storage, VM relay, direct function-to-function streaming)
//! - [`core`] — workflow DAGs, JSON pipeline specs, executor, tracker, pricing
//! - [`plan`] — calibrated cost/latency model and the `--exchange auto`
//!   planner picking (W, K, backend, shards)
//! - [`cluster`] — multi-tenant pipeline service: shared-cloud contention,
//!   open-loop arrivals, admission control, per-tenant SLO metrics
//! - [`sweep`] — cross-simulation parallelism: a work-queue engine running
//!   independent sims across OS threads with deterministic result ordering
//! - [`trace`] — virtual-time tracing: spans, counters, exporters, critical path

pub use faaspipe_cluster as cluster;
pub use faaspipe_codec as codec;
pub use faaspipe_core as core;
pub use faaspipe_des as des;
pub use faaspipe_exchange as exchange;
pub use faaspipe_faas as faas;
pub use faaspipe_methcomp as methcomp;
pub use faaspipe_plan as plan;
pub use faaspipe_shuffle as shuffle;
pub use faaspipe_store as store;
pub use faaspipe_sweep as sweep;
pub use faaspipe_trace as trace;
pub use faaspipe_vm as vm;
