//! Parallel parameter sweeps with `faaspipe::sweep`.
//!
//! A `Sim` is single-threaded by design (its internals are `Rc`-linked
//! and never cross a thread), but *independent* simulations share
//! nothing — each cell below builds and runs its own pipeline entirely
//! on whichever worker thread picks it up, and only the plain-data row
//! crosses back. Because virtual time is a pure function of the config
//! and seed, the rows are identical at any `--jobs` count; the engine
//! additionally hands them back in submission order, so the printed
//! table never depends on host scheduling.
//!
//! ```text
//! cargo run --release --example parameter_sweep [-- --jobs N]
//! ```

use faaspipe::core::dag::WorkerChoice;
use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::exchange::ExchangeKind;
use faaspipe::sweep::Sweep;

/// Everything a cell sends back: plain data, no simulator guts.
struct Row {
    workers: usize,
    backend: ExchangeKind,
    latency_s: f64,
    cost_dollars: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = faaspipe::sweep::jobs_from_args_or_exit(&args);

    let mut sweep: Sweep<Row> = Sweep::new();
    for workers in [4usize, 8, 16] {
        for backend in [ExchangeKind::Scatter, ExchangeKind::Coalesced] {
            sweep.push(format!("W={} {}", workers, backend), move || {
                let mut cfg = PipelineConfig::paper_table1();
                cfg.mode = PipelineMode::PureServerless;
                cfg.physical_records = 8_000;
                cfg.workers = WorkerChoice::Fixed(workers);
                cfg.exchange = backend;
                let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
                assert!(outcome.verified);
                Row {
                    workers,
                    backend,
                    latency_s: outcome.latency.as_secs_f64(),
                    cost_dollars: outcome.cost.total().as_dollars(),
                }
            });
        }
    }

    // `run` (instead of `run_expect`) keeps per-cell panics as values:
    // a poisoned cell reports its grid coordinates while every sibling
    // still finishes.
    let outcome = sweep.run(jobs);
    println!(
        "{} cells on {} thread(s) in {:.0}ms",
        outcome.stats.cells,
        outcome.stats.jobs,
        outcome.stats.wall.as_secs_f64() * 1e3
    );
    println!(
        "{:>3}  {:<10}  {:>10}  {:>9}",
        "W", "backend", "latency", "cost"
    );
    for cell in &outcome.results {
        match cell {
            Ok(row) => println!(
                "{:>3}  {:<10}  {:>9.2}s  ${:>8.4}",
                row.workers,
                row.backend.to_string(),
                row.latency_s,
                row.cost_dollars
            ),
            Err(failure) => println!("cell {} failed: {}", failure.index, failure),
        }
    }
}
