//! Random access into compressed methylation data: store an *indexed*
//! METHCOMP archive in the object store, then answer a region query by
//! fetching only the index footer and the touched blocks with byte-range
//! GETs — no full download, no full decode.
//!
//! ```text
//! cargo run --release --example region_query
//! ```

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe::des::Sim;
use faaspipe::methcomp::index::{self, DEFAULT_BLOCK_RECORDS};
use faaspipe::methcomp::synth::Synthesizer;
use faaspipe::methcomp::{codec, CHROM_NAMES};
use faaspipe::store::{ObjectStore, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a sorted dataset and both archive flavours.
    let dataset = Synthesizer::new(13).generate_records(120_000);
    let plain = codec::compress(&dataset);
    let indexed = index::compress_indexed(&dataset, DEFAULT_BLOCK_RECORDS)?;
    println!(
        "{} records: {} B text, {} B plain archive, {} B indexed archive",
        dataset.len(),
        dataset.to_text().len(),
        plain.len(),
        indexed.len()
    );

    // Stage the indexed archive in the simulated store.
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    store.create_bucket("data")?;
    let archive_len = indexed.len() as u64;
    store.put_untimed("data", "sample.mcx", Bytes::from(indexed.clone()))?;

    // A "query function": fetch the index tail, then range-read only the
    // blocks overlapping a 200 kb window on chr7.
    let chrom = 6u8; // chr7
    let (lo, hi) = (200_000u64, 400_000u64);
    let stats: Arc<Mutex<(usize, u64, f64)>> = Arc::new(Mutex::new((0, 0, 0.0)));
    let stats2 = Arc::clone(&stats);
    let store2 = Arc::clone(&store);
    sim.spawn("query-fn", move |ctx| {
        let client = store2.connect(ctx, "query");
        let t0 = ctx.now();
        // Footer: last 64 KiB is plenty for the index of this archive.
        let tail_len = (64 * 1024).min(archive_len);
        let tail_off = archive_len - tail_len;
        let tail = client
            .get_range(ctx, "data", "sample.mcx", tail_off, tail_len)
            .expect("index tail");
        // Rebuild a sparse archive buffer: zeros except the tail, which is
        // all read_index touches.
        let mut sparse = vec![0u8; archive_len as usize];
        sparse[..4].copy_from_slice(b"MX01");
        sparse[tail_off as usize..].copy_from_slice(&tail);
        let idx = index::read_index(&sparse).expect("index parses from the tail");
        let mut fetched = 0u64;
        let mut hits = Vec::new();
        for b in &idx.blocks {
            if b.chrom != chrom || b.max_start < lo || b.min_start >= hi {
                continue;
            }
            let block = client
                .get_range(ctx, "data", "sample.mcx", b.offset, b.len)
                .expect("block");
            fetched += b.len;
            let ds = codec::decompress(&block).expect("block decodes");
            hits.extend(
                ds.records
                    .into_iter()
                    .filter(|r| r.start >= lo && r.start < hi),
            );
        }
        let took = ctx.now().saturating_duration_since(t0);
        *stats2.lock() = (hits.len(), fetched + tail_len, took.as_secs_f64());
    });
    sim.run()?;
    let (hits, bytes, secs) = *stats.lock();
    let expect = dataset
        .records
        .iter()
        .filter(|r| r.chrom == chrom && r.start >= lo && r.start < hi)
        .count();
    assert_eq!(hits, expect, "range-read query must match a full scan");
    println!(
        "query {}:{}..{} -> {} records, fetching {} of {} archive bytes in {:.3}s virtual",
        CHROM_NAMES[chrom as usize], lo, hi, hits, bytes, archive_len, secs
    );
    println!(
        "({}x less data moved than downloading the whole archive)",
        archive_len / bytes.max(1)
    );
    Ok(())
}
