//! Quickstart: stand up a simulated cloud, move data through object
//! storage from serverless functions, and read the bill.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use bytes::Bytes;

use faaspipe::core::pricing::PriceBook;
use faaspipe::des::{Sim, SimDuration};
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::store::{ObjectStore, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulation plus the two services every pipeline needs.
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    store.create_bucket("data")?;

    // 2. A driver process that fans out four functions; each writes and
    //    re-reads an object. Bodies are plain Rust closures — time is
    //    virtual, the bytes are real.
    let store2 = Arc::clone(&store);
    let faas2 = Arc::clone(&faas);
    sim.spawn("driver", move |ctx| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let store = Arc::clone(&store2);
                faas2.invoke_async(
                    ctx,
                    "worker",
                    format!("quickstart/{}", i),
                    move |fctx, env| {
                        let client = store.connect_via(fctx, "quickstart", &[env.nic]);
                        let key = format!("greeting/{}", i);
                        let body = Bytes::from(vec![i as u8; 8 << 20]); // 8 MiB
                        client.put(fctx, "data", &key, body).expect("put");
                        let back = client.get(fctx, "data", &key).expect("get");
                        assert_eq!(back.len(), 8 << 20);
                        env.compute(fctx, SimDuration::from_millis(150));
                    },
                )
            })
            .collect();
        ctx.join_all(&handles).expect("workers ok");
        println!("all workers finished at t = {}", ctx.now());
    });

    // 3. Run to completion and settle the bill.
    let report = sim.run()?;
    println!(
        "simulated {} events across {} processes, virtual end time {}",
        report.events, report.processes, report.end_time
    );
    let book = PriceBook::default();
    let cost = book.assemble(&faas.records(), &store.metrics(), &[], report.end_time);
    println!("{}", cost.render());
    Ok(())
}
