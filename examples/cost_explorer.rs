//! Cost-aware tuning: the latency/cost Pareto frontier of the shuffle
//! stage, and what a dollar budget buys you.
//!
//! The paper "qualitatively evaluate[s] the pros and cons of each
//! strategy"; this example makes the trade-off quantitative — every
//! extra function shaves latency but burns GB-seconds and requests.
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use faaspipe::core::pipeline::PipelineConfig;
use faaspipe::shuffle::{TuningModel, TuningPrices, WorkModel};

fn model() -> TuningModel {
    let cfg = PipelineConfig::paper_table1();
    let work = WorkModel::default();
    TuningModel {
        data_bytes: cfg.modeled_bytes as f64,
        input_chunks: cfg.parallelism,
        request_latency_s: cfg.store.first_byte_latency.as_secs_f64(),
        conn_bw: cfg
            .store
            .per_connection_bw
            .as_bytes_per_sec()
            .min(cfg.faas.nic_bw.as_bytes_per_sec()),
        agg_bw: cfg.store.aggregate_bw.as_bytes_per_sec(),
        ops_per_sec: cfg.store.ops_per_sec,
        startup_s: cfg.faas.cold_start.as_secs_f64(),
        cpu_share: cfg.faas.cpu_share(),
        sort_bps: work.sort_mibps * 1024.0 * 1024.0,
        merge_bps: work.merge_mibps * 1024.0 * 1024.0,
        max_workers: 128,
    }
}

fn main() {
    let m = model();
    let prices = TuningPrices::default();

    println!("Pareto frontier for the paper's 3.5 GB shuffle (sampled):");
    println!("workers  modelled latency(s)  modelled cost($)");
    let frontier = m.pareto(&prices);
    let step = frontier.len().div_ceil(14).max(1);
    for (i, (w, latency, cost)) in frontier.iter().enumerate() {
        if i % step == 0 || i == frontier.len() - 1 {
            println!("{:>7}  {:>19.1}  {:>15.4}", w, latency, cost);
        }
    }

    println!("\nwhat a budget buys:");
    println!("budget($)   workers  latency(s)  cost($)");
    for budget in [0.005f64, 0.01, 0.02, 0.04, 0.10] {
        let w = m.best_workers_under_budget(budget, &prices);
        println!(
            "{:>9.3}  {:>8}  {:>10.1}  {:>7.4}",
            budget,
            w,
            m.breakdown(w).total_s(),
            m.cost_with(w, &prices)
        );
    }

    let unconstrained = m.best_workers();
    println!(
        "\nlatency-optimal (no budget): {} workers, {:.1}s, ${:.4}",
        unconstrained,
        m.breakdown(unconstrained).total_s(),
        m.cost_with(unconstrained, &prices)
    );
}
