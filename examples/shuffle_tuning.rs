//! Primula in action: probe the object store "on the fly", model the
//! shuffle makespan for every worker count, and show the three regimes
//! the paper's worker-count claim rests on.
//!
//! ```text
//! cargo run --release --example shuffle_tuning
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use faaspipe::des::Sim;
use faaspipe::shuffle::{Autotuner, TuningModel};
use faaspipe::store::{ObjectStore, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Probe a simulated COS the way Primula would probe the real one.
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    store.create_bucket("data")?;
    let measured: Arc<Mutex<Option<Autotuner>>> = Arc::new(Mutex::new(None));
    let store2 = Arc::clone(&store);
    let measured2 = Arc::clone(&measured);
    sim.spawn("prober", move |ctx| {
        let tuner = Autotuner::probe(ctx, &store2, "data").expect("probe");
        *measured2.lock() = Some(tuner);
    });
    sim.run()?;
    let tuner = measured.lock().take().expect("probe ran");
    println!(
        "measured on the fly: request latency {:.1} ms, per-connection {:.0} MiB/s",
        tuner.measured_latency_s * 1e3,
        tuner.measured_conn_bw / (1024.0 * 1024.0)
    );

    // Model a 3.5 GB shuffle with those measurements.
    let model: TuningModel = tuner.model(
        3.5e9,
        8,
        &store,
        0.52, // cold start, s
        1.0,  // vCPU share at 2 GB
        95.0 * 1024.0 * 1024.0,
        180.0 * 1024.0 * 1024.0,
        128,
    );
    println!("\nworkers  total(s)  transfer  requests  compute   regime");
    for w in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let b = model.breakdown(w);
        let regime = if b.transfer_s > b.request_s && b.transfer_s > b.compute_s {
            "bandwidth-bound"
        } else if b.request_s > b.transfer_s {
            "request-bound"
        } else {
            "compute-bound"
        };
        println!(
            "{:>7}  {:>8.1}  {:>8.1}  {:>8.1}  {:>7.1}   {}",
            w,
            b.total_s(),
            b.transfer_s,
            b.request_s,
            b.compute_s,
            regime
        );
    }
    let best = model.best_workers();
    println!(
        "\noptimal number of functions for this shuffle: {} ({:.1}s modelled)",
        best,
        model.breakdown(best).total_s()
    );
    println!(
        "modelled cost at the optimum: ${:.4}",
        model.cost_dollars(best, 2.0, 0.000017, 0.005, 0.0004)
    );
    Ok(())
}
