//! Resilience demo: run the serverless sort against an object store that
//! randomly fails and slows requests, and watch retries absorb it.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe::des::{Sim, SimDuration};
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::shuffle::{serverless_sort, with_retry, SortConfig, SortRecord};
use faaspipe::store::{FailurePolicy, ObjectStore, StoreConfig};

fn run(error_rate: f64) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let mut sim = Sim::new();
    let store_cfg = StoreConfig::default().with_failure(FailurePolicy {
        error_rate,
        slow_rate: 0.05,
        slow_factor: 4.0,
    });
    let store = ObjectStore::install(&mut sim, store_cfg);
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    store.create_bucket("data")?;

    // 40k pseudo-random u64 records across 4 chunks.
    let values: Vec<u64> = (0..40_000u64)
        .map(|i| (i * 2_654_435_761) % 10_000_000)
        .collect();
    for (i, chunk) in values.chunks(10_000).enumerate() {
        store.put_untimed(
            "data",
            &format!("in/{:04}", i),
            Bytes::from(SortRecord::write_all(chunk)),
        )?;
    }

    let out: Arc<Mutex<Option<SimDuration>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let store2 = Arc::clone(&store);
    sim.spawn("driver", move |ctx| {
        let cfg = SortConfig {
            workers: 8,
            retries: 10,
            ..SortConfig::default()
        };
        let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg)
            .expect("sort survives injected faults");
        // Verify global order end to end despite the chaos.
        let client = store2.connect(ctx, "verify");
        let mut all = Vec::new();
        for run in &stats.runs {
            let data = with_retry(ctx, 10, |c| client.get(c, "data", run)).expect("run readable");
            let mut records: Vec<u64> = SortRecord::read_all(&data).expect("decode");
            all.append(&mut records);
        }
        assert!(all.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
        assert_eq!(all.len(), 40_000);
        *out2.lock() = Some(stats.total_duration());
    });
    sim.run()?;
    let latency = out.lock().take().expect("driver ran").as_secs_f64();
    let errors = store.metrics().total().errors;
    Ok((latency, errors))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("error-rate  injected-failures  sort-latency(s)");
    for rate in [0.0, 0.02, 0.05, 0.10] {
        let (latency, errors) = run(rate)?;
        println!("{:>10.2}  {:>17}  {:>15.2}", rate, errors, latency);
    }
    println!("every run produced a fully sorted, complete output — retries absorb the faults");
    Ok(())
}
