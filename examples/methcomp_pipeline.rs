//! The paper's demo, end to end: declare the METHCOMP workflow in JSON
//! (paper §2.4), run it both ways (Figure 1 A and B), watch the job
//! tracker, and compare latency and per-stage cost — a miniature Table 1.
//!
//! ```text
//! cargo run --release --example methcomp_pipeline
//! ```

use bytes::Bytes;

use faaspipe::core::executor::{Executor, Services};
use faaspipe::core::pricing::PriceBook;
use faaspipe::core::spec::PipelineSpec;
use faaspipe::core::tracker::Tracker;
use faaspipe::des::Sim;
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::methcomp::synth::Synthesizer;
use faaspipe::shuffle::{SortRecord, WorkModel};
use faaspipe::store::{ObjectStore, StoreConfig};
use faaspipe::vm::VmFleet;

/// Figure 1 B: purely serverless — declared in JSON.
const SERVERLESS_SPEC: &str = r#"{
    "name": "methcomp-serverless",
    "bucket": "data",
    "stages": [
        { "name": "sort", "kind": "shuffle_sort", "workers": 8,
          "input": "in/", "output": "sorted/" },
        { "name": "encode", "kind": "encode", "codec": "methcomp",
          "workers": 8, "input": "sorted/", "output": "enc/",
          "deps": ["sort"] }
    ]
}"#;

/// Figure 1 A: hybrid — the sort stage runs inside a bx2-8x32 VM.
const HYBRID_SPEC: &str = r#"{
    "name": "methcomp-hybrid",
    "bucket": "data",
    "stages": [
        { "name": "sort", "kind": "vm_sort", "profile": "bx2-8x32",
          "runs": 8, "input": "in/", "output": "sorted/" },
        { "name": "encode", "kind": "encode", "codec": "methcomp",
          "workers": 8, "input": "sorted/", "output": "enc/",
          "deps": ["sort"] }
    ]
}"#;

fn run_spec(json: &str) -> Result<(), Box<dyn std::error::Error>> {
    let spec = PipelineSpec::from_json(json)?;
    let dag = spec.to_dag()?;
    println!("=== workflow '{}' ({} stages) ===", dag.name, dag.len());

    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    let fleet = VmFleet::new();
    store.create_bucket("data")?;

    // Stage ~50k unsorted methylation records as 8 input chunks.
    let dataset = Synthesizer::new(7).generate_shuffled(50_000);
    for (i, chunk) in dataset.records.chunks(50_000usize.div_ceil(8)).enumerate() {
        store.put_untimed(
            "data",
            &format!("in/{:04}", i),
            Bytes::from(SortRecord::write_all(chunk)),
        )?;
    }

    let tracker = Tracker::new();
    let executor = Executor::new(
        Services {
            store: store.clone(),
            faas: faas.clone(),
            fleet: fleet.clone(),
        },
        WorkModel::default(),
        tracker.clone(),
    );
    let handle = executor.spawn_dag(&mut sim, &dag);
    let report = sim.run()?;

    let results = handle.ok_results().map_err(std::io::Error::other)?;
    println!("{}", tracker.render());
    for stage in &results {
        println!(
            "stage '{}' took {} with {} workers",
            stage.stage,
            stage.finished.saturating_duration_since(stage.started),
            stage.workers_used
        );
    }
    let cost = PriceBook::default().assemble(
        &faas.records(),
        &store.metrics(),
        &fleet.records(),
        report.end_time,
    );
    println!("{}", cost.render());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_spec(SERVERLESS_SPEC)?;
    run_spec(HYBRID_SPEC)?;
    Ok(())
}
