//! Max-min fair fluid-flow network.
//!
//! Data transfers in the simulated cloud are modelled as *fluid flows*: a
//! flow has a byte count and traverses a set of capacity-constrained links
//! (e.g. a function's NIC, the object store's per-connection cap, the
//! store's aggregate backbone). At any instant each flow progresses at its
//! **max-min fair** rate given all concurrently active flows; rates are
//! recomputed whenever a flow starts or finishes (progressive filling /
//! water-filling algorithm).
//!
//! This is what makes "the huge aggregated bandwidth of object storage" —
//! the paper's central performance argument — an emergent, measurable
//! property of the simulation: adding more functions adds more NIC links,
//! and aggregate throughput grows until the store's backbone saturates.
//!
//! # Scaling discipline
//!
//! Every flow start/finish triggers a rate recompute, so with `A` active
//! flows and `T` links carrying them the per-event budget must be
//! `O(A·ℓ + T)` (ℓ = links per flow, a small constant), never
//! `O(A·rounds)` or `O(slots·links)`:
//!
//! * per-link **membership lists** (`members`) let each progressive-filling
//!   round freeze exactly the flows crossing the bottleneck instead of
//!   re-scanning every unfrozen flow;
//! * the bottleneck itself comes from a lazily-revalidated **min-heap** of
//!   `(fair share, link id)` keys instead of a scan over every touched
//!   link per round;
//! * per-flow **completion deadlines** are folded into `recompute` the
//!   moment a rate freezes, so the scheduler's `next_completion` query is
//!   O(1) instead of a scan over all flows after every start/finish;
//! * `settle`, `tick` and `link_rate` walk the active-flow / member lists,
//!   not every slot ever allocated.
//!
//! All of it is bit-identity-preserving: the heap key orders exactly like
//! the dense scan's `(share, ascending link id)` tie-break, freezing walks
//! members in ascending slot order (the dense scan's flow order), and the
//! accepted share is re-derived from the *current* `residual/count` at pop
//! time, so every floating-point operation happens on the same operands in
//! the same order as the reference implementation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::units::{Bandwidth, ByteSize, SimDuration, SimTime};

/// Identifies a capacity-constrained link in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) u32);

/// Identifies an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey(usize);

/// Description of a transfer: how many bytes, across which links.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Total bytes the flow must move.
    pub bytes: ByteSize,
    /// Every link the flow traverses; its rate is bounded by each of them.
    pub links: Vec<LinkId>,
}

#[derive(Debug)]
struct Link {
    capacity: f64, // bytes/sec, may be infinite
}

#[derive(Debug)]
struct Flow {
    remaining: f64, // bytes
    links: Vec<LinkId>,
    waker: u32, // process index to resume on completion
    rate: f64,  // current fair-share rate, bytes/sec
}

/// Bytes of slack under which a flow counts as complete (guards float
/// round-off in settle arithmetic).
const EPSILON_BYTES: f64 = 1e-6;

/// Min-heap key for the bottleneck search. Orders by fair share first and
/// ascending link id second, which is exactly the dense scan's tie-break
/// (`s <= share` kept the incumbent, and the incumbent had the lowest id
/// because the scan ran in ascending id order). Shares are never NaN —
/// residuals are clamped non-negative and counts are positive — so the
/// partial order is total here.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ShareKey {
    share: f64,
    li: u32,
}

impl Eq for ShareKey {}

impl PartialOrd for ShareKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ShareKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.share
            .partial_cmp(&other.share)
            .expect("fair shares are never NaN")
            .then(self.li.cmp(&other.li))
    }
}

/// The fluid-flow network. Owned by the simulation scheduler; processes
/// interact with it through [`Ctx::transfer`](crate::Ctx::transfer).
#[derive(Debug, Default)]
pub struct FlowNet {
    links: Vec<Link>,
    flows: Vec<Option<Flow>>,
    free: Vec<usize>,
    last_settle: SimTime,
    /// Occupied flow slots, ascending. Settle/tick/recompute walk this
    /// instead of every slot ever allocated.
    active: Vec<u32>,
    /// Per-link membership: active flow slots crossing the link, ascending
    /// (one entry per occurrence in the flow's link list, mirroring the
    /// dense scan's per-occurrence counts).
    members: Vec<Vec<u32>>,
    /// Links with at least one active flow, ascending. This is the
    /// `touched` set `recompute` used to rebuild from a full flow scan.
    touched: Vec<u32>,
    /// Earliest completion delay among active flows, measured from
    /// `last_settle`; valid only while `earliest_fresh` (i.e. a recompute
    /// ran after the last settling advance). Stalled flows (rate ≤ 0) are
    /// excluded, exactly as the reference scan excludes them.
    earliest: Option<SimDuration>,
    earliest_fresh: bool,
    /// Wakers of flows frozen at a non-positive rate with bytes still
    /// remaining during the last recompute. A non-empty list means the
    /// rate computation starved a flow that can never finish.
    stalled: Vec<u32>,
    scratch: RecomputeScratch,
}

/// Scratch reused across calls so the hot path does no per-event
/// allocation. `counts` and `residual` are link-indexed and only the
/// entries named by `touched` are ever initialised or read before being
/// written; `frozen_at` is slot-indexed and compared against `epoch`.
#[derive(Debug, Default)]
struct RecomputeScratch {
    counts: Vec<u32>,
    residual: Vec<f64>,
    heap: BinaryHeap<Reverse<ShareKey>>,
    frozen_at: Vec<u64>,
    epoch: u64,
    done: Vec<usize>,
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Adds a link with the given capacity and returns its id.
    pub fn add_link(&mut self, capacity: Bandwidth) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            capacity: capacity.as_bytes_per_sec(),
        });
        self.members.push(Vec::new());
        id
    }

    /// Number of flows currently in progress.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// The instantaneous aggregate rate through `link`, in bytes/sec.
    /// Useful for instrumentation (e.g. the aggregate-bandwidth experiment).
    pub fn link_rate(&self, link: LinkId) -> f64 {
        let Some(members) = self.members.get(link.0 as usize) else {
            return 0.0;
        };
        // A flow listing the link twice appears twice in `members`
        // (adjacent, since the list is slot-sorted) but must count once.
        let mut sum = 0.0;
        let mut last = None;
        for &fi in members {
            if last == Some(fi) {
                continue;
            }
            last = Some(fi);
            sum += self.flows[fi as usize]
                .as_ref()
                .expect("member flow is active")
                .rate;
        }
        sum
    }

    /// Wakers of flows starved by the last rate recompute (frozen at a
    /// non-positive rate with bytes still to move). Such a flow can never
    /// complete unless a competing flow finishes first; the scheduler
    /// surfaces it as a loud error instead of deadlocking silently.
    pub fn take_stalled(&mut self) -> Option<u32> {
        self.stalled.pop()
    }

    /// Starts a new flow owned by process `waker`. Call
    /// [`FlowNet::next_completion`] afterwards to reschedule the tick.
    ///
    /// # Panics
    /// Panics if the spec references an unknown link.
    pub fn start(&mut self, now: SimTime, spec: FlowSpec, waker: u32) -> FlowKey {
        for l in &spec.links {
            assert!(
                (l.0 as usize) < self.links.len(),
                "flow references unknown link {:?}",
                l
            );
        }
        self.settle(now);
        let flow = Flow {
            remaining: spec.bytes.as_f64(),
            links: spec.links,
            waker,
            rate: 0.0,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.flows[i] = Some(flow);
                i
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        let slot = i as u32;
        let pos = self.active.partition_point(|&a| a < slot);
        self.active.insert(pos, slot);
        for l in self.flows[i].as_ref().expect("just inserted").links.clone() {
            let li = l.0 as usize;
            if self.members[li].is_empty() {
                let tpos = self.touched.partition_point(|&t| t < l.0);
                self.touched.insert(tpos, l.0);
            }
            let mpos = self.members[li].partition_point(|&m| m < slot);
            self.members[li].insert(mpos, slot);
        }
        self.recompute();
        FlowKey(i)
    }

    /// Advances flow progress to `now`, removes completed flows, and
    /// appends the process indices to resume to `woken` (cleared first,
    /// in deterministic flow order). The caller owns the buffer so the
    /// per-tick allocation can be amortised away.
    pub fn tick(&mut self, now: SimTime, woken: &mut Vec<u32>) {
        self.settle(now);
        woken.clear();
        let done = &mut self.scratch.done;
        done.clear();
        for &fi in &self.active {
            let f = self.flows[fi as usize].as_ref().expect("active flow");
            if f.remaining <= EPSILON_BYTES || f.rate.is_infinite() {
                done.push(fi as usize);
            }
        }
        if done.is_empty() {
            return;
        }
        // `done` is ascending, so wakers and the free list fill in the
        // same order the dense slot scan produced.
        for k in 0..self.scratch.done.len() {
            let i = self.scratch.done[k];
            let f = self.flows[i].take().expect("completed flow");
            woken.push(f.waker);
            for l in &f.links {
                let li = l.0 as usize;
                let mpos = self.members[li]
                    .iter()
                    .position(|&m| m == i as u32)
                    .expect("completed flow is a member");
                self.members[li].remove(mpos);
                if self.members[li].is_empty() {
                    let tpos = self
                        .touched
                        .iter()
                        .position(|&t| t == l.0)
                        .expect("member link is touched");
                    self.touched.remove(tpos);
                }
            }
            self.free.push(i);
        }
        self.active.retain(|&fi| self.flows[fi as usize].is_some());
        self.recompute();
    }

    /// When the earliest active flow will complete, if any.
    ///
    /// O(1): rates only change inside `FlowNet::recompute`, which folds
    /// each flow's completion deadline into a maintained minimum the
    /// moment the rate freezes. The cached value is relative to the last
    /// settle instant; every scheduler query happens right after a
    /// settle+recompute at the same timestamp, so the fast path always
    /// applies there. Any other call pattern (e.g. a probe at an
    /// arbitrary time) falls back to the reference scan.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.earliest_fresh && now == self.last_settle {
            return self.earliest.map(|d| now.saturating_add(d));
        }
        self.next_completion_reference(now)
    }

    /// Reference implementation of [`FlowNet::next_completion`]: a full
    /// scan over every flow slot. Kept as the oracle the incremental
    /// completion index is property-tested against.
    pub fn next_completion_reference(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<SimDuration> = None;
        for f in self.flows.iter().flatten() {
            let d = if f.remaining <= EPSILON_BYTES || f.rate.is_infinite() {
                SimDuration::ZERO
            } else if f.rate <= 0.0 {
                continue; // starved; cannot complete until rates change
            } else {
                Self::completion_delay(f.remaining, f.rate)
            };
            best = Some(match best {
                Some(b) if b <= d => b,
                _ => d,
            });
        }
        best.map(|d| now.saturating_add(d))
    }

    /// How long a flow with `remaining` bytes at `rate` B/s needs to
    /// finish. Rounds *up* and pads by 1 ns so the settle at the
    /// scheduled instant always clears the flow; rounding down can strand
    /// a sub-nanosecond sliver of bytes and loop forever at one
    /// timestamp.
    #[inline]
    fn completion_delay(remaining: f64, rate: f64) -> SimDuration {
        let ns = (remaining / rate * 1e9).ceil();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration::from_nanos((ns as u64).saturating_add(1))
        }
    }

    /// Advances all remaining-byte counters to `now` at current rates.
    fn settle(&mut self, now: SimTime) {
        let dt = now
            .saturating_duration_since(self.last_settle)
            .as_secs_f64();
        self.last_settle = now;
        if dt <= 0.0 {
            return;
        }
        // Remaining-byte counters moved; cached deadlines are measured
        // from the old settle instant and must be re-derived.
        self.earliest_fresh = false;
        for &fi in &self.active {
            let f = self.flows[fi as usize].as_mut().expect("active flow");
            if f.rate.is_infinite() {
                f.remaining = 0.0;
            } else {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
    }

    /// Recomputes max-min fair rates with progressive filling, and the
    /// completion deadlines that follow from them.
    ///
    /// The work done here is proportional to the *active* flows and the
    /// links they touch — counts and residuals come from the per-link
    /// membership lists, the bottleneck of each filling round comes from
    /// a lazily-revalidated min-heap (stale keys are discarded when the
    /// current `residual/count` no longer matches), and each round
    /// freezes only the members of the bottleneck link. Tie-breaking and
    /// floating-point evaluation order are kept exactly as the dense scan
    /// had them (ascending link id, ascending flow slot, shares derived
    /// from the live residual/count at selection time), so computed
    /// rates — and therefore virtual time — are bit-identical.
    fn recompute(&mut self) {
        let FlowNet {
            links,
            flows,
            active,
            members,
            touched,
            earliest,
            earliest_fresh,
            stalled,
            scratch,
            ..
        } = self;
        let RecomputeScratch {
            counts,
            residual,
            heap,
            frozen_at,
            epoch,
            ..
        } = scratch;
        *epoch += 1;
        let epoch = *epoch;
        counts.resize(links.len(), 0);
        residual.resize(links.len(), 0.0);
        frozen_at.resize(flows.len(), 0);
        heap.clear();
        stalled.clear();
        *earliest = None;
        *earliest_fresh = true;
        let mut unfrozen = active.len();
        for &li in touched.iter() {
            let l = li as usize;
            counts[l] = members[l].len() as u32;
            residual[l] = links[l].capacity;
            if !links[l].capacity.is_infinite() {
                heap.push(Reverse(ShareKey {
                    share: residual[l] / counts[l] as f64,
                    li,
                }));
            }
        }
        while unfrozen > 0 {
            // Pop heap keys until one still matches the live share of its
            // link; anything a freeze invalidated was re-pushed with the
            // fresh value, so the first match is the true bottleneck.
            let mut bottleneck = None;
            while let Some(&Reverse(key)) = heap.peek() {
                let l = key.li as usize;
                if counts[l] == 0 {
                    heap.pop();
                    continue;
                }
                let share = residual[l] / counts[l] as f64;
                if share == key.share {
                    bottleneck = Some((l, share));
                    break;
                }
                heap.pop();
            }
            match bottleneck {
                None => {
                    // Remaining flows cross only infinite-capacity links.
                    for &fi in active.iter() {
                        let i = fi as usize;
                        if frozen_at[i] == epoch {
                            continue;
                        }
                        flows[i].as_mut().expect("active flow").rate = f64::INFINITY;
                        // Infinite rate completes at the next tick.
                        fold_deadline(earliest, SimDuration::ZERO);
                    }
                    break;
                }
                Some((bli, share)) => {
                    heap.pop();
                    let share = share.max(0.0);
                    // Freeze all unfrozen flows crossing the bottleneck in
                    // ascending slot order (the dense scan's flow order).
                    for &m in &members[bli] {
                        let i = m as usize;
                        if frozen_at[i] == epoch {
                            continue;
                        }
                        frozen_at[i] = epoch;
                        unfrozen -= 1;
                        let f = flows[i].as_mut().expect("member flow is active");
                        f.rate = share;
                        for l in &f.links {
                            let li = l.0 as usize;
                            residual[li] = (residual[li] - share).max(0.0);
                            counts[li] -= 1;
                            if counts[li] > 0 && !links[li].capacity.is_infinite() {
                                heap.push(Reverse(ShareKey {
                                    share: residual[li] / counts[li] as f64,
                                    li: l.0,
                                }));
                            }
                        }
                        if f.remaining <= EPSILON_BYTES || f.rate.is_infinite() {
                            fold_deadline(earliest, SimDuration::ZERO);
                        } else if f.rate <= 0.0 {
                            // The fair share came out non-positive: the
                            // links this flow crosses were fully consumed
                            // by earlier-frozen flows, so it can never
                            // finish at current rates. Surface it loudly
                            // instead of letting the run hang.
                            debug_assert!(
                                false,
                                "flow for process {} starved at rate {} with {} bytes left",
                                f.waker, f.rate, f.remaining
                            );
                            stalled.push(f.waker);
                        } else {
                            fold_deadline(earliest, Self::completion_delay(f.remaining, f.rate));
                        }
                    }
                }
            }
        }
    }
}

/// Folds one completion delay into the maintained minimum, keeping the
/// incumbent on ties exactly as the reference scan does.
#[inline]
fn fold_deadline(earliest: &mut Option<SimDuration>, d: SimDuration) {
    *earliest = Some(match *earliest {
        Some(b) if b <= d => b,
        _ => d,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn rates(net: &FlowNet) -> Vec<f64> {
        net.flows.iter().flatten().map(|f| f.rate).collect()
    }

    fn tick(net: &mut FlowNet, now: SimTime) -> Vec<u32> {
        let mut woken = Vec::new();
        net.tick(now, &mut woken);
        woken
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(200),
                links: vec![l],
            },
            0,
        );
        assert_eq!(rates(&net), vec![100.0]);
        let done_at = net.next_completion(t(0)).expect("one active flow");
        assert!(done_at.as_nanos().abs_diff(t(2000).as_nanos()) <= 2);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        let spec = |b| FlowSpec {
            bytes: ByteSize::new(b),
            links: vec![l],
        };
        net.start(t(0), spec(100), 0);
        net.start(t(0), spec(100), 1);
        assert_eq!(rates(&net), vec![50.0, 50.0]);
    }

    #[test]
    fn bottleneck_elsewhere_frees_capacity() {
        // Flow A limited by its private 10 B/s NIC; flow B shares the
        // 100 B/s backbone with A and should get the residual 90 B/s.
        let mut net = FlowNet::new();
        let nic = net.add_link(Bandwidth::bytes_per_sec(10.0));
        let backbone = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(1000),
                links: vec![nic, backbone],
            },
            0,
        );
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(1000),
                links: vec![backbone],
            },
            1,
        );
        let r = rates(&net);
        assert_eq!(r[0], 10.0);
        assert_eq!(r[1], 90.0);
    }

    #[test]
    fn rates_rebalance_when_a_flow_finishes() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(50),
                links: vec![l],
            },
            0,
        );
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(500),
                links: vec![l],
            },
            1,
        );
        // Both at 50 B/s; flow 0 finishes at t=1s.
        let first = net.next_completion(t(0)).expect("two active flows");
        assert!(first.as_nanos().abs_diff(t(1000).as_nanos()) <= 2);
        let woken = tick(&mut net, first);
        assert_eq!(woken, vec![0]);
        // Flow 1 had 500-50=450 left, now at full 100 B/s.
        assert_eq!(rates(&net), vec![100.0]);
        let second = net.next_completion(first).expect("one active flow");
        assert!(second.as_nanos().abs_diff(t(1000 + 4500).as_nanos()) <= 4);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(5),
            FlowSpec {
                bytes: ByteSize::ZERO,
                links: vec![l],
            },
            7,
        );
        assert_eq!(net.next_completion(t(5)), Some(t(5)));
        assert_eq!(tick(&mut net, t(5)), vec![7]);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn unconstrained_flow_is_instantaneous() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::UNLIMITED);
        net.start(
            t(1),
            FlowSpec {
                bytes: ByteSize::gib(10),
                links: vec![l],
            },
            3,
        );
        assert_eq!(net.next_completion(t(1)), Some(t(1)));
        assert_eq!(tick(&mut net, t(1)), vec![3]);
    }

    #[test]
    fn aggregate_link_rate_reports_sum() {
        let mut net = FlowNet::new();
        let backbone = net.add_link(Bandwidth::bytes_per_sec(1000.0));
        for i in 0..4 {
            let nic = net.add_link(Bandwidth::bytes_per_sec(100.0));
            net.start(
                t(0),
                FlowSpec {
                    bytes: ByteSize::new(10_000),
                    links: vec![nic, backbone],
                },
                i,
            );
        }
        // 4 NIC-limited flows at 100 B/s each => 400 B/s on the backbone.
        assert!((net.link_rate(backbone) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn backbone_saturation_caps_aggregate() {
        let mut net = FlowNet::new();
        let backbone = net.add_link(Bandwidth::bytes_per_sec(250.0));
        for i in 0..4 {
            let nic = net.add_link(Bandwidth::bytes_per_sec(100.0));
            net.start(
                t(0),
                FlowSpec {
                    bytes: ByteSize::new(10_000),
                    links: vec![nic, backbone],
                },
                i,
            );
        }
        // Fair share on the backbone is 62.5 B/s < NIC cap.
        for r in rates(&net) {
            assert!((r - 62.5).abs() < 1e-9);
        }
        assert!((net.link_rate(backbone) - 250.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn unknown_link_panics() {
        let mut net = FlowNet::new();
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(1),
                links: vec![LinkId(9)],
            },
            0,
        );
    }

    #[test]
    fn flow_slots_are_reused() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        let spec = FlowSpec {
            bytes: ByteSize::new(100),
            links: vec![l],
        };
        net.start(t(0), spec.clone(), 0);
        let done = net.next_completion(t(0)).expect("one flow");
        tick(&mut net, done);
        net.start(done, spec, 1);
        assert_eq!(net.flows.len(), 1, "slot should be recycled");
    }

    #[test]
    fn cached_next_completion_matches_reference_after_churn() {
        let mut net = FlowNet::new();
        let backbone = net.add_link(Bandwidth::bytes_per_sec(1000.0));
        let mut now = t(0);
        for i in 0..32u32 {
            let nic = net.add_link(Bandwidth::bytes_per_sec(64.0 + i as f64));
            net.start(
                now,
                FlowSpec {
                    bytes: ByteSize::new(1000 + 37 * i as u64),
                    links: vec![nic, backbone],
                },
                i,
            );
            assert_eq!(
                net.next_completion(now),
                net.next_completion_reference(now),
                "after start {}",
                i
            );
            now = now.saturating_add(SimDuration::from_nanos(1_000_000 * (i as u64 % 3)));
        }
        while net.active_flows() > 0 {
            let at = net.next_completion(now).expect("active flows remain");
            assert_eq!(net.next_completion(now), net.next_completion_reference(now));
            let woken = tick(&mut net, at);
            assert!(!woken.is_empty(), "tick at next_completion completes");
            now = at;
            assert_eq!(net.next_completion(now), net.next_completion_reference(now));
        }
    }

    #[test]
    fn healthy_topologies_never_report_stalls() {
        // With exact arithmetic progressive filling cannot starve a flow
        // (each round's bottleneck share is non-decreasing), so the stall
        // channel only trips on a rate-computation bug or float
        // pathology. A saturated mixed topology must stay clean.
        let mut net = FlowNet::new();
        let backbone = net.add_link(Bandwidth::bytes_per_sec(250.0));
        for i in 0..8 {
            let nic = net.add_link(Bandwidth::bytes_per_sec(100.0));
            net.start(
                t(0),
                FlowSpec {
                    bytes: ByteSize::new(1000 + i as u64),
                    links: vec![nic, backbone],
                },
                i,
            );
            assert_eq!(net.take_stalled(), None, "after start {}", i);
        }
        while net.active_flows() > 0 {
            let at = net
                .next_completion(net.last_settle)
                .expect("active flows remain");
            tick(&mut net, at);
            assert_eq!(net.take_stalled(), None);
        }
    }
}
