//! Max-min fair fluid-flow network.
//!
//! Data transfers in the simulated cloud are modelled as *fluid flows*: a
//! flow has a byte count and traverses a set of capacity-constrained links
//! (e.g. a function's NIC, the object store's per-connection cap, the
//! store's aggregate backbone). At any instant each flow progresses at its
//! **max-min fair** rate given all concurrently active flows; rates are
//! recomputed whenever a flow starts or finishes (progressive filling /
//! water-filling algorithm).
//!
//! This is what makes "the huge aggregated bandwidth of object storage" —
//! the paper's central performance argument — an emergent, measurable
//! property of the simulation: adding more functions adds more NIC links,
//! and aggregate throughput grows until the store's backbone saturates.

use crate::units::{Bandwidth, ByteSize, SimDuration, SimTime};

/// Identifies a capacity-constrained link in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) u32);

/// Identifies an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey(usize);

/// Description of a transfer: how many bytes, across which links.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Total bytes the flow must move.
    pub bytes: ByteSize,
    /// Every link the flow traverses; its rate is bounded by each of them.
    pub links: Vec<LinkId>,
}

#[derive(Debug)]
struct Link {
    capacity: f64, // bytes/sec, may be infinite
}

#[derive(Debug)]
struct Flow {
    remaining: f64, // bytes
    links: Vec<LinkId>,
    waker: u32, // process index to resume on completion
    rate: f64,  // current fair-share rate, bytes/sec
}

/// Bytes of slack under which a flow counts as complete (guards float
/// round-off in settle arithmetic).
const EPSILON_BYTES: f64 = 1e-6;

/// The fluid-flow network. Owned by the simulation scheduler; processes
/// interact with it through [`Ctx::transfer`](crate::Ctx::transfer).
#[derive(Debug, Default)]
pub struct FlowNet {
    links: Vec<Link>,
    flows: Vec<Option<Flow>>,
    free: Vec<usize>,
    last_settle: SimTime,
    active: usize,
    /// Scratch for [`FlowNet::recompute`], reused across calls so the hot
    /// path does no per-event allocation. `counts` and `residual` are
    /// link-indexed and only the entries named by `touched` are ever
    /// initialised or read; `counts` entries are zeroed again on exit.
    scratch: RecomputeScratch,
}

#[derive(Debug, Default)]
struct RecomputeScratch {
    counts: Vec<usize>,
    residual: Vec<f64>,
    touched: Vec<u32>,
    unfrozen: Vec<usize>,
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Adds a link with the given capacity and returns its id.
    pub fn add_link(&mut self, capacity: Bandwidth) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            capacity: capacity.as_bytes_per_sec(),
        });
        id
    }

    /// Number of flows currently in progress.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// The instantaneous aggregate rate through `link`, in bytes/sec.
    /// Useful for instrumentation (e.g. the aggregate-bandwidth experiment).
    pub fn link_rate(&self, link: LinkId) -> f64 {
        self.flows
            .iter()
            .flatten()
            .filter(|f| f.links.contains(&link))
            .map(|f| f.rate)
            .sum()
    }

    /// Starts a new flow owned by process `waker`. Call
    /// [`FlowNet::next_completion`] afterwards to reschedule the tick.
    ///
    /// # Panics
    /// Panics if the spec references an unknown link.
    pub fn start(&mut self, now: SimTime, spec: FlowSpec, waker: u32) -> FlowKey {
        for l in &spec.links {
            assert!(
                (l.0 as usize) < self.links.len(),
                "flow references unknown link {:?}",
                l
            );
        }
        self.settle(now);
        let flow = Flow {
            remaining: spec.bytes.as_f64(),
            links: spec.links,
            waker,
            rate: 0.0,
        };
        let key = match self.free.pop() {
            Some(i) => {
                self.flows[i] = Some(flow);
                FlowKey(i)
            }
            None => {
                self.flows.push(Some(flow));
                FlowKey(self.flows.len() - 1)
            }
        };
        self.active += 1;
        self.recompute();
        key
    }

    /// Advances flow progress to `now`, removes completed flows, and
    /// returns the process indices to resume (in deterministic flow order).
    pub fn tick(&mut self, now: SimTime) -> Vec<u32> {
        self.settle(now);
        let mut done = Vec::new();
        for i in 0..self.flows.len() {
            let completed = matches!(&self.flows[i], Some(f) if f.remaining <= EPSILON_BYTES || f.rate.is_infinite());
            if completed {
                let f = self.flows[i].take().expect("flow checked above");
                done.push(f.waker);
                self.free.push(i);
                self.active -= 1;
            }
        }
        if !done.is_empty() {
            self.recompute();
        }
        done
    }

    /// When the earliest active flow will complete, if any.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<SimDuration> = None;
        for f in self.flows.iter().flatten() {
            let d = if f.remaining <= EPSILON_BYTES || f.rate.is_infinite() {
                SimDuration::ZERO
            } else if f.rate <= 0.0 {
                continue; // stalled; cannot complete (should not happen)
            } else {
                // Round *up* and pad by 1 ns so the settle at the scheduled
                // instant always clears the flow; rounding down can strand
                // a sub-nanosecond sliver of bytes and loop forever at one
                // timestamp.
                let ns = (f.remaining / f.rate * 1e9).ceil();
                if ns >= u64::MAX as f64 {
                    SimDuration::MAX
                } else {
                    SimDuration::from_nanos((ns as u64).saturating_add(1))
                }
            };
            best = Some(match best {
                Some(b) if b <= d => b,
                _ => d,
            });
        }
        best.map(|d| now.saturating_add(d))
    }

    /// Advances all remaining-byte counters to `now` at current rates.
    fn settle(&mut self, now: SimTime) {
        let dt = now
            .saturating_duration_since(self.last_settle)
            .as_secs_f64();
        self.last_settle = now;
        if dt <= 0.0 {
            return;
        }
        for f in self.flows.iter_mut().flatten() {
            if f.rate.is_infinite() {
                f.remaining = 0.0;
            } else {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
    }

    /// Recomputes max-min fair rates with progressive filling.
    ///
    /// The work done here is proportional to the *active* flows and the
    /// links they touch, never to the total number of links ever created:
    /// links accumulate over a run (every simulated connection adds one),
    /// and a naive scan over all of them on every start/completion turns
    /// the whole simulation quadratic in request count. Tie-breaking and
    /// floating-point evaluation order are kept exactly as the dense scan
    /// had them (ascending link id, ascending flow slot), so computed
    /// rates — and therefore virtual time — are bit-identical.
    fn recompute(&mut self) {
        let RecomputeScratch {
            counts,
            residual,
            touched,
            unfrozen,
        } = &mut self.scratch;
        counts.resize(self.links.len(), 0);
        residual.resize(self.links.len(), 0.0);
        touched.clear();
        // Indices of unfrozen active flows, ascending slot order.
        unfrozen.clear();
        for (i, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            unfrozen.push(i);
            for l in &f.links {
                if counts[l.0 as usize] == 0 {
                    touched.push(l.0);
                }
                counts[l.0 as usize] += 1;
            }
        }
        // Bottleneck search must consider links in ascending id order so
        // equal-share ties resolve exactly as the dense scan did.
        touched.sort_unstable();
        for &li in touched.iter() {
            residual[li as usize] = self.links[li as usize].capacity;
        }
        // Flows on links with no finite capacity anywhere get infinite rate.
        while !unfrozen.is_empty() {
            // Find the bottleneck link: min fair share among finite links
            // with unfrozen flows.
            let mut bottleneck: Option<(usize, f64)> = None;
            for &li in touched.iter() {
                let li = li as usize;
                if counts[li] == 0 || self.links[li].capacity.is_infinite() {
                    continue;
                }
                let share = residual[li] / counts[li] as f64;
                match bottleneck {
                    Some((_, s)) if s <= share => {}
                    _ => bottleneck = Some((li, share)),
                }
            }
            match bottleneck {
                None => {
                    // Remaining flows are unconstrained.
                    for &fi in unfrozen.iter() {
                        self.flows[fi].as_mut().expect("unfrozen flow exists").rate = f64::INFINITY;
                    }
                    break;
                }
                Some((bli, share)) => {
                    let share = share.max(0.0);
                    // Freeze all unfrozen flows crossing the bottleneck,
                    // compacting the survivors in place (order preserved).
                    let mut kept = 0;
                    for idx in 0..unfrozen.len() {
                        let fi = unfrozen[idx];
                        let crosses = self.flows[fi]
                            .as_ref()
                            .expect("unfrozen flow exists")
                            .links
                            .iter()
                            .any(|l| l.0 as usize == bli);
                        if crosses {
                            let f = self.flows[fi].as_mut().expect("unfrozen flow exists");
                            f.rate = share;
                            for l in &f.links {
                                let li = l.0 as usize;
                                residual[li] = (residual[li] - share).max(0.0);
                                counts[li] -= 1;
                            }
                        } else {
                            unfrozen[kept] = fi;
                            kept += 1;
                        }
                    }
                    unfrozen.truncate(kept);
                }
            }
        }
        // Leave `counts` all-zero for the next call (`touched` names every
        // entry that could have been incremented; frozen flows already
        // decremented theirs, infinite-capacity rounds may not have).
        for &li in touched.iter() {
            counts[li as usize] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn rates(net: &FlowNet) -> Vec<f64> {
        net.flows.iter().flatten().map(|f| f.rate).collect()
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(200),
                links: vec![l],
            },
            0,
        );
        assert_eq!(rates(&net), vec![100.0]);
        let done_at = net.next_completion(t(0)).expect("one active flow");
        assert!(done_at.as_nanos().abs_diff(t(2000).as_nanos()) <= 2);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        let spec = |b| FlowSpec {
            bytes: ByteSize::new(b),
            links: vec![l],
        };
        net.start(t(0), spec(100), 0);
        net.start(t(0), spec(100), 1);
        assert_eq!(rates(&net), vec![50.0, 50.0]);
    }

    #[test]
    fn bottleneck_elsewhere_frees_capacity() {
        // Flow A limited by its private 10 B/s NIC; flow B shares the
        // 100 B/s backbone with A and should get the residual 90 B/s.
        let mut net = FlowNet::new();
        let nic = net.add_link(Bandwidth::bytes_per_sec(10.0));
        let backbone = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(1000),
                links: vec![nic, backbone],
            },
            0,
        );
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(1000),
                links: vec![backbone],
            },
            1,
        );
        let r = rates(&net);
        assert_eq!(r[0], 10.0);
        assert_eq!(r[1], 90.0);
    }

    #[test]
    fn rates_rebalance_when_a_flow_finishes() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(50),
                links: vec![l],
            },
            0,
        );
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(500),
                links: vec![l],
            },
            1,
        );
        // Both at 50 B/s; flow 0 finishes at t=1s.
        let first = net.next_completion(t(0)).expect("two active flows");
        assert!(first.as_nanos().abs_diff(t(1000).as_nanos()) <= 2);
        let woken = net.tick(first);
        assert_eq!(woken, vec![0]);
        // Flow 1 had 500-50=450 left, now at full 100 B/s.
        assert_eq!(rates(&net), vec![100.0]);
        let second = net.next_completion(first).expect("one active flow");
        assert!(second.as_nanos().abs_diff(t(1000 + 4500).as_nanos()) <= 4);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        net.start(
            t(5),
            FlowSpec {
                bytes: ByteSize::ZERO,
                links: vec![l],
            },
            7,
        );
        assert_eq!(net.next_completion(t(5)), Some(t(5)));
        assert_eq!(net.tick(t(5)), vec![7]);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn unconstrained_flow_is_instantaneous() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::UNLIMITED);
        net.start(
            t(1),
            FlowSpec {
                bytes: ByteSize::gib(10),
                links: vec![l],
            },
            3,
        );
        assert_eq!(net.next_completion(t(1)), Some(t(1)));
        assert_eq!(net.tick(t(1)), vec![3]);
    }

    #[test]
    fn aggregate_link_rate_reports_sum() {
        let mut net = FlowNet::new();
        let backbone = net.add_link(Bandwidth::bytes_per_sec(1000.0));
        for i in 0..4 {
            let nic = net.add_link(Bandwidth::bytes_per_sec(100.0));
            net.start(
                t(0),
                FlowSpec {
                    bytes: ByteSize::new(10_000),
                    links: vec![nic, backbone],
                },
                i,
            );
        }
        // 4 NIC-limited flows at 100 B/s each => 400 B/s on the backbone.
        assert!((net.link_rate(backbone) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn backbone_saturation_caps_aggregate() {
        let mut net = FlowNet::new();
        let backbone = net.add_link(Bandwidth::bytes_per_sec(250.0));
        for i in 0..4 {
            let nic = net.add_link(Bandwidth::bytes_per_sec(100.0));
            net.start(
                t(0),
                FlowSpec {
                    bytes: ByteSize::new(10_000),
                    links: vec![nic, backbone],
                },
                i,
            );
        }
        // Fair share on the backbone is 62.5 B/s < NIC cap.
        for r in rates(&net) {
            assert!((r - 62.5).abs() < 1e-9);
        }
        assert!((net.link_rate(backbone) - 250.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn unknown_link_panics() {
        let mut net = FlowNet::new();
        net.start(
            t(0),
            FlowSpec {
                bytes: ByteSize::new(1),
                links: vec![LinkId(9)],
            },
            0,
        );
    }

    #[test]
    fn flow_slots_are_reused() {
        let mut net = FlowNet::new();
        let l = net.add_link(Bandwidth::bytes_per_sec(100.0));
        let spec = FlowSpec {
            bytes: ByteSize::new(100),
            links: vec![l],
        };
        net.start(t(0), spec.clone(), 0);
        let done = net.next_completion(t(0)).expect("one flow");
        net.tick(done);
        net.start(done, spec, 1);
        assert_eq!(net.flows.len(), 1, "slot should be recycled");
    }
}
