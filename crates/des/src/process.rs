//! Simulation processes and the [`Ctx`] handle they use to interact with
//! the simulation kernel.
//!
//! Processes come in two flavors sharing one process table and one
//! virtual-time schedule:
//!
//! * **Stackless tasks** (the default for new code): the body is an
//!   `async` future polled by the scheduler on its own thread. Every
//!   simulation operation (`sleep_async`, `sem_acquire_async`,
//!   `transfer_async`, `spawn_task`, `join_async`, …) is a yield point —
//!   the future deposits its request in a shared `OpCell` and returns
//!   `Poll::Pending`; the scheduler services the request and re-polls
//!   when the virtual-time condition is met. A suspended task is a small
//!   heap-allocated state machine, not a parked OS thread.
//! * **Thread-backed closures** (the legacy bridge): the body is a plain
//!   `FnOnce(&mut Ctx)` run on a worker thread borrowed from the
//!   scheduler's pool, in strict rendezvous with the scheduler. The same
//!   async operations resolve *eagerly* through the rendezvous in this
//!   mode, so async helpers can be driven from blocking code with
//!   [`run_blocking`].
//!
//! In both modes the scheduler resumes exactly one process at a time, so
//! host thread scheduling never influences simulation outcomes.

use std::any::Any;
use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context as PollContext, Poll, Waker};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::flow::{FlowSpec, LinkId};
use crate::pool::Rendezvous;
use crate::resources::{LimiterId, SemId};
use crate::units::{Bandwidth, ByteSize, SimDuration, SimTime};

/// Identifies a process within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// The dense index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Error returned by [`Ctx::join`] when the joined process panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinError {
    /// Name of the process that failed.
    pub process: String,
    /// Rendered panic payload.
    pub message: String,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "process '{}' panicked: {}", self.process, self.message)
    }
}

impl std::error::Error for JoinError {}

/// The body of a thread-backed simulation process.
pub type ProcessFn = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// A boxed future pinned on the scheduler thread. Task futures are
/// created and polled only there, so they need not be `Send`.
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// The body of a stackless simulation process: receives its owned
/// [`Ctx`] and returns the process future. The closure crosses threads
/// (a thread-backed parent may spawn tasks), the future it creates never
/// does.
pub(crate) type TaskFn = Box<dyn FnOnce(Ctx) -> LocalBoxFuture<'static, ()> + Send + 'static>;

/// A CPU-heavy kernel dispatched to the offload pool, type-erased.
pub(crate) type OffloadJob = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send + 'static>;

/// Result of an offload job: the kernel's output, or its panic payload.
pub(crate) type OffloadOutcome = std::thread::Result<Box<dyn Any + Send>>;

/// Either flavor of process body, as carried by a spawn request.
pub(crate) enum ProcessBody {
    Blocking(ProcessFn),
    Task(TaskFn),
}

/// Requests a process sends to the scheduler. Every request is acknowledged
/// before the process continues; "blocking" requests are acknowledged only
/// when the condition is met.
pub(crate) enum YieldMsg {
    Sleep(SimDuration),
    SemCreate(u64),
    SemAcquire(SemId, u64),
    SemRelease(SemId, u64),
    LimiterCreate { rate: f64, burst: f64 },
    LimiterAcquire(LimiterId, f64),
    LinkCreate(Bandwidth),
    Transfer(FlowSpec),
    Spawn { name: String, body: ProcessBody },
    Join(ProcessId),
    Offload { d: SimDuration, job: OffloadJob },
    Finished(Result<(), String>),
}

/// Scheduler replies.
pub(crate) enum ResumeMsg {
    Go,
    Sem(SemId),
    Limiter(LimiterId),
    Link(LinkId),
    Pid(ProcessId),
    JoinResult(Result<(), JoinError>),
    /// Internal: the process sleeps until its offload deadline; the
    /// scheduler converts this to [`ResumeMsg::OffloadDone`] at wake,
    /// host-blocking for the kernel result only then.
    OffloadWait(u64),
    OffloadDone(OffloadOutcome),
    Shutdown,
}

impl std::fmt::Debug for ResumeMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeMsg::Go => write!(f, "Go"),
            ResumeMsg::Sem(id) => write!(f, "Sem({:?})", id),
            ResumeMsg::Limiter(id) => write!(f, "Limiter({:?})", id),
            ResumeMsg::Link(id) => write!(f, "Link({:?})", id),
            ResumeMsg::Pid(pid) => write!(f, "Pid({:?})", pid),
            ResumeMsg::JoinResult(r) => write!(f, "JoinResult({:?})", r),
            ResumeMsg::OffloadWait(t) => write!(f, "OffloadWait({})", t),
            ResumeMsg::OffloadDone(r) => {
                write!(
                    f,
                    "OffloadDone({})",
                    if r.is_ok() { "ok" } else { "panicked" }
                )
            }
            ResumeMsg::Shutdown => write!(f, "Shutdown"),
        }
    }
}

/// Marker panic payload used to unwind process threads on teardown.
pub(crate) struct ShutdownSignal;

/// Whether a caught panic payload is the kernel's teardown signal.
///
/// Services that wrap user closures in `catch_unwind` (e.g. to release a
/// resource on crash) must *not* touch simulation primitives when this
/// returns `true` — the scheduler is shutting down — and should simply
/// resume unwinding.
pub fn is_shutdown_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<ShutdownSignal>().is_some()
}

/// The one-slot mailbox between a suspended task and the scheduler:
/// the task's pending operation goes in `request`, the scheduler's
/// answer comes back in `reply`. Single-threaded by construction (both
/// sides run on the scheduler thread), hence plain `RefCell`s.
#[derive(Default)]
pub(crate) struct OpCell {
    pub(crate) request: RefCell<Option<YieldMsg>>,
    pub(crate) reply: RefCell<Option<ResumeMsg>>,
}

/// How a [`Ctx`] reaches the scheduler.
enum CtxMode {
    /// Legacy bridge: rendezvous channels to the scheduler thread.
    Thread {
        yield_tx: Arc<Rendezvous<(u32, YieldMsg)>>,
        resume_rx: Arc<Rendezvous<ResumeMsg>>,
    },
    /// Stackless task: a mailbox shared with the scheduler's slot.
    Task { cell: Rc<OpCell> },
}

/// Leaf future for one simulation operation of a stackless task. First
/// poll deposits the request and suspends; the scheduler answers (now or
/// at the wake instant) and re-polls, completing the future.
struct OpFuture {
    cell: Rc<OpCell>,
    msg: Option<YieldMsg>,
}

impl Future for OpFuture {
    type Output = ResumeMsg;

    fn poll(self: Pin<&mut Self>, _cx: &mut PollContext<'_>) -> Poll<ResumeMsg> {
        let this = self.get_mut();
        if let Some(msg) = this.msg.take() {
            let prev = this.cell.request.borrow_mut().replace(msg);
            debug_assert!(
                prev.is_none(),
                "a task submitted a simulation op while another is pending"
            );
            return Poll::Pending;
        }
        match this.cell.reply.borrow_mut().take() {
            Some(ResumeMsg::Shutdown) => std::panic::panic_any(ShutdownSignal),
            Some(reply) => Poll::Ready(reply),
            // Spurious poll before the scheduler answered; stay suspended.
            None => Poll::Pending,
        }
    }
}

/// Drives `fut` to completion from blocking (thread-backed) process code.
///
/// Inside a thread-backed process every simulation op resolves eagerly
/// through the scheduler rendezvous, so the future completes in a single
/// poll. Calling this inside a *stackless* process panics — `.await` the
/// operation instead.
pub fn run_blocking<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = PollContext::from_waker(Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(v) => v,
        Poll::Pending => panic!(
            "run_blocking suspended: blocking facades only work on \
             thread-backed processes; `.await` the async variant instead"
        ),
    }
}

/// Future adapter that converts a panic during `poll` into an `Err`,
/// allowing async process code to observe panics across `.await` points
/// (the async analogue of `std::panic::catch_unwind` around a closure).
pub struct CatchUnwind<F>(F);

impl<F: Future> Future for CatchUnwind<F> {
    type Output = std::thread::Result<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut PollContext<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of the only field; it is never moved.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(payload) => Poll::Ready(Err(payload)),
        }
    }
}

/// Wraps `fut` so a panic in its body resolves to `Err(payload)` instead
/// of unwinding through the caller.
pub fn catch_unwind_future<F: Future>(fut: F) -> CatchUnwind<F> {
    CatchUnwind(fut)
}

/// Handle through which a process body interacts with the simulation.
///
/// All methods that model the passage of time or contention **block in
/// virtual time**: the calling process is suspended until the scheduler
/// reaches the corresponding instant. Plain methods (`sleep`, `join`, …)
/// are for thread-backed closures; `_async` variants are for stackless
/// tasks (and also work, resolving eagerly, on thread-backed processes).
pub struct Ctx {
    pid: ProcessId,
    name: Arc<str>,
    clock: Arc<AtomicU64>,
    mode: CtxMode,
    rng: SmallRng,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("now", &self.now())
            .finish()
    }
}

impl Ctx {
    fn seeded_rng(pid: ProcessId, seed: u64) -> SmallRng {
        let stream = seed ^ (pid.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SmallRng::seed_from_u64(stream)
    }

    pub(crate) fn new_thread(
        pid: ProcessId,
        name: Arc<str>,
        clock: Arc<AtomicU64>,
        yield_tx: Arc<Rendezvous<(u32, YieldMsg)>>,
        resume_rx: Arc<Rendezvous<ResumeMsg>>,
        seed: u64,
    ) -> Self {
        Ctx {
            pid,
            name,
            clock,
            mode: CtxMode::Thread {
                yield_tx,
                resume_rx,
            },
            rng: Ctx::seeded_rng(pid, seed),
        }
    }

    pub(crate) fn new_task(
        pid: ProcessId,
        name: Arc<str>,
        clock: Arc<AtomicU64>,
        cell: Rc<OpCell>,
        seed: u64,
    ) -> Self {
        Ctx {
            pid,
            name,
            clock,
            mode: CtxMode::Task { cell },
            rng: Ctx::seeded_rng(pid, seed),
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// This process's name (given at spawn time).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.load(Ordering::SeqCst))
    }

    /// A deterministic per-process random stream (seeded from the sim seed
    /// and the process id).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    fn call(&self, msg: YieldMsg) -> ResumeMsg {
        match &self.mode {
            CtxMode::Thread {
                yield_tx,
                resume_rx,
            } => {
                yield_tx.send((self.pid.0, msg));
                match resume_rx.recv() {
                    ResumeMsg::Shutdown => std::panic::panic_any(ShutdownSignal),
                    other => other,
                }
            }
            CtxMode::Task { .. } => panic!(
                "process '{}' used a blocking simulation op inside a stackless \
                 task; use the `_async` variant and `.await` it",
                self.name
            ),
        }
    }

    /// One simulation op, in either mode: eager rendezvous on a
    /// thread-backed process, suspend-and-resume on a stackless task.
    async fn call_async(&self, msg: YieldMsg) -> ResumeMsg {
        match &self.mode {
            CtxMode::Thread { .. } => self.call(msg),
            CtxMode::Task { cell } => {
                OpFuture {
                    cell: Rc::clone(cell),
                    msg: Some(msg),
                }
                .await
            }
        }
    }

    /// Advances this process's virtual time by `d`.
    pub fn sleep(&self, d: SimDuration) {
        match self.call(YieldMsg::Sleep(d)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sleep: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::sleep`].
    pub async fn sleep_async(&self, d: SimDuration) {
        match self.call_async(YieldMsg::Sleep(d)).await {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sleep: {:?}", other),
        }
    }

    /// Charges `d` of virtual CPU time. Identical to [`Ctx::sleep`]; the
    /// distinct name keeps call sites self-describing.
    pub fn compute(&self, d: SimDuration) {
        self.sleep(d);
    }

    /// Async variant of [`Ctx::compute`].
    pub async fn compute_async(&self, d: SimDuration) {
        self.sleep_async(d).await;
    }

    /// Charges `d` of virtual CPU time *and* runs `job`, a genuinely
    /// CPU-heavy host kernel, on the offload thread pool.
    ///
    /// The virtual-time schedule is byte-for-byte identical to
    /// `ctx.compute(d)` followed by running `job()` inline: the process
    /// wakes at `now + d` exactly as a sleep would, and the kernel result
    /// is collected (host-blocking if the kernel is still running) only at
    /// that wake. On a thread-backed process the job simply runs inline.
    pub async fn offload<R, J>(&self, d: SimDuration, job: J) -> R
    where
        R: Send + 'static,
        J: FnOnce() -> R + Send + 'static,
    {
        match &self.mode {
            CtxMode::Thread { .. } => {
                self.sleep(d);
                job()
            }
            CtxMode::Task { .. } => {
                let erased: OffloadJob = Box::new(move || Box::new(job()) as Box<dyn Any + Send>);
                match self.call_async(YieldMsg::Offload { d, job: erased }).await {
                    ResumeMsg::OffloadDone(Ok(any)) => *any
                        .downcast::<R>()
                        .expect("offload job returned a value of the wrong type"),
                    ResumeMsg::OffloadDone(Err(payload)) => std::panic::resume_unwind(payload),
                    other => unreachable!("unexpected resume for offload: {:?}", other),
                }
            }
        }
    }

    /// Creates a counting semaphore with `permits` initial permits.
    pub fn sem_create(&self, permits: u64) -> SemId {
        match self.call(YieldMsg::SemCreate(permits)) {
            ResumeMsg::Sem(id) => id,
            other => unreachable!("unexpected resume for sem_create: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::sem_create`].
    pub async fn sem_create_async(&self, permits: u64) -> SemId {
        match self.call_async(YieldMsg::SemCreate(permits)).await {
            ResumeMsg::Sem(id) => id,
            other => unreachable!("unexpected resume for sem_create: {:?}", other),
        }
    }

    /// Acquires `n` permits, blocking in virtual time until granted (FIFO).
    pub fn sem_acquire(&self, id: SemId, n: u64) {
        match self.call(YieldMsg::SemAcquire(id, n)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sem_acquire: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::sem_acquire`].
    pub async fn sem_acquire_async(&self, id: SemId, n: u64) {
        match self.call_async(YieldMsg::SemAcquire(id, n)).await {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sem_acquire: {:?}", other),
        }
    }

    /// Releases `n` permits.
    pub fn sem_release(&self, id: SemId, n: u64) {
        match self.call(YieldMsg::SemRelease(id, n)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sem_release: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::sem_release`].
    pub async fn sem_release_async(&self, id: SemId, n: u64) {
        match self.call_async(YieldMsg::SemRelease(id, n)).await {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sem_release: {:?}", other),
        }
    }

    /// Creates a token-bucket rate limiter refilling at `rate` tokens/sec
    /// with capacity `burst`.
    pub fn limiter_create(&self, rate: f64, burst: f64) -> LimiterId {
        match self.call(YieldMsg::LimiterCreate { rate, burst }) {
            ResumeMsg::Limiter(id) => id,
            other => unreachable!("unexpected resume for limiter_create: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::limiter_create`].
    pub async fn limiter_create_async(&self, rate: f64, burst: f64) -> LimiterId {
        match self
            .call_async(YieldMsg::LimiterCreate { rate, burst })
            .await
        {
            ResumeMsg::Limiter(id) => id,
            other => unreachable!("unexpected resume for limiter_create: {:?}", other),
        }
    }

    /// Takes `tokens` from the limiter, blocking in virtual time until they
    /// have accrued (FIFO).
    pub fn limiter_acquire(&self, id: LimiterId, tokens: f64) {
        match self.call(YieldMsg::LimiterAcquire(id, tokens)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for limiter_acquire: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::limiter_acquire`].
    pub async fn limiter_acquire_async(&self, id: LimiterId, tokens: f64) {
        match self.call_async(YieldMsg::LimiterAcquire(id, tokens)).await {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for limiter_acquire: {:?}", other),
        }
    }

    /// Creates a bandwidth-constrained link in the fluid-flow network.
    pub fn link_create(&self, capacity: Bandwidth) -> LinkId {
        match self.call(YieldMsg::LinkCreate(capacity)) {
            ResumeMsg::Link(id) => id,
            other => unreachable!("unexpected resume for link_create: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::link_create`].
    pub async fn link_create_async(&self, capacity: Bandwidth) -> LinkId {
        match self.call_async(YieldMsg::LinkCreate(capacity)).await {
            ResumeMsg::Link(id) => id,
            other => unreachable!("unexpected resume for link_create: {:?}", other),
        }
    }

    /// Moves `bytes` across `links`, sharing each link's capacity max-min
    /// fairly with all concurrent transfers. Blocks in virtual time until
    /// the transfer completes.
    pub fn transfer(&self, bytes: ByteSize, links: &[LinkId]) {
        match self.call(YieldMsg::Transfer(FlowSpec {
            bytes,
            links: links.to_vec(),
        })) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for transfer: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::transfer`].
    pub async fn transfer_async(&self, bytes: ByteSize, links: &[LinkId]) {
        match self
            .call_async(YieldMsg::Transfer(FlowSpec {
                bytes,
                links: links.to_vec(),
            }))
            .await
        {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for transfer: {:?}", other),
        }
    }

    /// Spawns a thread-backed child process that starts at the current
    /// virtual time. Only callable from a thread-backed process; stackless
    /// tasks spawn children with [`Ctx::spawn_task`].
    pub fn spawn<F>(&self, name: impl Into<String>, body: F) -> ProcessId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        match self.call(YieldMsg::Spawn {
            name: name.into(),
            body: ProcessBody::Blocking(Box::new(body)),
        }) {
            ResumeMsg::Pid(pid) => pid,
            other => unreachable!("unexpected resume for spawn: {:?}", other),
        }
    }

    /// Spawns a stackless child process that starts at the current virtual
    /// time. `f` receives the child's owned [`Ctx`] and returns its future.
    ///
    /// Works from both process flavors (thread-backed callers can wrap it
    /// in [`run_blocking`]).
    pub async fn spawn_task<F, Fut>(&self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(Ctx) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let body: TaskFn = Box::new(move |ctx| Box::pin(f(ctx)) as LocalBoxFuture<'static, ()>);
        match self
            .call_async(YieldMsg::Spawn {
                name: name.into(),
                body: ProcessBody::Task(body),
            })
            .await
        {
            ResumeMsg::Pid(pid) => pid,
            other => unreachable!("unexpected resume for spawn: {:?}", other),
        }
    }

    /// Blocks in virtual time until `pid` finishes.
    ///
    /// # Errors
    /// Returns [`JoinError`] if the joined process panicked.
    pub fn join(&self, pid: ProcessId) -> Result<(), JoinError> {
        match self.call(YieldMsg::Join(pid)) {
            ResumeMsg::JoinResult(res) => res,
            other => unreachable!("unexpected resume for join: {:?}", other),
        }
    }

    /// Async variant of [`Ctx::join`].
    ///
    /// # Errors
    /// Returns [`JoinError`] if the joined process panicked.
    pub async fn join_async(&self, pid: ProcessId) -> Result<(), JoinError> {
        match self.call_async(YieldMsg::Join(pid)).await {
            ResumeMsg::JoinResult(res) => res,
            other => unreachable!("unexpected resume for join: {:?}", other),
        }
    }

    /// Joins every process in `pids`, returning the first error if any
    /// panicked (all are still awaited).
    pub fn join_all(&self, pids: &[ProcessId]) -> Result<(), JoinError> {
        let mut first_err = None;
        for &pid in pids {
            if let Err(e) = self.join(pid) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Async variant of [`Ctx::join_all`].
    ///
    /// # Errors
    /// Returns the first [`JoinError`] if any joined process panicked.
    pub async fn join_all_async(&self, pids: &[ProcessId]) -> Result<(), JoinError> {
        let mut first_err = None;
        for &pid in pids {
            if let Err(e) = self.join_async(pid).await {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Runs `jobs` with at most `window` of them in flight, then returns
    /// their results in job order.
    ///
    /// Spawns `min(window, jobs.len())` thread-backed worker processes
    /// that greedily pull jobs off a shared queue in job order: the
    /// moment a worker finishes one job it starts the next, so the
    /// virtual-time schedule is the same greedy one a semaphore-per-job
    /// design yields. Workers are spawned in job-queue order
    /// (deterministic pid assignment) and named `"{name}#{w}"`.
    ///
    /// A window of `0` is treated as `1`.
    ///
    /// # Errors
    /// Returns the first [`JoinError`] if any job panicked. A panic
    /// kills the worker that ran the job — queued jobs that worker would
    /// have pulled later may never run — but sibling workers keep
    /// draining the queue and every worker is awaited, so the fan-out
    /// itself never deadlocks. A job whose result slot stayed empty
    /// (its worker died before running it) is also reported as a
    /// [`JoinError`], never as an internal panic.
    pub fn fan_out<T, F>(
        &self,
        name: &str,
        window: usize,
        jobs: Vec<F>,
    ) -> Result<Vec<T>, JoinError>
    where
        T: Send + 'static,
        F: FnOnce(&mut Ctx) -> T + Send + 'static,
    {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let total = jobs.len();
        let workers = window.max(1).min(total);
        let queue: Arc<std::sync::Mutex<std::collections::VecDeque<(usize, F)>>> = Arc::new(
            std::sync::Mutex::new(jobs.into_iter().enumerate().collect()),
        );
        let results: Arc<std::sync::Mutex<Vec<Option<T>>>> =
            Arc::new(std::sync::Mutex::new((0..total).map(|_| None).collect()));
        let mut pids = Vec::with_capacity(workers);
        for w in 0..workers {
            let queue = Arc::clone(&queue);
            let slot = Arc::clone(&results);
            let pid = self.spawn(format!("{}#{}", name, w), move |cctx| loop {
                let next = queue.lock().expect("fan_out queue").pop_front();
                let Some((i, job)) = next else { break };
                let value = job(cctx);
                slot.lock().expect("fan_out slot")[i] = Some(value);
            });
            pids.push(pid);
        }
        self.join_all(&pids)?;
        let mut slots = results.lock().expect("fan_out results");
        collect_fan_out(name, &mut slots)
    }

    /// Async variant of [`Ctx::fan_out`]: identical windowed scheduling,
    /// but jobs are async closures and the workers are stackless tasks —
    /// a thousand-job fan-out costs zero OS threads.
    ///
    /// # Errors
    /// Same contract as [`Ctx::fan_out`].
    pub async fn fan_out_async<T, F>(
        &self,
        name: &str,
        window: usize,
        jobs: Vec<F>,
    ) -> Result<Vec<T>, JoinError>
    where
        T: Send + 'static,
        F: AsyncFnOnce(&mut Ctx) -> T + Send + 'static,
    {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let total = jobs.len();
        let workers = window.max(1).min(total);
        let slots = (0..total).map(|_| None).collect();
        self.fan_out_async_driver(name, workers, jobs.into_iter().enumerate().collect(), slots)
            .await
    }

    /// Sparse variant of [`Ctx::fan_out_async`]: runs only the supplied
    /// `(slot, job)` pairs of a logical `total`-job fan-out, filling
    /// every elided slot with `fill()` — but spawns exactly the worker
    /// processes the *logical* fan-out would (`min(window.max(1),
    /// total)`), so pid assignment and the virtual-time schedule do not
    /// depend on how many jobs the caller elided. Exchange backends use
    /// this to skip zero-byte fetches (which touch no simulated
    /// resource) without perturbing the simulation.
    ///
    /// Job slots must be unique and `< total`; jobs run in the order
    /// given.
    ///
    /// # Errors
    /// Same contract as [`Ctx::fan_out`].
    pub async fn fan_out_sparse_async<T, F>(
        &self,
        name: &str,
        window: usize,
        total: usize,
        jobs: Vec<(usize, F)>,
        mut fill: impl FnMut() -> T,
    ) -> Result<Vec<T>, JoinError>
    where
        T: Send + 'static,
        F: AsyncFnOnce(&mut Ctx) -> T + Send + 'static,
    {
        if total == 0 {
            return Ok(Vec::new());
        }
        let workers = window.max(1).min(total);
        let mut slots: Vec<Option<T>> = (0..total).map(|_| Some(fill())).collect();
        for &(i, _) in &jobs {
            slots[i] = None;
        }
        self.fan_out_async_driver(name, workers, jobs, slots).await
    }

    /// Worker-pinned fan-out: runs `jobs` with the worker processes a
    /// `logical_total`-job fan-out would spawn (`min(window.max(1),
    /// logical_total)`), even when `jobs` is shorter — or empty. Results
    /// come back in job order (compact: one entry per job, unlike
    /// [`Ctx::fan_out_sparse_async`] which returns the logical length).
    ///
    /// This is the fully-sparse sibling of `fan_out_sparse_async` for
    /// callers that never want to materialise a `logical_total`-length
    /// vector at all; a `logical_total` of `0` runs nothing.
    ///
    /// # Errors
    /// Same contract as [`Ctx::fan_out`].
    pub async fn fan_out_pinned_async<T, F>(
        &self,
        name: &str,
        window: usize,
        logical_total: usize,
        jobs: Vec<F>,
    ) -> Result<Vec<T>, JoinError>
    where
        T: Send + 'static,
        F: AsyncFnOnce(&mut Ctx) -> T + Send + 'static,
    {
        if logical_total == 0 {
            return Ok(Vec::new());
        }
        let workers = window.max(1).min(logical_total);
        let slots = (0..jobs.len()).map(|_| None).collect();
        self.fan_out_async_driver(name, workers, jobs.into_iter().enumerate().collect(), slots)
            .await
    }

    /// Shared engine behind the async fan-outs: `workers` queue-draining
    /// tasks over pre-indexed `jobs`, results scattered into `slots`
    /// (already holding the fill value for any slot no job will write).
    async fn fan_out_async_driver<T, F>(
        &self,
        name: &str,
        workers: usize,
        jobs: Vec<(usize, F)>,
        slots: Vec<Option<T>>,
    ) -> Result<Vec<T>, JoinError>
    where
        T: Send + 'static,
        F: AsyncFnOnce(&mut Ctx) -> T + Send + 'static,
    {
        let queue: Arc<std::sync::Mutex<std::collections::VecDeque<(usize, F)>>> =
            Arc::new(std::sync::Mutex::new(jobs.into_iter().collect()));
        let results: Arc<std::sync::Mutex<Vec<Option<T>>>> = Arc::new(std::sync::Mutex::new(slots));
        let mut pids = Vec::with_capacity(workers);
        for w in 0..workers {
            let queue = Arc::clone(&queue);
            let slot = Arc::clone(&results);
            let pid = self
                .spawn_task(format!("{}#{}", name, w), move |mut cctx: Ctx| async move {
                    loop {
                        let next = queue.lock().expect("fan_out queue").pop_front();
                        let Some((i, job)) = next else { break };
                        let value = job(&mut cctx).await;
                        slot.lock().expect("fan_out slot")[i] = Some(value);
                    }
                })
                .await;
            pids.push(pid);
        }
        self.join_all_async(&pids).await?;
        let mut slots = results.lock().expect("fan_out results");
        collect_fan_out(name, &mut slots)
    }

    pub(crate) fn finish(&self, result: Result<(), String>) {
        match &self.mode {
            CtxMode::Thread { yield_tx, .. } => {
                yield_tx.send((self.pid.0, YieldMsg::Finished(result)));
            }
            CtxMode::Task { .. } => {
                unreachable!("tasks finish by returning from their future")
            }
        }
    }
}

/// Collects fan-out results, turning any missing slot into a
/// [`JoinError`] (a worker died before running that job).
fn collect_fan_out<T>(name: &str, slots: &mut [Option<T>]) -> Result<Vec<T>, JoinError> {
    let mut out = Vec::with_capacity(slots.len());
    for (i, slot) in slots.iter_mut().enumerate() {
        match slot.take() {
            Some(v) => out.push(v),
            None => {
                return Err(JoinError {
                    process: name.to_string(),
                    message: format!(
                        "fan_out job {} never produced a result (its worker \
                         died before running it)",
                        i
                    ),
                })
            }
        }
    }
    Ok(out)
}

/// Renders a panic payload into a human-readable message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
