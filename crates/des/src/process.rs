//! Thread-backed simulation processes and the [`Ctx`] handle they use to
//! interact with the simulation kernel.
//!
//! Every process runs on an OS thread borrowed from the scheduler's worker
//! pool but executes in strict rendezvous with the scheduler: the
//! scheduler resumes exactly one process at a time and the
//! process hands control back whenever it performs a simulation operation.
//! Host thread scheduling therefore never influences simulation outcomes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::flow::{FlowSpec, LinkId};
use crate::pool::Rendezvous;
use crate::resources::{LimiterId, SemId};
use crate::units::{Bandwidth, ByteSize, SimDuration, SimTime};

/// Identifies a process within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// The dense index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Error returned by [`Ctx::join`] when the joined process panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinError {
    /// Name of the process that failed.
    pub process: String,
    /// Rendered panic payload.
    pub message: String,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "process '{}' panicked: {}", self.process, self.message)
    }
}

impl std::error::Error for JoinError {}

/// The body of a simulation process.
pub type ProcessFn = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// Requests a process sends to the scheduler. Every request is acknowledged
/// before the process continues; "blocking" requests are acknowledged only
/// when the condition is met.
pub(crate) enum YieldMsg {
    Sleep(SimDuration),
    SemCreate(u64),
    SemAcquire(SemId, u64),
    SemRelease(SemId, u64),
    LimiterCreate { rate: f64, burst: f64 },
    LimiterAcquire(LimiterId, f64),
    LinkCreate(Bandwidth),
    Transfer(FlowSpec),
    Spawn { name: String, body: ProcessFn },
    Join(ProcessId),
    Finished(Result<(), String>),
}

/// Scheduler replies.
#[derive(Debug, Clone)]
pub(crate) enum ResumeMsg {
    Go,
    Sem(SemId),
    Limiter(LimiterId),
    Link(LinkId),
    Pid(ProcessId),
    JoinResult(Result<(), JoinError>),
    Shutdown,
}

/// Marker panic payload used to unwind process threads on teardown.
pub(crate) struct ShutdownSignal;

/// Whether a caught panic payload is the kernel's teardown signal.
///
/// Services that wrap user closures in `catch_unwind` (e.g. to release a
/// resource on crash) must *not* touch simulation primitives when this
/// returns `true` — the scheduler is shutting down — and should simply
/// resume unwinding.
pub fn is_shutdown_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<ShutdownSignal>().is_some()
}

/// Handle through which a process body interacts with the simulation.
///
/// All methods that model the passage of time or contention **block in
/// virtual time**: the calling closure is suspended until the scheduler
/// reaches the corresponding instant.
pub struct Ctx {
    pid: ProcessId,
    name: Arc<str>,
    clock: Arc<AtomicU64>,
    yield_tx: Arc<Rendezvous<(u32, YieldMsg)>>,
    resume_rx: Arc<Rendezvous<ResumeMsg>>,
    rng: SmallRng,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("now", &self.now())
            .finish()
    }
}

impl Ctx {
    pub(crate) fn new(
        pid: ProcessId,
        name: Arc<str>,
        clock: Arc<AtomicU64>,
        yield_tx: Arc<Rendezvous<(u32, YieldMsg)>>,
        resume_rx: Arc<Rendezvous<ResumeMsg>>,
        seed: u64,
    ) -> Self {
        let stream = seed ^ (pid.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Ctx {
            pid,
            name,
            clock,
            yield_tx,
            resume_rx,
            rng: SmallRng::seed_from_u64(stream),
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// This process's name (given at spawn time).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.load(Ordering::SeqCst))
    }

    /// A deterministic per-process random stream (seeded from the sim seed
    /// and the process id).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    fn call(&self, msg: YieldMsg) -> ResumeMsg {
        self.yield_tx.send((self.pid.0, msg));
        match self.resume_rx.recv() {
            ResumeMsg::Shutdown => std::panic::panic_any(ShutdownSignal),
            other => other,
        }
    }

    /// Advances this process's virtual time by `d`.
    pub fn sleep(&self, d: SimDuration) {
        match self.call(YieldMsg::Sleep(d)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sleep: {:?}", other),
        }
    }

    /// Charges `d` of virtual CPU time. Identical to [`Ctx::sleep`]; the
    /// distinct name keeps call sites self-describing.
    pub fn compute(&self, d: SimDuration) {
        self.sleep(d);
    }

    /// Creates a counting semaphore with `permits` initial permits.
    pub fn sem_create(&self, permits: u64) -> SemId {
        match self.call(YieldMsg::SemCreate(permits)) {
            ResumeMsg::Sem(id) => id,
            other => unreachable!("unexpected resume for sem_create: {:?}", other),
        }
    }

    /// Acquires `n` permits, blocking in virtual time until granted (FIFO).
    pub fn sem_acquire(&self, id: SemId, n: u64) {
        match self.call(YieldMsg::SemAcquire(id, n)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sem_acquire: {:?}", other),
        }
    }

    /// Releases `n` permits.
    pub fn sem_release(&self, id: SemId, n: u64) {
        match self.call(YieldMsg::SemRelease(id, n)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for sem_release: {:?}", other),
        }
    }

    /// Creates a token-bucket rate limiter refilling at `rate` tokens/sec
    /// with capacity `burst`.
    pub fn limiter_create(&self, rate: f64, burst: f64) -> LimiterId {
        match self.call(YieldMsg::LimiterCreate { rate, burst }) {
            ResumeMsg::Limiter(id) => id,
            other => unreachable!("unexpected resume for limiter_create: {:?}", other),
        }
    }

    /// Takes `tokens` from the limiter, blocking in virtual time until they
    /// have accrued (FIFO).
    pub fn limiter_acquire(&self, id: LimiterId, tokens: f64) {
        match self.call(YieldMsg::LimiterAcquire(id, tokens)) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for limiter_acquire: {:?}", other),
        }
    }

    /// Creates a bandwidth-constrained link in the fluid-flow network.
    pub fn link_create(&self, capacity: Bandwidth) -> LinkId {
        match self.call(YieldMsg::LinkCreate(capacity)) {
            ResumeMsg::Link(id) => id,
            other => unreachable!("unexpected resume for link_create: {:?}", other),
        }
    }

    /// Moves `bytes` across `links`, sharing each link's capacity max-min
    /// fairly with all concurrent transfers. Blocks in virtual time until
    /// the transfer completes.
    pub fn transfer(&self, bytes: ByteSize, links: &[LinkId]) {
        match self.call(YieldMsg::Transfer(FlowSpec {
            bytes,
            links: links.to_vec(),
        })) {
            ResumeMsg::Go => {}
            other => unreachable!("unexpected resume for transfer: {:?}", other),
        }
    }

    /// Spawns a child process that starts at the current virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, body: F) -> ProcessId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        match self.call(YieldMsg::Spawn {
            name: name.into(),
            body: Box::new(body),
        }) {
            ResumeMsg::Pid(pid) => pid,
            other => unreachable!("unexpected resume for spawn: {:?}", other),
        }
    }

    /// Blocks in virtual time until `pid` finishes.
    ///
    /// # Errors
    /// Returns [`JoinError`] if the joined process panicked.
    pub fn join(&self, pid: ProcessId) -> Result<(), JoinError> {
        match self.call(YieldMsg::Join(pid)) {
            ResumeMsg::JoinResult(res) => res,
            other => unreachable!("unexpected resume for join: {:?}", other),
        }
    }

    /// Joins every process in `pids`, returning the first error if any
    /// panicked (all are still awaited).
    pub fn join_all(&self, pids: &[ProcessId]) -> Result<(), JoinError> {
        let mut first_err = None;
        for &pid in pids {
            if let Err(e) = self.join(pid) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Runs `jobs` with at most `window` of them in flight, then returns
    /// their results in job order.
    ///
    /// Spawns `min(window, jobs.len())` worker processes — not one per
    /// job, so a thousand-job fan-out costs `window` OS threads, never a
    /// thousand — that greedily pull jobs off a shared queue in job
    /// order: the moment a worker finishes one job it starts the next,
    /// so the virtual-time schedule is the same greedy one a
    /// semaphore-per-job design yields. Workers are spawned in job-queue
    /// order (deterministic pid assignment) and named `"{name}#{w}"`.
    ///
    /// A window of `0` is treated as `1`.
    ///
    /// # Errors
    /// Returns the first [`JoinError`] if any job panicked. A panic
    /// kills the worker that ran the job — queued jobs that worker would
    /// have pulled later may never run — but sibling workers keep
    /// draining the queue and every worker is awaited, so the fan-out
    /// itself never deadlocks.
    pub fn fan_out<T, F>(
        &self,
        name: &str,
        window: usize,
        jobs: Vec<F>,
    ) -> Result<Vec<T>, JoinError>
    where
        T: Send + 'static,
        F: FnOnce(&mut Ctx) -> T + Send + 'static,
    {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let total = jobs.len();
        let workers = window.max(1).min(total);
        let queue: Arc<std::sync::Mutex<std::collections::VecDeque<(usize, F)>>> = Arc::new(
            std::sync::Mutex::new(jobs.into_iter().enumerate().collect()),
        );
        let results: Arc<std::sync::Mutex<Vec<Option<T>>>> =
            Arc::new(std::sync::Mutex::new((0..total).map(|_| None).collect()));
        let mut pids = Vec::with_capacity(workers);
        for w in 0..workers {
            let queue = Arc::clone(&queue);
            let slot = Arc::clone(&results);
            let pid = self.spawn(format!("{}#{}", name, w), move |cctx| loop {
                let next = queue.lock().expect("fan_out queue").pop_front();
                let Some((i, job)) = next else { break };
                let value = job(cctx);
                slot.lock().expect("fan_out slot")[i] = Some(value);
            });
            pids.push(pid);
        }
        self.join_all(&pids)?;
        let mut slots = results.lock().expect("fan_out results");
        Ok(slots
            .iter_mut()
            .map(|s| s.take().expect("fan_out job finished without a result"))
            .collect())
    }

    pub(crate) fn finish(&self, result: Result<(), String>) {
        self.yield_tx.send((self.pid.0, YieldMsg::Finished(result)));
    }
}

/// Renders a panic payload into a human-readable message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
