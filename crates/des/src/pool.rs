//! The parked worker pool backing simulation processes.
//!
//! Processes used to each own a dedicated OS thread, created at spawn and
//! joined at finish, with a pair of mpsc channels per process for the
//! scheduler rendezvous. Short-lived processes (`fan_out` workers, prewarm
//! helpers) made thread churn the dominant host cost. This module replaces
//! both mechanisms:
//!
//! * [`Rendezvous`] — a single-slot park/unpark channel. The simulation's
//!   strict alternation (at any instant either the scheduler or exactly one
//!   process runs) means a slot can never be overwritten while full, so no
//!   queue and no per-message allocation are needed.
//! * [`WorkerPool`] — OS threads named `sim-w{idx}` that run process bodies
//!   handed to them by the scheduler and return to an idle stack when the
//!   body finishes. A process is bound to a worker lazily, at its first
//!   wake; threads are reused across any number of processes and joined
//!   once, at teardown.

use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{JoinHandle, Thread};

use crate::process::{
    panic_message, Ctx, OffloadJob, OffloadOutcome, ProcessFn, ProcessId, ResumeMsg,
    ShutdownSignal, YieldMsg,
};

/// A single-slot rendezvous channel: `send` deposits a value and unparks
/// the receiver; `recv` takes it or parks until one arrives.
///
/// # Protocol
///
/// Correctness leans on the simulation's strict alternation: a sender only
/// sends when the receiver is known to have consumed the previous value
/// (the scheduler resumes a process only after it yielded; a process
/// yields only after the scheduler resumed it). `send` therefore never
/// observes a full slot — asserted in debug builds.
///
/// Lost wakeups cannot happen: the receiver registers its [`Thread`]
/// handle under the mutex before checking `full`, and a sender reads the
/// registration under the same mutex *after* setting `full`. If the sender
/// saw no receiver, the receiver's registration critical section follows
/// the sender's read, so the mutex release/acquire edge makes `full: true`
/// visible to the receiver's next check and it never parks. If the sender
/// saw a receiver, `unpark` hands the park token over, and
/// `park`/`unpark`'s synchronizes-with edge makes the slot write visible
/// when `park` returns.
pub(crate) struct Rendezvous<T> {
    slot: UnsafeCell<Option<T>>,
    full: AtomicBool,
    registered: AtomicBool,
    receiver: Mutex<Option<Thread>>,
}

// SAFETY: the slot is accessed by at most one thread at a time — senders
// only write while `full` is false and the (unique, registered) receiver
// only reads after swapping `full` to false — and the accesses are ordered
// by the Release store / Acquire swap on `full`.
unsafe impl<T: Send> Send for Rendezvous<T> {}
unsafe impl<T: Send> Sync for Rendezvous<T> {}

impl<T> Rendezvous<T> {
    pub(crate) fn new() -> Self {
        Rendezvous {
            slot: UnsafeCell::new(None),
            full: AtomicBool::new(false),
            registered: AtomicBool::new(false),
            receiver: Mutex::new(None),
        }
    }

    /// Deposits `value` and wakes the receiver. Must only be called when
    /// the slot is empty (guaranteed by strict alternation).
    pub(crate) fn send(&self, value: T) {
        debug_assert!(
            !self.full.load(Ordering::Acquire),
            "rendezvous overrun: send into a full slot breaks strict alternation"
        );
        // SAFETY: `full` is false, so the receiver is not reading and no
        // other sender is active (see struct docs).
        unsafe {
            *self.slot.get() = Some(value);
        }
        self.full.store(true, Ordering::Release);
        let receiver = self.receiver.lock().expect("rendezvous receiver mutex");
        if let Some(thread) = receiver.as_ref() {
            thread.unpark();
        }
    }

    /// Takes the value, parking until one is available. Must only be
    /// called from a single receiver thread.
    ///
    /// On multi-core hosts, spins briefly before parking: the scheduler
    /// and the running worker strictly alternate, so the value usually
    /// arrives within the other thread's time slice and a short spin
    /// avoids the ~microsecond futex round-trip that would otherwise be
    /// paid on *every* event. On a single core the other side cannot make
    /// progress while we spin, so we park immediately.
    pub(crate) fn recv(&self) -> T {
        for _ in 0..spin_budget() {
            if let Some(value) = self.try_take() {
                return value;
            }
            std::hint::spin_loop();
        }
        if !self.registered.load(Ordering::Relaxed) {
            *self.receiver.lock().expect("rendezvous receiver mutex") =
                Some(std::thread::current());
            self.registered.store(true, Ordering::Relaxed);
        }
        loop {
            if let Some(value) = self.try_take() {
                return value;
            }
            std::thread::park();
        }
    }

    #[inline]
    fn try_take(&self) -> Option<T> {
        // Relaxed pre-check keeps the spin loop read-only (no cache-line
        // ping-pong against the sender's store); the swap supplies the
        // Acquire edge.
        if self.full.load(Ordering::Relaxed) && self.full.swap(false, Ordering::Acquire) {
            // SAFETY: we observed `full` and cleared it, so the sender's
            // slot write happened-before this read and no new send can
            // start until we hand control back (strict alternation).
            let value = unsafe { (*self.slot.get()).take() };
            Some(value.expect("full rendezvous with empty slot"))
        } else {
            None
        }
    }
}

/// How many spin iterations `Rendezvous::recv` tries before parking:
/// zero on single-core hosts (the sender cannot run while we spin),
/// a short burst otherwise. Host-side only — never affects virtual time.
fn spin_budget() -> u32 {
    static BUDGET: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 4_096,
        _ => 0,
    })
}

/// A process body plus everything a worker needs to run it.
pub(crate) struct Job {
    pub(crate) pid: ProcessId,
    pub(crate) name: Arc<str>,
    pub(crate) body: ProcessFn,
    pub(crate) seed: u64,
}

enum WorkerCmd {
    Run(Job),
    Exit,
}

struct Worker {
    cmd: Arc<Rendezvous<WorkerCmd>>,
    resume: Arc<Rendezvous<ResumeMsg>>,
    thread: Option<JoinHandle<()>>,
}

/// The pool of OS threads that execute process bodies.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    /// Indices of workers with no bound process, used as a stack so the
    /// most-recently-freed (cache-warm) worker is reused first. Reuse
    /// order never affects virtual time: the worker is a host-side
    /// vehicle, all determinism-relevant state (pid, name, rng seed)
    /// travels with the [`Job`].
    idle: Vec<u32>,
    stack_size: usize,
    clock: Arc<AtomicU64>,
    yields: Arc<Rendezvous<(u32, YieldMsg)>>,
}

impl WorkerPool {
    pub(crate) fn new(
        stack_size: usize,
        clock: Arc<AtomicU64>,
        yields: Arc<Rendezvous<(u32, YieldMsg)>>,
    ) -> Self {
        WorkerPool {
            workers: Vec::new(),
            idle: Vec::new(),
            stack_size,
            clock,
            yields,
        }
    }

    /// Number of OS threads ever created by this pool.
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Hands `job` to an idle worker (spawning a new thread only when none
    /// is parked) and returns the worker's index.
    pub(crate) fn run(&mut self, job: Job) -> u32 {
        let widx = match self.idle.pop() {
            Some(w) => w,
            None => self.spawn_worker(),
        };
        self.workers[widx as usize].cmd.send(WorkerCmd::Run(job));
        widx
    }

    /// Delivers a scheduler reply to the process bound to `widx`.
    pub(crate) fn resume(&self, widx: u32, msg: ResumeMsg) {
        self.workers[widx as usize].resume.send(msg);
    }

    /// Returns `widx` to the idle stack after its process finished.
    pub(crate) fn release(&mut self, widx: u32) {
        self.idle.push(widx);
    }

    fn spawn_worker(&mut self) -> u32 {
        let widx = self.workers.len() as u32;
        let cmd = Arc::new(Rendezvous::new());
        let resume = Arc::new(Rendezvous::new());
        let thread = std::thread::Builder::new()
            // Pool indices, not process names: pthread names truncate at 15
            // bytes, so long stage names were indistinguishable in
            // profilers. The full process name lives in the scheduler's
            // `Slot` and in `Ctx::name`.
            .name(format!("sim-w{}", widx))
            .stack_size(self.stack_size)
            .spawn({
                let cmd = Arc::clone(&cmd);
                let resume = Arc::clone(&resume);
                let clock = Arc::clone(&self.clock);
                let yields = Arc::clone(&self.yields);
                move || worker_main(&cmd, &resume, &clock, &yields)
            })
            .expect("failed to spawn simulation worker thread");
        self.workers.push(Worker {
            cmd,
            resume,
            thread: Some(thread),
        });
        widx
    }

    /// Tells every worker to exit and joins the threads. Workers bound to
    /// a still-blocked process must have been unblocked first (the
    /// scheduler sends them [`ResumeMsg::Shutdown`]) so they are parked on
    /// their command channel, or about to be.
    pub(crate) fn shutdown(&mut self) {
        for worker in &self.workers {
            worker.cmd.send(WorkerCmd::Exit);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.thread.take() {
                let _ = handle.join();
            }
        }
        self.idle.clear();
    }
}

/// Worker thread body: run jobs until told to exit.
///
/// A [`ShutdownSignal`] unwind (teardown) is absorbed quietly — the
/// scheduler is no longer listening for yields — and the worker returns to
/// its command channel where an `Exit` is already waiting or imminent.
fn worker_main(
    cmd: &Rendezvous<WorkerCmd>,
    resume: &Arc<Rendezvous<ResumeMsg>>,
    clock: &Arc<AtomicU64>,
    yields: &Arc<Rendezvous<(u32, YieldMsg)>>,
) {
    loop {
        match cmd.recv() {
            WorkerCmd::Exit => break,
            WorkerCmd::Run(job) => {
                let pid = job.pid;
                let mut ctx = Ctx::new_thread(
                    pid,
                    job.name,
                    Arc::clone(clock),
                    Arc::clone(yields),
                    Arc::clone(resume),
                    job.seed,
                );
                let body = job.body;
                let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                match result {
                    Ok(()) => ctx.finish(Ok(())),
                    Err(payload) => {
                        if payload.downcast_ref::<ShutdownSignal>().is_some() {
                            // Teardown: exit quietly, never yield again.
                        } else {
                            ctx.finish(Err(panic_message(payload.as_ref())));
                        }
                    }
                }
            }
        }
    }
}

/// Shared state between the scheduler and offload worker threads.
struct OffloadShared {
    /// Pending `(token, kernel)` jobs, run in submission order.
    queue: Mutex<VecDeque<(u64, OffloadJob)>>,
    /// Finished results keyed by token.
    results: Mutex<HashMap<u64, OffloadOutcome>>,
    job_ready: Condvar,
    result_ready: Condvar,
    shutdown: AtomicBool,
}

/// A small pool of OS threads that run genuinely CPU-heavy host kernels
/// (sort/merge/encode) *concurrently with the event loop*.
///
/// Determinism: the scheduler submits a kernel when the process yields
/// [`YieldMsg::Offload`], schedules the process's wake at `now + d`
/// exactly as a sleep would, and collects the result (blocking the host
/// if the kernel is still running) only when that wake fires. Host
/// completion order therefore never influences the event schedule —
/// only wall clock, which is the point.
pub(crate) struct OffloadPool {
    shared: Arc<OffloadShared>,
    threads: Vec<JoinHandle<()>>,
    max_threads: usize,
    next_token: u64,
}

impl OffloadPool {
    pub(crate) fn new() -> Self {
        let max_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        OffloadPool {
            shared: Arc::new(OffloadShared {
                queue: Mutex::new(VecDeque::new()),
                results: Mutex::new(HashMap::new()),
                job_ready: Condvar::new(),
                result_ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            threads: Vec::new(),
            max_threads,
            next_token: 0,
        }
    }

    /// Number of offload threads spawned so far (lazy, capped).
    pub(crate) fn worker_count(&self) -> usize {
        self.threads.len()
    }

    /// Enqueues `job` for background execution and returns its token.
    pub(crate) fn submit(&mut self, job: OffloadJob) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        {
            let mut queue = self.shared.queue.lock().expect("offload queue");
            queue.push_back((token, job));
        }
        self.shared.job_ready.notify_one();
        // Grow lazily: one thread per outstanding job until the cap.
        if self.threads.len() < self.max_threads {
            let depth = self.shared.queue.lock().expect("offload queue").len();
            if depth > 0 && self.threads.len() < depth.min(self.max_threads) {
                self.spawn_thread();
            }
        }
        token
    }

    /// Blocks the host until the job behind `token` has finished and
    /// returns its outcome (result or panic payload).
    pub(crate) fn wait(&self, token: u64) -> OffloadOutcome {
        let mut results = self.shared.results.lock().expect("offload results");
        loop {
            if let Some(outcome) = results.remove(&token) {
                return outcome;
            }
            results = self
                .shared
                .result_ready
                .wait(results)
                .expect("offload results");
        }
    }

    fn spawn_thread(&mut self) {
        let idx = self.threads.len();
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("sim-offl{}", idx))
            .spawn(move || offload_main(&shared))
            .expect("failed to spawn offload worker thread");
        self.threads.push(handle);
    }

    /// Signals all offload threads to exit and joins them. In-flight
    /// kernels run to completion; unclaimed results are dropped.
    pub(crate) fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.job_ready.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for OffloadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn offload_main(shared: &OffloadShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("offload queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.job_ready.wait(queue).expect("offload queue");
            }
        };
        let Some((token, job)) = job else { return };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        shared
            .results
            .lock()
            .expect("offload results")
            .insert(token, outcome);
        shared.result_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_pool_runs_jobs_and_reports_panics() {
        let mut pool = OffloadPool::new();
        let t1 = pool.submit(Box::new(|| {
            Box::new(21u64 * 2) as Box<dyn std::any::Any + Send>
        }));
        let t2 = pool.submit(Box::new(|| panic!("kernel exploded")));
        let ok = pool.wait(t1).expect("job ok");
        assert_eq!(*ok.downcast::<u64>().expect("u64"), 42);
        let err = pool.wait(t2).expect_err("panic captured");
        assert!(panic_message(err.as_ref()).contains("kernel exploded"));
        assert!(pool.worker_count() >= 1);
        pool.shutdown();
    }

    #[test]
    fn rendezvous_passes_values_in_order() {
        let chan: Arc<Rendezvous<u32>> = Arc::new(Rendezvous::new());
        let tx = Arc::clone(&chan);
        let handle = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(chan.recv());
            }
            got
        });
        for v in [7u32, 8, 9] {
            // Strict alternation in miniature: wait for the receiver to
            // drain before the next send.
            tx.send(v);
            while tx.full.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        assert_eq!(handle.join().unwrap(), vec![7, 8, 9]);
    }

    #[test]
    fn rendezvous_send_before_first_recv_is_not_lost() {
        let chan: Arc<Rendezvous<&'static str>> = Arc::new(Rendezvous::new());
        chan.send("early");
        let rx = Arc::clone(&chan);
        let handle = std::thread::spawn(move || rx.recv());
        assert_eq!(handle.join().unwrap(), "early");
    }
}
