//! The simulation event queue.
//!
//! A thin priority queue keyed by `(time, sequence)` with O(log n) insert
//! and pop and O(1) cancellation. Cancellation is implemented by tombstoning:
//! a cancelled entry stays in the heap and is skipped when popped. Sequence
//! numbers make the ordering of simultaneous events FIFO and therefore
//! deterministic.
//!
//! Payload slots are recycled through a free list instead of growing a
//! dense vector for the life of the run: an [`EventId`] packs a slot index
//! with a per-slot generation, so a handle to an event that already fired
//! (or was cancelled) can never alias a later event that reused its slot.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::units::SimTime;

/// A handle to a scheduled event, usable to cancel it.
///
/// Packs `generation << 32 | slot`; stale handles are detected by a
/// generation mismatch and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId((gen as u64) << 32 | slot as u64)
    }

    fn slot(self) -> usize {
        self.0 as u32 as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// What the scheduler should do when an event fires.
///
/// The set of wake targets is deliberately small: processes resume, and the
/// kernel-owned resources (flow network, rate limiters) get ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Resume the process with this index.
    Process(u32),
    /// Re-evaluate the fluid-flow network (a flow is due to complete).
    FlowTick,
    /// Re-evaluate a token-bucket rate limiter's wait queue.
    LimiterTick(u32),
}

#[derive(Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    id: EventId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    wake: Option<Wake>,
}

/// Deterministic, cancellable event queue.
///
/// ```
/// use faaspipe_des::events::{EventQueue, Wake};
/// use faaspipe_des::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_nanos(10), Wake::Process(0));
/// q.schedule(SimTime::from_nanos(10), Wake::Process(1));
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), Wake::Process(1))));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `wake` to fire at `time`. Events scheduled for the same
    /// instant fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, wake: Wake) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot { gen: 0, wake: None });
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize].wake = Some(wake);
        let id = EventId::new(slot, self.slots[slot as usize].gen);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, id }));
        self.live += 1;
        id
    }

    /// Releases `slot` for reuse, bumping its generation so any
    /// still-circulating handle (or heap entry) for it goes stale.
    fn release(&mut self, slot: usize) {
        self.slots[slot].gen = self.slots[slot].gen.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        let slot = id.slot();
        if self.slots[slot].gen == id.generation() && self.slots[slot].wake.take().is_some() {
            self.release(slot);
        }
    }

    /// Pops the next live event, skipping tombstones.
    pub fn pop(&mut self) -> Option<(SimTime, Wake)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let slot = entry.id.slot();
            if self.slots[slot].gen != entry.id.generation() {
                continue; // cancelled; slot already recycled
            }
            let wake = self.slots[slot]
                .wake
                .take()
                .expect("live generation with empty slot");
            self.release(slot);
            return Some((entry.time, wake));
        }
        None
    }

    /// The number of live (non-cancelled) events still queued.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Wake::Process(3));
        q.schedule(t(10), Wake::Process(1));
        q.schedule(t(20), Wake::Process(2));
        assert_eq!(q.pop(), Some((t(10), Wake::Process(1))));
        assert_eq!(q.pop(), Some((t(20), Wake::Process(2))));
        assert_eq!(q.pop(), Some((t(30), Wake::Process(3))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), Wake::Process(i));
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), Wake::Process(i))));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), Wake::Process(0));
        let b = q.schedule(t(2), Wake::FlowTick);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop(), Some((t(2), Wake::FlowTick)));
        // Cancelling after fire is a no-op.
        q.cancel(b);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), Wake::LimiterTick(7));
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Wake::Process(1));
        assert_eq!(q.pop(), Some((t(10), Wake::Process(1))));
        q.schedule(t(5), Wake::Process(2));
        q.schedule(t(15), Wake::Process(3));
        assert_eq!(q.pop(), Some((t(5), Wake::Process(2))));
        assert_eq!(q.pop(), Some((t(15), Wake::Process(3))));
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut q = EventQueue::new();
        for round in 0..1_000u64 {
            let id = q.schedule(t(round), Wake::Process(0));
            if round % 2 == 0 {
                q.cancel(id);
            } else {
                assert_eq!(q.pop(), Some((t(round), Wake::Process(0))));
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slots.len() <= 2,
            "steady-state churn must reuse slots, got {}",
            q.slots.len()
        );
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), Wake::Process(1));
        assert_eq!(q.pop(), Some((t(1), Wake::Process(1))));
        // `b` reuses a's slot with a bumped generation.
        let b = q.schedule(t(2), Wake::Process(2));
        q.cancel(a); // stale: must be a no-op
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop(), Some((t(2), Wake::Process(2))));
        let _ = b;
    }

    #[test]
    fn cancelled_slot_reused_before_stale_heap_entry_pops() {
        let mut q = EventQueue::new();
        // Cancel frees the slot immediately; the tombstoned heap entry for
        // `a` must not fire the reuser scheduled at an earlier time.
        let a = q.schedule(t(10), Wake::Process(1));
        q.cancel(a);
        q.schedule(t(5), Wake::Process(2));
        assert_eq!(q.pop(), Some((t(5), Wake::Process(2))));
        assert_eq!(q.pop(), None);
    }
}
