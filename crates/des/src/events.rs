//! The simulation event queue.
//!
//! A thin priority queue keyed by `(time, sequence)` with O(log n) insert
//! and pop and O(1) cancellation. Cancellation is implemented by tombstoning:
//! a cancelled entry stays in the heap and is skipped when popped. Sequence
//! numbers make the ordering of simultaneous events FIFO and therefore
//! deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::units::SimTime;

/// A handle to a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// What the scheduler should do when an event fires.
///
/// The set of wake targets is deliberately small: processes resume, and the
/// kernel-owned resources (flow network, rate limiters) get ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Resume the process with this index.
    Process(u32),
    /// Re-evaluate the fluid-flow network (a flow is due to complete).
    FlowTick,
    /// Re-evaluate a token-bucket rate limiter's wait queue.
    LimiterTick(u32),
}

#[derive(Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    id: EventId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic, cancellable event queue.
///
/// ```
/// use faaspipe_des::events::{EventQueue, Wake};
/// use faaspipe_des::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_nanos(10), Wake::Process(0));
/// q.schedule(SimTime::from_nanos(10), Wake::Process(1));
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), Wake::Process(1))));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Payloads for live events, indexed densely by EventId. `None` means
    /// the event was cancelled or already fired.
    live: Vec<Option<Wake>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `wake` to fire at `time`. Events scheduled for the same
    /// instant fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, wake: Wake) -> EventId {
        let id = EventId(self.live.len() as u64);
        self.live.push(Some(wake));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, id }));
        id
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        if let Some(slot) = self.live.get_mut(id.0 as usize) {
            *slot = None;
        }
    }

    /// Pops the next live event, skipping tombstones.
    pub fn pop(&mut self) -> Option<(SimTime, Wake)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if let Some(wake) = self.live[entry.id.0 as usize].take() {
                return Some((entry.time, wake));
            }
        }
        None
    }

    /// The number of live (non-cancelled) events still queued.
    pub fn live_len(&self) -> usize {
        self.live.iter().filter(|w| w.is_some()).count()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Wake::Process(3));
        q.schedule(t(10), Wake::Process(1));
        q.schedule(t(20), Wake::Process(2));
        assert_eq!(q.pop(), Some((t(10), Wake::Process(1))));
        assert_eq!(q.pop(), Some((t(20), Wake::Process(2))));
        assert_eq!(q.pop(), Some((t(30), Wake::Process(3))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), Wake::Process(i));
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), Wake::Process(i))));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), Wake::Process(0));
        let b = q.schedule(t(2), Wake::FlowTick);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop(), Some((t(2), Wake::FlowTick)));
        // Cancelling after fire is a no-op.
        q.cancel(b);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), Wake::LimiterTick(7));
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Wake::Process(1));
        assert_eq!(q.pop(), Some((t(10), Wake::Process(1))));
        q.schedule(t(5), Wake::Process(2));
        q.schedule(t(15), Wake::Process(3));
        assert_eq!(q.pop(), Some((t(5), Wake::Process(2))));
        assert_eq!(q.pop(), Some((t(15), Wake::Process(3))));
    }
}
