//! # faaspipe-des — deterministic discrete-event simulation kernel
//!
//! This crate is the timing substrate for the whole `faaspipe` workspace. It
//! provides a virtual clock, an event queue, *thread-backed simulation
//! processes* with an imperative blocking API, FIFO semaphores, token-bucket
//! rate limiters (in virtual time), and a max-min fair fluid-flow network for
//! modelling shared bandwidth.
//!
//! ## Model
//!
//! A [`Sim`] owns a virtual clock that only advances when an event fires.
//! Simulated activities are **processes**: ordinary Rust closures running on
//! OS threads borrowed from a parked worker pool (threads are reused across
//! processes, named `sim-w{idx}`), which block on simulation primitives
//! through a [`Ctx`] handle. The scheduler and processes run in strict
//! rendezvous — at any instant at most one of them executes — so
//! simulations are deterministic regardless of host scheduling.
//!
//! ## Example
//!
//! ```
//! use faaspipe_des::{Sim, SimDuration};
//!
//! # fn main() -> Result<(), faaspipe_des::SimError> {
//! let mut sim = Sim::new();
//! sim.spawn("hello", |ctx| {
//!     ctx.sleep(SimDuration::from_secs(3));
//!     assert_eq!(ctx.now().as_secs_f64(), 3.0);
//! });
//! let report = sim.run()?;
//! assert_eq!(report.end_time.as_secs_f64(), 3.0);
//! # Ok(())
//! # }
//! ```

pub mod events;
pub mod flow;
mod pool;
pub mod process;
pub mod resources;
pub mod sim;
pub mod units;

pub use flow::{FlowSpec, LinkId};
pub use process::{is_shutdown_payload, Ctx, JoinError, ProcessId};
pub use resources::{LimiterId, SemId};
pub use sim::{Sim, SimConfig, SimError, SimReport};
pub use units::{Bandwidth, ByteSize, Money, SimDuration, SimTime};
