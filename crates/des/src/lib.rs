//! # faaspipe-des — deterministic discrete-event simulation kernel
//!
//! This crate is the timing substrate for the whole `faaspipe` workspace. It
//! provides a virtual clock, an event queue, *stackless simulation
//! processes* driven by a single-threaded event loop (with a thread-backed
//! bridge for blocking bodies), FIFO semaphores, token-bucket rate limiters
//! (in virtual time), and a max-min fair fluid-flow network for modelling
//! shared bandwidth.
//!
//! ## Model
//!
//! A [`Sim`] owns a virtual clock that only advances when an event fires.
//! Simulated activities are **processes**, in two flavors:
//!
//! * **Stackless tasks** ([`Sim::spawn_task`], [`Ctx::spawn_task`]) — the
//!   body is an `async` future polled by the scheduler on its own thread.
//!   Every `Ctx` operation (`sleep_async`, `sem_acquire_async`,
//!   `transfer_async`, `join_async`, `fan_out_async`, …) is a yield point:
//!   the future suspends, the scheduler services the request, and the
//!   continuation is re-polled when the virtual-time condition is met. A
//!   suspended process is a heap-allocated state machine — 100k concurrent
//!   processes cost 100k small allocations, not 100k OS threads. Genuinely
//!   CPU-heavy host kernels (sort/merge/encode) are dispatched to a small
//!   offload thread pool via [`Ctx::offload`] without perturbing the event
//!   schedule.
//! * **Thread-backed closures** ([`Sim::spawn`], [`Ctx::spawn`]) — the
//!   legacy bridge: ordinary blocking closures running on OS threads
//!   borrowed from a parked worker pool (reused across processes, named
//!   `sim-w{idx}`). Async helpers can be driven synchronously from these
//!   bodies with [`run_blocking`], where every operation resolves eagerly
//!   through the scheduler rendezvous.
//!
//! In both flavors the scheduler and processes run in strict alternation —
//! at any instant at most one of them executes — and virtual time, pid
//! assignment, and per-process RNG streams are identical across flavors,
//! so simulations are deterministic regardless of host scheduling.
//!
//! ## Example
//!
//! ```
//! use faaspipe_des::{Sim, SimDuration};
//!
//! # fn main() -> Result<(), faaspipe_des::SimError> {
//! let mut sim = Sim::new();
//! sim.spawn_task("hello", |ctx| async move {
//!     ctx.sleep_async(SimDuration::from_secs(3)).await;
//!     assert_eq!(ctx.now().as_secs_f64(), 3.0);
//! });
//! let report = sim.run()?;
//! assert_eq!(report.end_time.as_secs_f64(), 3.0);
//! # Ok(())
//! # }
//! ```

pub mod events;
pub mod flow;
mod pool;
pub mod process;
pub mod resources;
pub mod sim;
pub mod units;

pub use flow::{FlowSpec, LinkId};
pub use process::{
    catch_unwind_future, is_shutdown_payload, run_blocking, CatchUnwind, Ctx, JoinError,
    LocalBoxFuture, ProcessId,
};
pub use resources::{LimiterId, SemId};
pub use sim::{Sim, SimConfig, SimError, SimReport};
pub use units::{Bandwidth, ByteSize, Money, SimDuration, SimTime};
