//! Unit newtypes shared across the simulated cloud: virtual time, byte
//! sizes, bandwidth, and money.
//!
//! All quantities that participate in event ordering or billing are stored
//! as integers (nanoseconds, bytes, micro-dollars) so that simulations are
//! exactly reproducible and billing never drifts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the
/// simulation.
///
/// ```
/// use faaspipe_des::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use faaspipe_des::SimDuration;
/// let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(d.as_secs_f64(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier time is later than self"),
        )
    }

    /// Like [`SimTime::duration_since`] but clamps to zero instead of
    /// panicking.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Addition that clamps at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() {
            return SimDuration::MAX;
        }
        let ns = (s * 1e9).round();
        if ns <= 0.0 {
            SimDuration::ZERO
        } else if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Addition that clamps at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies by an integer factor, clamping at [`SimDuration::MAX`].
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales by a float factor (used by slowdown fault injection).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// A number of bytes.
///
/// ```
/// use faaspipe_des::ByteSize;
/// assert_eq!(ByteSize::mib(2).as_u64(), 2 * 1024 * 1024);
/// assert_eq!(format!("{}", ByteSize::gib(3)), "3.00 GiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64` (for rate computations).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in mebibytes as a float, for reporting.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Addition that clamps at `u64::MAX`.
    pub fn saturating_add(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("ByteSize overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_sub(rhs.0).expect("ByteSize underflow"))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

impl From<usize> for ByteSize {
    fn from(bytes: usize) -> Self {
        ByteSize(bytes as u64)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        let b = self.0 as f64;
        if b < KIB {
            write!(f, "{} B", self.0)
        } else if b < KIB * KIB {
            write!(f, "{:.2} KiB", b / KIB)
        } else if b < KIB * KIB * KIB {
            write!(f, "{:.2} MiB", b / (KIB * KIB))
        } else {
            write!(f, "{:.2} GiB", b / (KIB * KIB * KIB))
        }
    }
}

/// A transfer rate in bytes per second.
///
/// ```
/// use faaspipe_des::{Bandwidth, ByteSize};
/// let bw = Bandwidth::mib_per_sec(100.0);
/// let d = bw.transfer_time(ByteSize::mib(200));
/// assert!((d.as_secs_f64() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// An effectively unlimited bandwidth (used for un-modelled links).
    pub const UNLIMITED: Bandwidth = Bandwidth(f64::INFINITY);

    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is negative or NaN.
    pub fn bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec >= 0.0 && !bytes_per_sec.is_nan(),
            "bandwidth must be non-negative"
        );
        Bandwidth(bytes_per_sec)
    }

    /// `n` MiB/s.
    pub fn mib_per_sec(n: f64) -> Self {
        Bandwidth::bytes_per_sec(n * 1024.0 * 1024.0)
    }

    /// `n` Gbit/s (network-style decimal gigabits).
    pub fn gbit_per_sec(n: f64) -> Self {
        Bandwidth::bytes_per_sec(n * 1e9 / 8.0)
    }

    /// Rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to move `size` bytes at this rate.
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        if self.0.is_infinite() {
            SimDuration::ZERO
        } else if self.0 <= 0.0 {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(size.as_f64() / self.0)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "unlimited")
        } else {
            write!(f, "{:.1} MiB/s", self.0 / (1024.0 * 1024.0))
        }
    }
}

/// An amount of money in integer micro-dollars.
///
/// Billing maths stays exact: one micro-dollar is USD 1e-6, fine enough for
/// per-request object-storage pricing (tens of nano-dollars per request are
/// accumulated through [`Money::from_dollars`] on aggregated counts, not per
/// request).
///
/// ```
/// use faaspipe_des::Money;
/// let a = Money::from_dollars(0.008);
/// let b = Money::from_micros(2_000);
/// assert_eq!((a + b).as_dollars(), 0.01);
/// assert_eq!(format!("{}", a), "$0.008000");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Creates an amount from integer micro-dollars.
    pub const fn from_micros(micros: i64) -> Self {
        Money(micros)
    }

    /// Creates an amount from a dollar figure, rounding to the nearest
    /// micro-dollar.
    pub fn from_dollars(dollars: f64) -> Self {
        Money((dollars * 1e6).round() as i64)
    }

    /// The amount in micro-dollars.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// The amount in dollars, for reporting.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales by a non-negative integer count (e.g. per-request pricing).
    pub fn scale(self, count: u64) -> Money {
        Money(self.0.checked_mul(count as i64).expect("Money overflow"))
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("Money overflow"))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.checked_sub(rhs.0).expect("Money underflow"))
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, rhs: u64) -> Money {
        self.scale(rhs)
    }
}

impl Div<u64> for Money {
    type Output = Money;
    fn div(self, rhs: u64) -> Money {
        Money(self.0 / rhs as i64)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0 {
            write!(f, "-${:.6}", -self.as_dollars())
        } else {
            write!(f, "${:.6}", self.as_dollars())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.as_nanos(), 5_000_000_000);
        assert_eq!(
            t - SimTime::from_nanos(1_000_000_000),
            SimDuration::from_secs(4)
        );
        assert_eq!(t.duration_since(t), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier time is later")]
    fn duration_since_panics_when_reversed() {
        SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let d = SimTime::ZERO.saturating_duration_since(SimTime::from_nanos(10));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn duration_from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.0ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn byte_size_units_and_display() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::gib(1).as_u64(), 1 << 30);
        assert_eq!(format!("{}", ByteSize::new(17)), "17 B");
        assert_eq!(format!("{}", ByteSize::kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", ByteSize::mib(3)), "3.00 MiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::mib_per_sec(10.0);
        let t = bw.transfer_time(ByteSize::mib(30));
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-9);
        assert_eq!(
            Bandwidth::UNLIMITED.transfer_time(ByteSize::gib(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            Bandwidth::bytes_per_sec(0.0).transfer_time(ByteSize::new(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn bandwidth_gbit_conversion() {
        let bw = Bandwidth::gbit_per_sec(8.0);
        assert!((bw.as_bytes_per_sec() - 1e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bandwidth_rejects_negative() {
        Bandwidth::bytes_per_sec(-1.0);
    }

    #[test]
    fn money_round_trip_and_ops() {
        let m = Money::from_dollars(1.25);
        assert_eq!(m.as_micros(), 1_250_000);
        assert_eq!(m.as_dollars(), 1.25);
        assert_eq!((m + m).as_dollars(), 2.5);
        assert_eq!((m - Money::from_dollars(0.25)).as_dollars(), 1.0);
        assert_eq!(m.scale(4).as_dollars(), 5.0);
        assert_eq!((m / 5).as_dollars(), 0.25);
    }

    #[test]
    fn money_sum_and_display() {
        let total: Money = [Money::from_dollars(0.004), Money::from_dollars(0.004)]
            .into_iter()
            .sum();
        assert_eq!(total.as_dollars(), 0.008);
        assert_eq!(format!("{}", total), "$0.008000");
        assert_eq!(format!("{}", Money::from_dollars(-0.5)), "-$0.500000");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn duration_mul_f64() {
        let d = SimDuration::from_secs(2).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_secs(3));
    }
}
