//! The simulation scheduler: owns the clock, event queue, resources and
//! process table, and runs the event loop to completion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::events::{EventId, EventQueue, Wake};
use crate::flow::{FlowNet, LinkId};
use crate::pool::{Job, Rendezvous, WorkerPool};
use crate::process::{Ctx, JoinError, ProcessFn, ProcessId, ResumeMsg, YieldMsg};
use crate::resources::{LimiterId, RateLimiter, SemId, Semaphore};
use crate::units::{Bandwidth, SimTime};

/// Configuration for a [`Sim`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for all per-process random streams.
    pub seed: u64,
    /// Stack size for pool worker threads, in bytes.
    pub stack_size: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xFAA5_0001,
            stack_size: 2 * 1024 * 1024,
        }
    }
}

/// Error terminating a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A process panicked and nobody [`Ctx::join`]ed it to observe the
    /// failure.
    ProcessPanicked {
        /// Name of the failing process.
        process: String,
        /// Rendered panic payload.
        message: String,
    },
    /// The event queue drained while processes were still blocked.
    Deadlock {
        /// Names of the blocked processes.
        blocked: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcessPanicked { process, message } => {
                write!(f, "process '{}' panicked: {}", process, message)
            }
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlocked; blocked processes: {:?}", blocked)
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary statistics of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Virtual time at which the last event fired.
    pub end_time: SimTime,
    /// Total number of processes that ran.
    pub processes: usize,
    /// Total number of events dispatched.
    pub events: u64,
    /// Most processes simultaneously created-but-not-finished at any
    /// instant of the run.
    pub peak_live_processes: usize,
    /// OS threads the worker pool created over the whole run (its
    /// high-water mark of simultaneously *running-or-blocked* process
    /// bodies; threads are reused, never retired, until teardown).
    pub pool_workers: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PState {
    Ready,
    Blocked,
    Finished(Result<(), String>),
}

struct Slot {
    name: Arc<str>,
    state: PState,
    /// What to send when this blocked process is next woken.
    resume_with: ResumeMsg,
    join_waiters: Vec<u32>,
    /// The body, until the process first wakes and is handed to a worker.
    body: Option<ProcessFn>,
    /// Pool worker currently running this process, once bound.
    worker: Option<u32>,
    /// Whether a panic in this process has been delivered to a joiner.
    panic_observed: bool,
}

/// A deterministic discrete-event simulation.
///
/// See the [crate docs](crate) for the execution model and an example.
pub struct Sim {
    cfg: SimConfig,
    clock: Arc<AtomicU64>,
    queue: EventQueue,
    procs: Vec<Slot>,
    sems: Vec<Semaphore>,
    limiters: Vec<RateLimiter>,
    limiter_events: Vec<Option<EventId>>,
    flownet: FlowNet,
    flow_event: Option<EventId>,
    yields: Arc<Rendezvous<(u32, YieldMsg)>>,
    pool: WorkerPool,
    events_dispatched: u64,
    live_now: usize,
    peak_live: usize,
    finished: bool,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("processes", &self.procs.len())
            .field("events_dispatched", &self.events_dispatched)
            .finish()
    }
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new()
    }
}

impl Sim {
    /// Creates a simulation with default configuration.
    pub fn new() -> Self {
        Sim::with_config(SimConfig::default())
    }

    /// Creates a simulation with the given configuration.
    pub fn with_config(cfg: SimConfig) -> Self {
        let clock = Arc::new(AtomicU64::new(0));
        let yields: Arc<Rendezvous<(u32, YieldMsg)>> = Arc::new(Rendezvous::new());
        let pool = WorkerPool::new(cfg.stack_size, Arc::clone(&clock), Arc::clone(&yields));
        Sim {
            cfg,
            clock,
            queue: EventQueue::new(),
            procs: Vec::new(),
            sems: Vec::new(),
            limiters: Vec::new(),
            limiter_events: Vec::new(),
            flownet: FlowNet::new(),
            flow_event: None,
            yields,
            pool,
            events_dispatched: 0,
            live_now: 0,
            peak_live: 0,
            finished: false,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.load(Ordering::SeqCst))
    }

    /// Creates a semaphore before the run starts (services use this during
    /// setup; processes use [`Ctx::sem_create`]).
    pub fn create_semaphore(&mut self, permits: u64) -> SemId {
        let id = SemId(self.sems.len() as u32);
        self.sems.push(Semaphore::new(permits));
        id
    }

    /// Creates a rate limiter before the run starts.
    pub fn create_limiter(&mut self, rate: f64, burst: f64) -> LimiterId {
        let id = LimiterId(self.limiters.len() as u32);
        self.limiters.push(RateLimiter::new(rate, burst));
        self.limiter_events.push(None);
        id
    }

    /// Creates a bandwidth link before the run starts.
    pub fn create_link(&mut self, capacity: Bandwidth) -> LinkId {
        self.flownet.add_link(capacity)
    }

    /// Spawns a root process that starts at the current virtual time.
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> ProcessId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let pid = self.create_process(name.into(), Box::new(body));
        self.queue.schedule(self.now(), Wake::Process(pid.0));
        pid
    }

    /// Registers a process slot. No OS thread is involved until the
    /// process first wakes — see [`Sim::run_process`].
    fn create_process(&mut self, name: String, body: ProcessFn) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        self.procs.push(Slot {
            name: name.into(),
            state: PState::Ready,
            resume_with: ResumeMsg::Go,
            join_waiters: Vec::new(),
            body: Some(body),
            worker: None,
            panic_observed: false,
        });
        self.live_now += 1;
        self.peak_live = self.peak_live.max(self.live_now);
        pid
    }

    /// Runs the simulation until no events remain.
    ///
    /// # Errors
    /// Returns [`SimError::ProcessPanicked`] if any process panicked without
    /// a joiner observing it, and [`SimError::Deadlock`] if the event queue
    /// drained while processes were still blocked.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        while let Some((time, wake)) = self.queue.pop() {
            debug_assert!(time >= self.now(), "time must be monotone");
            self.clock.store(time.as_nanos(), Ordering::SeqCst);
            self.events_dispatched += 1;
            match wake {
                Wake::Process(pidx) => self.run_process(pidx),
                Wake::FlowTick => {
                    self.flow_event = None;
                    let woken = self.flownet.tick(time);
                    for pidx in woken {
                        self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                        self.schedule_wake(pidx);
                    }
                    self.reschedule_flow_tick();
                }
                Wake::LimiterTick(li) => {
                    self.limiter_events[li as usize] = None;
                    let woken = self.limiters[li as usize].tick(time);
                    for pidx in woken {
                        self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                        self.schedule_wake(pidx);
                    }
                    self.reschedule_limiter_tick(li);
                }
            }
        }
        self.finished = true;
        let end_time = self.now();
        // Surface unobserved panics.
        for slot in &self.procs {
            if let PState::Finished(Err(message)) = &slot.state {
                if !slot.panic_observed {
                    let err = SimError::ProcessPanicked {
                        process: slot.name.to_string(),
                        message: message.clone(),
                    };
                    self.teardown();
                    return Err(err);
                }
            }
        }
        // Detect deadlock: blocked processes with no pending events.
        let blocked: Vec<String> = self
            .procs
            .iter()
            .filter(|s| !matches!(s.state, PState::Finished(_)))
            .map(|s| s.name.to_string())
            .collect();
        if !blocked.is_empty() {
            self.teardown();
            return Err(SimError::Deadlock { blocked });
        }
        let report = SimReport {
            end_time,
            processes: self.procs.len(),
            events: self.events_dispatched,
            peak_live_processes: self.peak_live,
            pool_workers: self.pool.worker_count(),
        };
        self.teardown();
        Ok(report)
    }

    fn schedule_wake(&mut self, pidx: u32) {
        self.procs[pidx as usize].state = PState::Ready;
        self.queue.schedule(self.now(), Wake::Process(pidx));
    }

    fn reschedule_flow_tick(&mut self) {
        if let Some(ev) = self.flow_event.take() {
            self.queue.cancel(ev);
        }
        if let Some(at) = self.flownet.next_completion(self.now()) {
            self.flow_event = Some(self.queue.schedule(at, Wake::FlowTick));
        }
    }

    fn reschedule_limiter_tick(&mut self, li: u32) {
        if let Some(ev) = self.limiter_events[li as usize].take() {
            self.queue.cancel(ev);
        }
        let now = self.now();
        if let Some(at) = self.limiters[li as usize].next_ready(now) {
            self.limiter_events[li as usize] = Some(self.queue.schedule(at, Wake::LimiterTick(li)));
        }
    }

    /// Resumes process `pidx` and services its requests until it blocks or
    /// finishes.
    ///
    /// On a process's first wake it is bound to a pool worker: an idle
    /// worker thread is reused if one exists, otherwise the pool grows by
    /// one. Binding lazily means processes that are spawned but never
    /// scheduled cost no thread at all, and the pool's size tracks the
    /// *peak* number of concurrently live bodies, not the total spawned.
    fn run_process(&mut self, pidx: u32) {
        {
            let slot = &mut self.procs[pidx as usize];
            if matches!(slot.state, PState::Finished(_)) {
                return;
            }
            let msg = std::mem::replace(&mut slot.resume_with, ResumeMsg::Go);
            match slot.worker {
                Some(widx) => self.pool.resume(widx, msg),
                None => {
                    debug_assert!(
                        matches!(msg, ResumeMsg::Go),
                        "first wake must be a plain Go"
                    );
                    let body = slot.body.take().expect("unbound process has no body");
                    let job = Job {
                        pid: ProcessId(pidx),
                        name: Arc::clone(&slot.name),
                        body,
                        seed: self.cfg.seed,
                    };
                    let widx = self.pool.run(job);
                    self.procs[pidx as usize].worker = Some(widx);
                }
            }
        }
        loop {
            let (from, msg) = self.yields.recv();
            debug_assert_eq!(from, pidx, "yield from unexpected process");
            match self.handle_yield(pidx, msg) {
                Flow::Continue => continue,
                Flow::Blocked => {
                    self.procs[pidx as usize].state = PState::Blocked;
                    break;
                }
                Flow::Done => break,
            }
        }
    }

    fn reply(&self, pidx: u32, msg: ResumeMsg) {
        let widx = self.procs[pidx as usize]
            .worker
            .expect("reply to a process that never ran");
        self.pool.resume(widx, msg);
    }

    fn handle_yield(&mut self, pidx: u32, msg: YieldMsg) -> Flow {
        let now = self.now();
        match msg {
            YieldMsg::Sleep(d) => {
                self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                self.queue.schedule(now + d, Wake::Process(pidx));
                Flow::Blocked
            }
            YieldMsg::SemCreate(permits) => {
                let id = SemId(self.sems.len() as u32);
                self.sems.push(Semaphore::new(permits));
                self.reply(pidx, ResumeMsg::Sem(id));
                Flow::Continue
            }
            YieldMsg::SemAcquire(id, n) => {
                if self.sems[id.0 as usize].acquire(pidx, n) {
                    self.reply(pidx, ResumeMsg::Go);
                    Flow::Continue
                } else {
                    self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                    Flow::Blocked
                }
            }
            YieldMsg::SemRelease(id, n) => {
                let woken = self.sems[id.0 as usize].release(n);
                for w in woken {
                    self.procs[w as usize].resume_with = ResumeMsg::Go;
                    self.schedule_wake(w);
                }
                self.reply(pidx, ResumeMsg::Go);
                Flow::Continue
            }
            YieldMsg::LimiterCreate { rate, burst } => {
                let id = LimiterId(self.limiters.len() as u32);
                self.limiters.push(RateLimiter::new(rate, burst));
                self.limiter_events.push(None);
                self.reply(pidx, ResumeMsg::Limiter(id));
                Flow::Continue
            }
            YieldMsg::LimiterAcquire(id, tokens) => {
                if self.limiters[id.0 as usize].acquire(now, pidx, tokens) {
                    self.reply(pidx, ResumeMsg::Go);
                    Flow::Continue
                } else {
                    self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                    self.reschedule_limiter_tick(id.0);
                    Flow::Blocked
                }
            }
            YieldMsg::LinkCreate(bw) => {
                let id = self.flownet.add_link(bw);
                self.reply(pidx, ResumeMsg::Link(id));
                Flow::Continue
            }
            YieldMsg::Transfer(spec) => {
                self.flownet.start(now, spec, pidx);
                self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                self.reschedule_flow_tick();
                Flow::Blocked
            }
            YieldMsg::Spawn { name, body } => {
                let pid = self.create_process(name, body);
                self.queue.schedule(now, Wake::Process(pid.0));
                self.reply(pidx, ResumeMsg::Pid(pid));
                Flow::Continue
            }
            YieldMsg::Join(target) => {
                assert!(
                    (target.0 as usize) < self.procs.len(),
                    "join on unknown process {:?}",
                    target
                );
                let result = match &self.procs[target.index()].state {
                    PState::Finished(res) => Some(res.clone()),
                    _ => None,
                };
                match result {
                    Some(res) => {
                        let jr = self.join_result(target, res);
                        self.reply(pidx, ResumeMsg::JoinResult(jr));
                        Flow::Continue
                    }
                    None => {
                        self.procs[target.index()].join_waiters.push(pidx);
                        Flow::Blocked
                    }
                }
            }
            YieldMsg::Finished(result) => {
                // The worker is heading back to its command channel; return
                // it to the idle stack for immediate reuse (no join).
                let slot = &mut self.procs[pidx as usize];
                if let Some(widx) = slot.worker.take() {
                    self.pool.release(widx);
                }
                slot.state = PState::Finished(result.clone());
                self.live_now -= 1;
                let waiters = std::mem::take(&mut self.procs[pidx as usize].join_waiters);
                for w in waiters {
                    let jr = self.join_result(ProcessId(pidx), result.clone());
                    self.procs[w as usize].resume_with = ResumeMsg::JoinResult(jr);
                    self.schedule_wake(w);
                }
                Flow::Done
            }
        }
    }

    fn join_result(&mut self, target: ProcessId, res: Result<(), String>) -> Result<(), JoinError> {
        match res {
            Ok(()) => Ok(()),
            Err(message) => {
                self.procs[target.index()].panic_observed = true;
                Err(JoinError {
                    process: self.procs[target.index()].name.to_string(),
                    message,
                })
            }
        }
    }

    /// Unwinds every still-bound process body, then exits and joins the
    /// pool threads.
    ///
    /// At this point the scheduler is not servicing yields, so every bound,
    /// unfinished process is parked on its worker's resume channel; the
    /// [`ResumeMsg::Shutdown`] reply makes the body unwind quietly and the
    /// worker fall through to its command channel, where the pool's `Exit`
    /// awaits. Processes that were never scheduled have no thread — their
    /// body closure is simply dropped with the slot.
    fn teardown(&mut self) {
        for slot in &mut self.procs {
            if !matches!(slot.state, PState::Finished(_)) {
                if let Some(widx) = slot.worker.take() {
                    self.pool.resume(widx, ResumeMsg::Shutdown);
                }
            }
        }
        self.pool.shutdown();
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        if !self.finished {
            self.teardown();
        }
    }
}

enum Flow {
    Continue,
    Blocked,
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bandwidth, ByteSize, SimDuration};
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[test]
    fn empty_sim_completes() {
        let report = Sim::new().run().expect("empty sim");
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.processes, 0);
        assert_eq!(report.pool_workers, 0);
    }

    #[test]
    fn sleep_advances_clock() {
        let mut sim = Sim::new();
        sim.spawn("sleeper", |ctx| {
            ctx.sleep(SimDuration::from_secs(5));
            ctx.sleep(SimDuration::from_millis(250));
        });
        let report = sim.run().expect("run");
        assert_eq!(report.end_time.as_nanos(), 5_250_000_000);
    }

    #[test]
    fn processes_interleave_deterministically() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        for i in 0..3u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("p{}", i), move |ctx| {
                ctx.sleep(SimDuration::from_millis(10 * (3 - i)));
                log.lock().unwrap().push(i);
            });
        }
        sim.run().expect("run");
        assert_eq!(*log.lock().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn spawn_and_join_child() {
        let out = Arc::new(Mutex::new(0u64));
        let mut sim = Sim::new();
        let out2 = Arc::clone(&out);
        sim.spawn("parent", move |ctx| {
            let out3 = Arc::clone(&out2);
            let child = ctx.spawn("child", move |cctx| {
                cctx.sleep(SimDuration::from_secs(1));
                *out3.lock().unwrap() = 42;
            });
            ctx.join(child).expect("child ok");
            assert_eq!(ctx.now().as_secs_f64(), 1.0);
            assert_eq!(*out2.lock().unwrap(), 42);
        });
        sim.run().expect("run");
        assert_eq!(*out.lock().unwrap(), 42);
    }

    #[test]
    fn join_already_finished_child() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("quick", |_| {});
            ctx.sleep(SimDuration::from_secs(1));
            ctx.join(child).expect("quick ok");
            assert_eq!(ctx.now().as_secs_f64(), 1.0, "join must not add time");
        });
        sim.run().expect("run");
    }

    #[test]
    fn join_observes_child_panic() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("bad", |_| panic!("boom"));
            let err = ctx.join(child).expect_err("child panicked");
            assert_eq!(err.process, "bad");
            assert!(err.message.contains("boom"));
        });
        sim.run().expect("observed panic is not a sim error");
    }

    #[test]
    fn unobserved_panic_fails_run() {
        let mut sim = Sim::new();
        sim.spawn("bad", |_| panic!("kaboom"));
        let err = sim.run().expect_err("must fail");
        match err {
            SimError::ProcessPanicked { process, message } => {
                assert_eq!(process, "bad");
                assert!(message.contains("kaboom"));
            }
            other => panic!("unexpected error {:?}", other),
        }
    }

    #[test]
    fn semaphore_serializes_critical_section() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(1);
        for i in 0..4u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("w{}", i), move |ctx| {
                ctx.sem_acquire(sem, 1);
                log.lock().unwrap().push((i, ctx.now()));
                ctx.sleep(SimDuration::from_secs(1));
                ctx.sem_release(sem, 1);
            });
        }
        sim.run().expect("run");
        let log = log.lock().unwrap();
        // FIFO: worker i enters at t = i seconds.
        for (i, (w, at)) in log.iter().enumerate() {
            assert_eq!(*w, i as u64);
            assert_eq!(at.as_secs_f64(), i as f64);
        }
    }

    #[test]
    fn limiter_throttles_ops() {
        let mut sim = Sim::new();
        let lim = sim.create_limiter(10.0, 1.0); // 10 ops/s, burst 1
        sim.spawn("client", move |ctx| {
            for _ in 0..5 {
                ctx.limiter_acquire(lim, 1.0);
            }
            // First op free (full bucket), remaining 4 at 0.1 s apart.
            assert!((ctx.now().as_secs_f64() - 0.4).abs() < 1e-6);
        });
        sim.run().expect("run");
    }

    #[test]
    fn transfer_times_follow_fair_share() {
        let mut sim = Sim::new();
        let link = sim.create_link(Bandwidth::bytes_per_sec(100.0));
        let done = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u64 {
            let done = Arc::clone(&done);
            sim.spawn(format!("t{}", i), move |ctx| {
                ctx.transfer(ByteSize::new(100), &[link]);
                done.lock().unwrap().push((i, ctx.now()));
            });
        }
        sim.run().expect("run");
        let done = done.lock().unwrap();
        // Two 100-byte flows share 100 B/s: both complete at t=2s.
        for (_, at) in done.iter() {
            assert!((at.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn transfer_rebalances_after_completion() {
        let mut sim = Sim::new();
        let link = sim.create_link(Bandwidth::bytes_per_sec(100.0));
        let done = Arc::new(Mutex::new(HashMap::new()));
        let d1 = Arc::clone(&done);
        sim.spawn("small", move |ctx| {
            ctx.transfer(ByteSize::new(50), &[link]);
            d1.lock().unwrap().insert("small", ctx.now().as_secs_f64());
        });
        let d2 = Arc::clone(&done);
        sim.spawn("large", move |ctx| {
            ctx.transfer(ByteSize::new(500), &[link]);
            d2.lock().unwrap().insert("large", ctx.now().as_secs_f64());
        });
        sim.run().expect("run");
        let done = done.lock().unwrap();
        // Shared 50 B/s until small finishes at 1 s; large then runs at
        // 100 B/s for its remaining 450 B => 1 + 4.5 = 5.5 s.
        assert!((done["small"] - 1.0).abs() < 1e-6);
        assert!((done["large"] - 5.5).abs() < 1e-6);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(0);
        sim.spawn("stuck", move |ctx| {
            ctx.sem_acquire(sem, 1);
        });
        let err = sim.run().expect_err("deadlock");
        match err {
            SimError::Deadlock { blocked } => assert_eq!(blocked, vec!["stuck".to_string()]),
            other => panic!("unexpected error {:?}", other),
        }
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        fn draw() -> Vec<u64> {
            use rand::Rng;
            let out = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new();
            let out2 = Arc::clone(&out);
            sim.spawn("r", move |ctx| {
                let v: Vec<u64> = (0..8).map(|_| ctx.rng().gen()).collect();
                out2.lock().unwrap().extend(v);
            });
            sim.run().expect("run");
            let v = out.lock().unwrap().clone();
            v
        }
        assert_eq!(draw(), draw());
    }

    #[test]
    fn join_all_aggregates() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let kids: Vec<_> = (0..4)
                .map(|i| {
                    ctx.spawn(format!("k{}", i), move |c| {
                        c.sleep(SimDuration::from_secs(i + 1));
                    })
                })
                .collect();
            ctx.join_all(&kids).expect("all ok");
            assert_eq!(ctx.now().as_secs_f64(), 4.0);
        });
        sim.run().expect("run");
    }

    #[test]
    fn different_sim_seeds_change_random_streams() {
        fn draw(seed: u64) -> u64 {
            use rand::Rng;
            let out = Arc::new(Mutex::new(0u64));
            let mut sim = Sim::with_config(SimConfig {
                seed,
                ..SimConfig::default()
            });
            let out2 = Arc::clone(&out);
            sim.spawn("r", move |ctx| {
                *out2.lock().unwrap() = ctx.rng().gen();
            });
            sim.run().expect("run");
            let v = *out.lock().unwrap();
            v
        }
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn deep_spawn_trees_work() {
        // Each process spawns a child, 50 levels deep, each sleeping 1 ms.
        fn spawn_level(ctx: &mut Ctx, level: u64) {
            ctx.sleep(SimDuration::from_millis(1));
            if level > 0 {
                let child = ctx.spawn(format!("level{}", level), move |c| {
                    spawn_level(c, level - 1);
                });
                ctx.join(child).expect("child ok");
            }
        }
        let mut sim = Sim::new();
        sim.spawn("root", |ctx| spawn_level(ctx, 50));
        let report = sim.run().expect("run");
        assert_eq!(report.processes, 51);
        assert_eq!(report.end_time.as_nanos(), 51 * 1_000_000);
        // Every level blocks in a join while its child runs, so all 51
        // bodies are live at the deepest point and each needs a worker.
        assert_eq!(report.pool_workers, 51);
        assert_eq!(report.peak_live_processes, 51);
    }

    #[test]
    fn custom_stack_size_is_honored() {
        let mut sim = Sim::with_config(SimConfig {
            stack_size: 512 * 1024,
            ..SimConfig::default()
        });
        sim.spawn("small-stack", |ctx| {
            // Use a modest amount of stack to prove the thread works.
            let buf = [0u8; 64 * 1024];
            ctx.sleep(SimDuration::from_nanos(buf[0] as u64 + 1));
        });
        sim.run().expect("run");
    }

    #[test]
    fn sleeping_zero_is_a_yield_not_a_noop() {
        // Two processes alternating zero-sleeps interleave fairly.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        for who in 0..2u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("p{}", who), move |ctx| {
                for _ in 0..3 {
                    log.lock().unwrap().push(who);
                    ctx.sleep(SimDuration::ZERO);
                }
            });
        }
        sim.run().expect("run");
        let log = log.lock().unwrap();
        assert_eq!(
            *log,
            vec![0, 1, 0, 1, 0, 1],
            "zero-sleep yields round-robin"
        );
    }

    #[test]
    fn many_processes_scale() {
        let mut sim = Sim::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..200u64 {
            let counter = Arc::clone(&counter);
            sim.spawn(format!("n{}", i), move |ctx| {
                ctx.sleep(SimDuration::from_millis(i));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let report = sim.run().expect("run");
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(report.processes, 200);
        assert_eq!(report.peak_live_processes, 200);
    }

    #[test]
    fn sequential_processes_reuse_one_worker() {
        // 500 processes that never overlap in virtual time: the pool must
        // run them all on a single reused OS thread.
        let mut sim = Sim::new();
        sim.spawn("root", |ctx| {
            for i in 0..500u64 {
                let child = ctx.spawn(format!("seq{}", i), |c| {
                    c.sleep(SimDuration::from_millis(1));
                });
                ctx.join(child).expect("child ok");
            }
        });
        let report = sim.run().expect("run");
        assert_eq!(report.processes, 501);
        // Root is blocked in join while each child runs: two workers.
        assert_eq!(report.pool_workers, 2, "thread churn is gone");
        assert_eq!(report.peak_live_processes, 2);
    }

    #[test]
    fn pool_grows_to_peak_concurrency_not_total() {
        // Waves of 8 concurrent processes, 10 waves: 8 workers + the root.
        let mut sim = Sim::new();
        sim.spawn("root", |ctx| {
            for _ in 0..10 {
                let kids: Vec<_> = (0..8)
                    .map(|i| {
                        ctx.spawn(format!("wave{}", i), |c| {
                            c.sleep(SimDuration::from_millis(3));
                        })
                    })
                    .collect();
                ctx.join_all(&kids).expect("wave ok");
            }
        });
        let report = sim.run().expect("run");
        assert_eq!(report.processes, 81);
        assert_eq!(report.pool_workers, 9, "pool sized by peak, not total");
        assert_eq!(report.peak_live_processes, 9);
    }

    #[test]
    fn spawned_but_never_scheduled_processes_cost_no_thread() {
        // A deadlocked sim whose second process never gets its first wake
        // must still tear down cleanly (the body is dropped, not run).
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(0);
        sim.spawn("stuck", move |ctx| {
            // Spawn a child, then block forever before it could matter.
            let _child = ctx.spawn("never-run", |c| c.sleep(SimDuration::from_secs(1)));
            ctx.sem_acquire(sem, 1);
        });
        let err = sim.run().expect_err("deadlock");
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn fan_out_returns_results_in_job_order() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let jobs: Vec<_> = (0..6u64)
                .map(|i| {
                    move |cctx: &mut Ctx| {
                        // Later jobs finish earlier; order must still hold.
                        cctx.sleep(SimDuration::from_millis(60 - 10 * i));
                        i * 2
                    }
                })
                .collect();
            let out = ctx.fan_out("job", 6, jobs).expect("fan_out ok");
            assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
        });
        sim.run().expect("run");
    }

    #[test]
    fn fan_out_window_bounds_concurrency() {
        // 4 one-second jobs through a window of 2 take exactly 2 s, and
        // never more than 2 run at once.
        let inflight = Arc::new(Mutex::new((0u32, 0u32))); // (current, peak)
        let mut sim = Sim::new();
        let inflight2 = Arc::clone(&inflight);
        sim.spawn("parent", move |ctx| {
            let jobs: Vec<_> = (0..4)
                .map(|_| {
                    let inflight = Arc::clone(&inflight2);
                    move |cctx: &mut Ctx| {
                        {
                            let mut g = inflight.lock().unwrap();
                            g.0 += 1;
                            g.1 = g.1.max(g.0);
                        }
                        cctx.sleep(SimDuration::from_secs(1));
                        inflight.lock().unwrap().0 -= 1;
                    }
                })
                .collect();
            ctx.fan_out("bounded", 2, jobs).expect("fan_out ok");
            assert_eq!(ctx.now().as_secs_f64(), 2.0, "2 waves of 2 jobs");
        });
        sim.run().expect("run");
        assert_eq!(inflight.lock().unwrap().1, 2, "window caps concurrency");
    }

    #[test]
    fn fan_out_panic_surfaces_without_deadlocking_siblings() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            // Worker 0 pulls the panicking job and dies; worker 1 keeps
            // draining the queue, so the surviving job still runs and
            // the fan-out returns (first error) instead of hanging.
            type BoxedJob = Box<dyn FnOnce(&mut Ctx) -> u32 + Send>;
            let jobs: Vec<BoxedJob> = vec![
                Box::new(|_: &mut Ctx| panic!("job zero failed")),
                Box::new(|cctx: &mut Ctx| {
                    cctx.sleep(SimDuration::from_millis(5));
                    7
                }),
            ];
            let err = ctx.fan_out("mixed", 2, jobs).expect_err("panic surfaces");
            assert_eq!(err.process, "mixed#0");
            assert!(err.message.contains("job zero failed"));
            assert!(
                ctx.now().as_secs_f64() >= 0.005,
                "sibling still ran to completion"
            );
        });
        sim.run().expect("observed panic is not a sim error");
    }

    #[test]
    fn fan_out_empty_and_zero_window() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let none: Vec<fn(&mut Ctx) -> u8> = Vec::new();
            assert_eq!(ctx.fan_out("empty", 4, none).expect("empty ok"), vec![]);
            // Window 0 is clamped to 1 rather than deadlocking.
            let jobs: Vec<_> = (0..2u8).map(|i| move |_: &mut Ctx| i).collect();
            assert_eq!(ctx.fan_out("clamped", 0, jobs).expect("ok"), vec![0, 1]);
        });
        sim.run().expect("run");
    }

    #[test]
    fn worker_reuse_keeps_per_process_rng_streams() {
        // Two sequential processes share one worker thread but must draw
        // from distinct, pid-seeded random streams.
        use rand::Rng;
        let draws = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        let d = Arc::clone(&draws);
        sim.spawn("root", move |ctx| {
            for i in 0..2 {
                let d = Arc::clone(&d);
                let child = ctx.spawn(format!("c{}", i), move |c| {
                    d.lock().unwrap().push(c.rng().gen::<u64>());
                });
                ctx.join(child).expect("child ok");
            }
        });
        let report = sim.run().expect("run");
        assert_eq!(report.pool_workers, 2);
        let draws = draws.lock().unwrap();
        assert_ne!(draws[0], draws[1], "streams must differ across processes");
    }
}
