//! The simulation scheduler: owns the clock, event queue, resources and
//! process table, and runs the event loop to completion.

use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context as PollContext, Poll, Waker};

use crate::events::{EventId, EventQueue, Wake};
use crate::flow::{FlowNet, LinkId};
use crate::pool::{Job, OffloadPool, Rendezvous, WorkerPool};
use crate::process::{
    panic_message, Ctx, JoinError, LocalBoxFuture, OpCell, ProcessBody, ProcessId, ResumeMsg,
    TaskFn, YieldMsg,
};
use crate::resources::{LimiterId, RateLimiter, SemId, Semaphore};
use crate::units::{Bandwidth, SimTime};

/// Configuration for a [`Sim`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for all per-process random streams.
    pub seed: u64,
    /// Stack size for pool worker threads, in bytes.
    pub stack_size: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xFAA5_0001,
            stack_size: 2 * 1024 * 1024,
        }
    }
}

/// Error terminating a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A process panicked and nobody [`Ctx::join`]ed it to observe the
    /// failure.
    ProcessPanicked {
        /// Name of the failing process.
        process: String,
        /// Rendered panic payload.
        message: String,
    },
    /// The event queue drained while processes were still blocked.
    Deadlock {
        /// Names of the blocked processes.
        blocked: Vec<String>,
    },
    /// A rate recompute left a transfer frozen at a non-positive rate
    /// with bytes still to move. Max-min filling cannot produce this
    /// from a well-formed topology, so it means a rate-computation bug
    /// (or float pathology) that would otherwise hang the run silently.
    FlowStalled {
        /// Name of the process whose transfer starved.
        process: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcessPanicked { process, message } => {
                write!(f, "process '{}' panicked: {}", process, message)
            }
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlocked; blocked processes: {:?}", blocked)
            }
            SimError::FlowStalled { process } => {
                write!(
                    f,
                    "transfer by process '{}' stalled at a non-positive rate",
                    process
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary statistics of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Virtual time at which the last event fired.
    pub end_time: SimTime,
    /// Total number of processes that ran.
    pub processes: usize,
    /// Total number of events dispatched.
    pub events: u64,
    /// Most processes simultaneously created-but-not-finished at any
    /// instant of the run.
    pub peak_live_processes: usize,
    /// OS threads the worker pool created over the whole run (its
    /// high-water mark of simultaneously *running-or-blocked*
    /// thread-backed process bodies; threads are reused, never retired,
    /// until teardown). Stackless tasks never count here.
    pub pool_workers: usize,
    /// OS threads the CPU-offload pool created over the whole run
    /// (lazy, capped at `min(host cores, 8)`).
    pub offload_workers: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PState {
    Ready,
    Blocked,
    Finished(Result<(), String>),
}

/// A started stackless process: its suspended continuation plus the
/// mailbox it exchanges ops with the scheduler through.
struct TaskState {
    /// The process future; `None` only transiently while being polled.
    future: Option<LocalBoxFuture<'static, ()>>,
    cell: Rc<OpCell>,
}

struct Slot {
    name: Arc<str>,
    state: PState,
    /// What to send when this blocked process is next woken.
    resume_with: ResumeMsg,
    join_waiters: Vec<u32>,
    /// The body, until the process first wakes and is bound to its
    /// backing (pool worker thread or task future).
    body: Option<ProcessBody>,
    /// Pool worker currently running this process, once bound
    /// (thread-backed processes only).
    worker: Option<u32>,
    /// The continuation, once started (stackless processes only).
    task: Option<TaskState>,
    /// Whether a panic in this process has been delivered to a joiner.
    panic_observed: bool,
}

/// A deterministic discrete-event simulation.
///
/// See the [crate docs](crate) for the execution model and an example.
pub struct Sim {
    cfg: SimConfig,
    clock: Arc<AtomicU64>,
    queue: EventQueue,
    procs: Vec<Slot>,
    sems: Vec<Semaphore>,
    limiters: Vec<RateLimiter>,
    limiter_events: Vec<Option<EventId>>,
    flownet: FlowNet,
    flow_event: Option<EventId>,
    /// Reusable buffer for flow/limiter tick wake lists, so steady-state
    /// ticks do no per-event allocation.
    tick_woken: Vec<u32>,
    /// First fatal condition observed while dispatching (e.g. a stalled
    /// flow); checked after every event and terminates the run loudly.
    fatal: Option<SimError>,
    yields: Arc<Rendezvous<(u32, YieldMsg)>>,
    pool: WorkerPool,
    offload: OffloadPool,
    events_dispatched: u64,
    live_now: usize,
    peak_live: usize,
    finished: bool,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("processes", &self.procs.len())
            .field("events_dispatched", &self.events_dispatched)
            .finish()
    }
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new()
    }
}

impl Sim {
    /// Creates a simulation with default configuration.
    pub fn new() -> Self {
        Sim::with_config(SimConfig::default())
    }

    /// Creates a simulation with the given configuration.
    pub fn with_config(cfg: SimConfig) -> Self {
        let clock = Arc::new(AtomicU64::new(0));
        let yields: Arc<Rendezvous<(u32, YieldMsg)>> = Arc::new(Rendezvous::new());
        let pool = WorkerPool::new(cfg.stack_size, Arc::clone(&clock), Arc::clone(&yields));
        Sim {
            cfg,
            clock,
            queue: EventQueue::new(),
            procs: Vec::new(),
            sems: Vec::new(),
            limiters: Vec::new(),
            limiter_events: Vec::new(),
            flownet: FlowNet::new(),
            flow_event: None,
            tick_woken: Vec::new(),
            fatal: None,
            yields,
            pool,
            offload: OffloadPool::new(),
            events_dispatched: 0,
            live_now: 0,
            peak_live: 0,
            finished: false,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.load(Ordering::SeqCst))
    }

    /// Creates a semaphore before the run starts (services use this during
    /// setup; processes use [`Ctx::sem_create`]).
    pub fn create_semaphore(&mut self, permits: u64) -> SemId {
        let id = SemId(self.sems.len() as u32);
        self.sems.push(Semaphore::new(permits));
        id
    }

    /// Creates a rate limiter before the run starts.
    pub fn create_limiter(&mut self, rate: f64, burst: f64) -> LimiterId {
        let id = LimiterId(self.limiters.len() as u32);
        self.limiters.push(RateLimiter::new(rate, burst));
        self.limiter_events.push(None);
        id
    }

    /// Creates a bandwidth link before the run starts.
    pub fn create_link(&mut self, capacity: Bandwidth) -> LinkId {
        self.flownet.add_link(capacity)
    }

    /// Spawns a thread-backed root process that starts at the current
    /// virtual time. Prefer [`Sim::spawn_task`] for new code; this is the
    /// bridge for bodies that block the host thread.
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> ProcessId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let pid = self.create_process(name.into(), ProcessBody::Blocking(Box::new(body)));
        self.queue.schedule(self.now(), Wake::Process(pid.0));
        pid
    }

    /// Spawns a stackless root process that starts at the current virtual
    /// time. `f` receives the process's owned [`Ctx`] and returns its
    /// future; the future is created and polled on the scheduler thread
    /// and costs no OS thread while suspended.
    pub fn spawn_task<F, Fut>(&mut self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(Ctx) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let body: TaskFn = Box::new(move |ctx| Box::pin(f(ctx)) as LocalBoxFuture<'static, ()>);
        let pid = self.create_process(name.into(), ProcessBody::Task(body));
        self.queue.schedule(self.now(), Wake::Process(pid.0));
        pid
    }

    /// Registers a process slot. No OS thread and no future is involved
    /// until the process first wakes — see [`Sim::run_process`].
    fn create_process(&mut self, name: String, body: ProcessBody) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        self.procs.push(Slot {
            name: name.into(),
            state: PState::Ready,
            resume_with: ResumeMsg::Go,
            join_waiters: Vec::new(),
            body: Some(body),
            worker: None,
            task: None,
            panic_observed: false,
        });
        self.live_now += 1;
        self.peak_live = self.peak_live.max(self.live_now);
        pid
    }

    /// Runs the simulation until no events remain.
    ///
    /// # Errors
    /// Returns [`SimError::ProcessPanicked`] if any process panicked without
    /// a joiner observing it, and [`SimError::Deadlock`] if the event queue
    /// drained while processes were still blocked.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        while let Some((time, wake)) = self.queue.pop() {
            debug_assert!(time >= self.now(), "time must be monotone");
            self.clock.store(time.as_nanos(), Ordering::SeqCst);
            self.events_dispatched += 1;
            match wake {
                Wake::Process(pidx) => self.run_process(pidx),
                Wake::FlowTick => {
                    self.flow_event = None;
                    let mut woken = std::mem::take(&mut self.tick_woken);
                    self.flownet.tick(time, &mut woken);
                    for &pidx in &woken {
                        self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                        self.schedule_wake(pidx);
                    }
                    woken.clear();
                    self.tick_woken = woken;
                    self.check_flow_stall();
                    self.reschedule_flow_tick();
                }
                Wake::LimiterTick(li) => {
                    self.limiter_events[li as usize] = None;
                    let mut woken = std::mem::take(&mut self.tick_woken);
                    self.limiters[li as usize].tick_into(time, &mut woken);
                    for &pidx in &woken {
                        self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                        self.schedule_wake(pidx);
                    }
                    woken.clear();
                    self.tick_woken = woken;
                    self.reschedule_limiter_tick(li);
                }
            }
            if let Some(err) = self.fatal.take() {
                self.teardown();
                return Err(err);
            }
        }
        self.finished = true;
        let end_time = self.now();
        // Surface unobserved panics.
        for slot in &self.procs {
            if let PState::Finished(Err(message)) = &slot.state {
                if !slot.panic_observed {
                    let err = SimError::ProcessPanicked {
                        process: slot.name.to_string(),
                        message: message.clone(),
                    };
                    self.teardown();
                    return Err(err);
                }
            }
        }
        // Detect deadlock: blocked processes with no pending events.
        let blocked: Vec<String> = self
            .procs
            .iter()
            .filter(|s| !matches!(s.state, PState::Finished(_)))
            .map(|s| s.name.to_string())
            .collect();
        if !blocked.is_empty() {
            self.teardown();
            return Err(SimError::Deadlock { blocked });
        }
        let report = SimReport {
            end_time,
            processes: self.procs.len(),
            events: self.events_dispatched,
            peak_live_processes: self.peak_live,
            pool_workers: self.pool.worker_count(),
            offload_workers: self.offload.worker_count(),
        };
        self.teardown();
        Ok(report)
    }

    fn schedule_wake(&mut self, pidx: u32) {
        self.procs[pidx as usize].state = PState::Ready;
        self.queue.schedule(self.now(), Wake::Process(pidx));
    }

    /// Records a fatal error if the last rate recompute starved a flow;
    /// the run loop terminates with it after the current event.
    fn check_flow_stall(&mut self) {
        if let Some(waker) = self.flownet.take_stalled() {
            if self.fatal.is_none() {
                self.fatal = Some(SimError::FlowStalled {
                    process: self.procs[waker as usize].name.to_string(),
                });
            }
        }
    }

    fn reschedule_flow_tick(&mut self) {
        if let Some(ev) = self.flow_event.take() {
            self.queue.cancel(ev);
        }
        if let Some(at) = self.flownet.next_completion(self.now()) {
            self.flow_event = Some(self.queue.schedule(at, Wake::FlowTick));
        }
    }

    fn reschedule_limiter_tick(&mut self, li: u32) {
        if let Some(ev) = self.limiter_events[li as usize].take() {
            self.queue.cancel(ev);
        }
        let now = self.now();
        if let Some(at) = self.limiters[li as usize].next_ready(now) {
            self.limiter_events[li as usize] = Some(self.queue.schedule(at, Wake::LimiterTick(li)));
        }
    }

    /// Resumes process `pidx` and services its requests until it blocks or
    /// finishes.
    ///
    /// On a process's first wake it is bound to its backing: a stackless
    /// body becomes a future polled in place, a blocking body is handed
    /// to a pool worker (an idle thread is reused if one exists,
    /// otherwise the pool grows by one). Binding lazily means processes
    /// that are spawned but never scheduled cost nothing, and the thread
    /// pool's size tracks the *peak* number of concurrently live blocking
    /// bodies, not the total spawned.
    fn run_process(&mut self, pidx: u32) {
        let pi = pidx as usize;
        if matches!(self.procs[pi].state, PState::Finished(_)) {
            return;
        }
        if self.procs[pi].worker.is_none() && self.procs[pi].task.is_none() {
            // First wake: bind the body.
            debug_assert!(
                matches!(self.procs[pi].resume_with, ResumeMsg::Go),
                "first wake must be a plain Go"
            );
            match self.procs[pi]
                .body
                .take()
                .expect("unbound process has no body")
            {
                ProcessBody::Blocking(body) => {
                    let job = Job {
                        pid: ProcessId(pidx),
                        name: Arc::clone(&self.procs[pi].name),
                        body,
                        seed: self.cfg.seed,
                    };
                    let widx = self.pool.run(job);
                    self.procs[pi].worker = Some(widx);
                    self.pump_thread(pidx);
                }
                ProcessBody::Task(f) => {
                    let cell = Rc::new(OpCell::default());
                    let ctx = Ctx::new_task(
                        ProcessId(pidx),
                        Arc::clone(&self.procs[pi].name),
                        Arc::clone(&self.clock),
                        Rc::clone(&cell),
                        self.cfg.seed,
                    );
                    // Creating the future runs no user code (that happens
                    // at first poll, below).
                    let future = f(ctx);
                    self.procs[pi].task = Some(TaskState {
                        future: Some(future),
                        cell,
                    });
                    self.poll_task(pidx);
                }
            }
            return;
        }
        let msg = std::mem::replace(&mut self.procs[pi].resume_with, ResumeMsg::Go);
        if let Some(widx) = self.procs[pi].worker {
            self.pool.resume(widx, msg);
            self.pump_thread(pidx);
        } else {
            // A bound, unfinished task is always suspended in exactly one
            // op; deliver the answer it is waiting for, then poll. Offload
            // results are collected here — at the virtual-time deadline —
            // so host completion order never reorders events.
            let msg = match msg {
                ResumeMsg::OffloadWait(token) => ResumeMsg::OffloadDone(self.offload.wait(token)),
                m => m,
            };
            {
                let cell = &self.procs[pi]
                    .task
                    .as_ref()
                    .expect("bound task has state")
                    .cell;
                let prev = cell.reply.borrow_mut().replace(msg);
                debug_assert!(prev.is_none(), "task woken with a stale reply pending");
            }
            self.poll_task(pidx);
        }
    }

    /// Services a thread-backed process's yields until it blocks or
    /// finishes (the worker thread runs; this thread waits in `recv`).
    fn pump_thread(&mut self, pidx: u32) {
        loop {
            let (from, msg) = self.yields.recv();
            debug_assert_eq!(from, pidx, "yield from unexpected process");
            match self.handle_yield(pidx, msg) {
                Flow::Continue => continue,
                Flow::Blocked => {
                    self.procs[pidx as usize].state = PState::Blocked;
                    break;
                }
                Flow::Done => break,
            }
        }
    }

    /// Polls a stackless process's future, servicing the op it deposits
    /// on each suspension, until it blocks in virtual time, finishes, or
    /// panics.
    fn poll_task(&mut self, pidx: u32) {
        loop {
            let ts = self.procs[pidx as usize]
                .task
                .as_mut()
                .expect("poll_task on a non-task process");
            let mut future = ts.future.take().expect("task future missing");
            let mut cx = PollContext::from_waker(Waker::noop());
            let polled =
                std::panic::catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx)));
            match polled {
                Ok(Poll::Pending) => {
                    let ts = self.procs[pidx as usize].task.as_mut().expect("task state");
                    ts.future = Some(future);
                    let Some(msg) = ts.cell.request.borrow_mut().take() else {
                        // The future suspended without a simulation op
                        // pending — it awaited something the scheduler
                        // cannot resolve. Fail the process rather than
                        // hang the simulation.
                        self.procs[pidx as usize].task = None;
                        self.finish_process(
                            pidx,
                            Err("stackless process suspended outside a simulation op \
                                 (awaited a non-simulation future)"
                                .to_string()),
                        );
                        return;
                    };
                    match self.handle_yield(pidx, msg) {
                        Flow::Continue => continue,
                        Flow::Blocked => {
                            self.procs[pidx as usize].state = PState::Blocked;
                            return;
                        }
                        Flow::Done => unreachable!("tasks finish by returning, not yielding"),
                    }
                }
                Ok(Poll::Ready(())) => {
                    drop(future);
                    self.procs[pidx as usize].task = None;
                    self.finish_process(pidx, Ok(()));
                    return;
                }
                Err(payload) => {
                    drop(future);
                    self.procs[pidx as usize].task = None;
                    self.finish_process(pidx, Err(panic_message(payload.as_ref())));
                    return;
                }
            }
        }
    }

    /// Delivers a scheduler reply to a running process: through the pool
    /// rendezvous for thread-backed bodies, into the op mailbox for
    /// stackless ones (consumed on the next poll).
    fn reply(&self, pidx: u32, msg: ResumeMsg) {
        let slot = &self.procs[pidx as usize];
        if let Some(widx) = slot.worker {
            self.pool.resume(widx, msg);
        } else if let Some(ts) = &slot.task {
            let prev = ts.cell.reply.borrow_mut().replace(msg);
            debug_assert!(prev.is_none(), "task replied to twice");
        } else {
            panic!("reply to a process that never ran");
        }
    }

    fn handle_yield(&mut self, pidx: u32, msg: YieldMsg) -> Flow {
        let now = self.now();
        match msg {
            YieldMsg::Sleep(d) => {
                self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                self.queue.schedule(now + d, Wake::Process(pidx));
                Flow::Blocked
            }
            YieldMsg::SemCreate(permits) => {
                let id = SemId(self.sems.len() as u32);
                self.sems.push(Semaphore::new(permits));
                self.reply(pidx, ResumeMsg::Sem(id));
                Flow::Continue
            }
            YieldMsg::SemAcquire(id, n) => {
                if self.sems[id.0 as usize].acquire(pidx, n) {
                    self.reply(pidx, ResumeMsg::Go);
                    Flow::Continue
                } else {
                    self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                    Flow::Blocked
                }
            }
            YieldMsg::SemRelease(id, n) => {
                let woken = self.sems[id.0 as usize].release(n);
                for w in woken {
                    self.procs[w as usize].resume_with = ResumeMsg::Go;
                    self.schedule_wake(w);
                }
                self.reply(pidx, ResumeMsg::Go);
                Flow::Continue
            }
            YieldMsg::LimiterCreate { rate, burst } => {
                let id = LimiterId(self.limiters.len() as u32);
                self.limiters.push(RateLimiter::new(rate, burst));
                self.limiter_events.push(None);
                self.reply(pidx, ResumeMsg::Limiter(id));
                Flow::Continue
            }
            YieldMsg::LimiterAcquire(id, tokens) => {
                if self.limiters[id.0 as usize].acquire(now, pidx, tokens) {
                    self.reply(pidx, ResumeMsg::Go);
                    Flow::Continue
                } else {
                    self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                    self.reschedule_limiter_tick(id.0);
                    Flow::Blocked
                }
            }
            YieldMsg::LinkCreate(bw) => {
                let id = self.flownet.add_link(bw);
                self.reply(pidx, ResumeMsg::Link(id));
                Flow::Continue
            }
            YieldMsg::Transfer(spec) => {
                self.flownet.start(now, spec, pidx);
                self.procs[pidx as usize].resume_with = ResumeMsg::Go;
                self.check_flow_stall();
                self.reschedule_flow_tick();
                Flow::Blocked
            }
            YieldMsg::Spawn { name, body } => {
                let pid = self.create_process(name, body);
                self.queue.schedule(now, Wake::Process(pid.0));
                self.reply(pidx, ResumeMsg::Pid(pid));
                Flow::Continue
            }
            YieldMsg::Join(target) => {
                assert!(
                    (target.0 as usize) < self.procs.len(),
                    "join on unknown process {:?}",
                    target
                );
                let result = match &self.procs[target.index()].state {
                    PState::Finished(res) => Some(res.clone()),
                    _ => None,
                };
                match result {
                    Some(res) => {
                        let jr = self.join_result(target, res);
                        self.reply(pidx, ResumeMsg::JoinResult(jr));
                        Flow::Continue
                    }
                    None => {
                        self.procs[target.index()].join_waiters.push(pidx);
                        Flow::Blocked
                    }
                }
            }
            YieldMsg::Offload { d, job } => {
                // The kernel starts on the offload pool *now* (in host
                // time) but the process sleeps until `now + d` in virtual
                // time — the event this schedules is indistinguishable
                // from a plain `Sleep(d)`, so offloading a kernel can
                // never change the event schedule.
                let token = self.offload.submit(job);
                self.procs[pidx as usize].resume_with = ResumeMsg::OffloadWait(token);
                self.queue.schedule(now + d, Wake::Process(pidx));
                Flow::Blocked
            }
            YieldMsg::Finished(result) => {
                self.finish_process(pidx, result);
                Flow::Done
            }
        }
    }

    /// Marks `pidx` finished, releases its backing, and wakes joiners.
    fn finish_process(&mut self, pidx: u32, result: Result<(), String>) {
        let slot = &mut self.procs[pidx as usize];
        // A thread-backed worker is heading back to its command channel;
        // return it to the idle stack for immediate reuse (no join). Task
        // futures were already dropped by the caller.
        if let Some(widx) = slot.worker.take() {
            self.pool.release(widx);
        }
        slot.state = PState::Finished(result.clone());
        self.live_now -= 1;
        let waiters = std::mem::take(&mut self.procs[pidx as usize].join_waiters);
        for w in waiters {
            let jr = self.join_result(ProcessId(pidx), result.clone());
            self.procs[w as usize].resume_with = ResumeMsg::JoinResult(jr);
            self.schedule_wake(w);
        }
    }

    fn join_result(&mut self, target: ProcessId, res: Result<(), String>) -> Result<(), JoinError> {
        match res {
            Ok(()) => Ok(()),
            Err(message) => {
                self.procs[target.index()].panic_observed = true;
                Err(JoinError {
                    process: self.procs[target.index()].name.to_string(),
                    message,
                })
            }
        }
    }

    /// Unwinds every still-bound blocking process body, then exits and
    /// joins the pool and offload threads.
    ///
    /// At this point the scheduler is not servicing yields, so every bound,
    /// unfinished thread-backed process is parked on its worker's resume
    /// channel; the [`ResumeMsg::Shutdown`] reply makes the body unwind
    /// quietly and the worker fall through to its command channel, where
    /// the pool's `Exit` awaits. Stackless processes need no unwinding —
    /// their suspended futures (and never-started bodies) are simply
    /// dropped with the slot.
    fn teardown(&mut self) {
        for slot in &mut self.procs {
            if !matches!(slot.state, PState::Finished(_)) {
                if let Some(widx) = slot.worker.take() {
                    self.pool.resume(widx, ResumeMsg::Shutdown);
                }
            }
            slot.task = None;
        }
        self.pool.shutdown();
        self.offload.shutdown();
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        if !self.finished {
            self.teardown();
        }
    }
}

enum Flow {
    Continue,
    Blocked,
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bandwidth, ByteSize, SimDuration};
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[test]
    fn empty_sim_completes() {
        let report = Sim::new().run().expect("empty sim");
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.processes, 0);
        assert_eq!(report.pool_workers, 0);
    }

    #[test]
    fn sleep_advances_clock() {
        let mut sim = Sim::new();
        sim.spawn("sleeper", |ctx| {
            ctx.sleep(SimDuration::from_secs(5));
            ctx.sleep(SimDuration::from_millis(250));
        });
        let report = sim.run().expect("run");
        assert_eq!(report.end_time.as_nanos(), 5_250_000_000);
    }

    #[test]
    fn processes_interleave_deterministically() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        for i in 0..3u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("p{}", i), move |ctx| {
                ctx.sleep(SimDuration::from_millis(10 * (3 - i)));
                log.lock().unwrap().push(i);
            });
        }
        sim.run().expect("run");
        assert_eq!(*log.lock().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn spawn_and_join_child() {
        let out = Arc::new(Mutex::new(0u64));
        let mut sim = Sim::new();
        let out2 = Arc::clone(&out);
        sim.spawn("parent", move |ctx| {
            let out3 = Arc::clone(&out2);
            let child = ctx.spawn("child", move |cctx| {
                cctx.sleep(SimDuration::from_secs(1));
                *out3.lock().unwrap() = 42;
            });
            ctx.join(child).expect("child ok");
            assert_eq!(ctx.now().as_secs_f64(), 1.0);
            assert_eq!(*out2.lock().unwrap(), 42);
        });
        sim.run().expect("run");
        assert_eq!(*out.lock().unwrap(), 42);
    }

    #[test]
    fn join_already_finished_child() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("quick", |_| {});
            ctx.sleep(SimDuration::from_secs(1));
            ctx.join(child).expect("quick ok");
            assert_eq!(ctx.now().as_secs_f64(), 1.0, "join must not add time");
        });
        sim.run().expect("run");
    }

    #[test]
    fn join_observes_child_panic() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("bad", |_| panic!("boom"));
            let err = ctx.join(child).expect_err("child panicked");
            assert_eq!(err.process, "bad");
            assert!(err.message.contains("boom"));
        });
        sim.run().expect("observed panic is not a sim error");
    }

    #[test]
    fn unobserved_panic_fails_run() {
        let mut sim = Sim::new();
        sim.spawn("bad", |_| panic!("kaboom"));
        let err = sim.run().expect_err("must fail");
        match err {
            SimError::ProcessPanicked { process, message } => {
                assert_eq!(process, "bad");
                assert!(message.contains("kaboom"));
            }
            other => panic!("unexpected error {:?}", other),
        }
    }

    #[test]
    fn semaphore_serializes_critical_section() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(1);
        for i in 0..4u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("w{}", i), move |ctx| {
                ctx.sem_acquire(sem, 1);
                log.lock().unwrap().push((i, ctx.now()));
                ctx.sleep(SimDuration::from_secs(1));
                ctx.sem_release(sem, 1);
            });
        }
        sim.run().expect("run");
        let log = log.lock().unwrap();
        // FIFO: worker i enters at t = i seconds.
        for (i, (w, at)) in log.iter().enumerate() {
            assert_eq!(*w, i as u64);
            assert_eq!(at.as_secs_f64(), i as f64);
        }
    }

    #[test]
    fn limiter_throttles_ops() {
        let mut sim = Sim::new();
        let lim = sim.create_limiter(10.0, 1.0); // 10 ops/s, burst 1
        sim.spawn("client", move |ctx| {
            for _ in 0..5 {
                ctx.limiter_acquire(lim, 1.0);
            }
            // First op free (full bucket), remaining 4 at 0.1 s apart.
            assert!((ctx.now().as_secs_f64() - 0.4).abs() < 1e-6);
        });
        sim.run().expect("run");
    }

    #[test]
    fn transfer_times_follow_fair_share() {
        let mut sim = Sim::new();
        let link = sim.create_link(Bandwidth::bytes_per_sec(100.0));
        let done = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u64 {
            let done = Arc::clone(&done);
            sim.spawn(format!("t{}", i), move |ctx| {
                ctx.transfer(ByteSize::new(100), &[link]);
                done.lock().unwrap().push((i, ctx.now()));
            });
        }
        sim.run().expect("run");
        let done = done.lock().unwrap();
        // Two 100-byte flows share 100 B/s: both complete at t=2s.
        for (_, at) in done.iter() {
            assert!((at.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn transfer_rebalances_after_completion() {
        let mut sim = Sim::new();
        let link = sim.create_link(Bandwidth::bytes_per_sec(100.0));
        let done = Arc::new(Mutex::new(HashMap::new()));
        let d1 = Arc::clone(&done);
        sim.spawn("small", move |ctx| {
            ctx.transfer(ByteSize::new(50), &[link]);
            d1.lock().unwrap().insert("small", ctx.now().as_secs_f64());
        });
        let d2 = Arc::clone(&done);
        sim.spawn("large", move |ctx| {
            ctx.transfer(ByteSize::new(500), &[link]);
            d2.lock().unwrap().insert("large", ctx.now().as_secs_f64());
        });
        sim.run().expect("run");
        let done = done.lock().unwrap();
        // Shared 50 B/s until small finishes at 1 s; large then runs at
        // 100 B/s for its remaining 450 B => 1 + 4.5 = 5.5 s.
        assert!((done["small"] - 1.0).abs() < 1e-6);
        assert!((done["large"] - 5.5).abs() < 1e-6);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(0);
        sim.spawn("stuck", move |ctx| {
            ctx.sem_acquire(sem, 1);
        });
        let err = sim.run().expect_err("deadlock");
        match err {
            SimError::Deadlock { blocked } => assert_eq!(blocked, vec!["stuck".to_string()]),
            other => panic!("unexpected error {:?}", other),
        }
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        fn draw() -> Vec<u64> {
            use rand::Rng;
            let out = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new();
            let out2 = Arc::clone(&out);
            sim.spawn("r", move |ctx| {
                let v: Vec<u64> = (0..8).map(|_| ctx.rng().gen()).collect();
                out2.lock().unwrap().extend(v);
            });
            sim.run().expect("run");
            let v = out.lock().unwrap().clone();
            v
        }
        assert_eq!(draw(), draw());
    }

    #[test]
    fn join_all_aggregates() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let kids: Vec<_> = (0..4)
                .map(|i| {
                    ctx.spawn(format!("k{}", i), move |c| {
                        c.sleep(SimDuration::from_secs(i + 1));
                    })
                })
                .collect();
            ctx.join_all(&kids).expect("all ok");
            assert_eq!(ctx.now().as_secs_f64(), 4.0);
        });
        sim.run().expect("run");
    }

    #[test]
    fn different_sim_seeds_change_random_streams() {
        fn draw(seed: u64) -> u64 {
            use rand::Rng;
            let out = Arc::new(Mutex::new(0u64));
            let mut sim = Sim::with_config(SimConfig {
                seed,
                ..SimConfig::default()
            });
            let out2 = Arc::clone(&out);
            sim.spawn("r", move |ctx| {
                *out2.lock().unwrap() = ctx.rng().gen();
            });
            sim.run().expect("run");
            let v = *out.lock().unwrap();
            v
        }
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn deep_spawn_trees_work() {
        // Each process spawns a child, 50 levels deep, each sleeping 1 ms.
        fn spawn_level(ctx: &mut Ctx, level: u64) {
            ctx.sleep(SimDuration::from_millis(1));
            if level > 0 {
                let child = ctx.spawn(format!("level{}", level), move |c| {
                    spawn_level(c, level - 1);
                });
                ctx.join(child).expect("child ok");
            }
        }
        let mut sim = Sim::new();
        sim.spawn("root", |ctx| spawn_level(ctx, 50));
        let report = sim.run().expect("run");
        assert_eq!(report.processes, 51);
        assert_eq!(report.end_time.as_nanos(), 51 * 1_000_000);
        // Every level blocks in a join while its child runs, so all 51
        // bodies are live at the deepest point and each needs a worker.
        assert_eq!(report.pool_workers, 51);
        assert_eq!(report.peak_live_processes, 51);
    }

    #[test]
    fn custom_stack_size_is_honored() {
        let mut sim = Sim::with_config(SimConfig {
            stack_size: 512 * 1024,
            ..SimConfig::default()
        });
        sim.spawn("small-stack", |ctx| {
            // Use a modest amount of stack to prove the thread works.
            let buf = [0u8; 64 * 1024];
            ctx.sleep(SimDuration::from_nanos(buf[0] as u64 + 1));
        });
        sim.run().expect("run");
    }

    #[test]
    fn sleeping_zero_is_a_yield_not_a_noop() {
        // Two processes alternating zero-sleeps interleave fairly.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        for who in 0..2u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("p{}", who), move |ctx| {
                for _ in 0..3 {
                    log.lock().unwrap().push(who);
                    ctx.sleep(SimDuration::ZERO);
                }
            });
        }
        sim.run().expect("run");
        let log = log.lock().unwrap();
        assert_eq!(
            *log,
            vec![0, 1, 0, 1, 0, 1],
            "zero-sleep yields round-robin"
        );
    }

    #[test]
    fn many_processes_scale() {
        let mut sim = Sim::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..200u64 {
            let counter = Arc::clone(&counter);
            sim.spawn(format!("n{}", i), move |ctx| {
                ctx.sleep(SimDuration::from_millis(i));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let report = sim.run().expect("run");
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(report.processes, 200);
        assert_eq!(report.peak_live_processes, 200);
    }

    #[test]
    fn sequential_processes_reuse_one_worker() {
        // 500 processes that never overlap in virtual time: the pool must
        // run them all on a single reused OS thread.
        let mut sim = Sim::new();
        sim.spawn("root", |ctx| {
            for i in 0..500u64 {
                let child = ctx.spawn(format!("seq{}", i), |c| {
                    c.sleep(SimDuration::from_millis(1));
                });
                ctx.join(child).expect("child ok");
            }
        });
        let report = sim.run().expect("run");
        assert_eq!(report.processes, 501);
        // Root is blocked in join while each child runs: two workers.
        assert_eq!(report.pool_workers, 2, "thread churn is gone");
        assert_eq!(report.peak_live_processes, 2);
    }

    #[test]
    fn pool_grows_to_peak_concurrency_not_total() {
        // Waves of 8 concurrent processes, 10 waves: 8 workers + the root.
        let mut sim = Sim::new();
        sim.spawn("root", |ctx| {
            for _ in 0..10 {
                let kids: Vec<_> = (0..8)
                    .map(|i| {
                        ctx.spawn(format!("wave{}", i), |c| {
                            c.sleep(SimDuration::from_millis(3));
                        })
                    })
                    .collect();
                ctx.join_all(&kids).expect("wave ok");
            }
        });
        let report = sim.run().expect("run");
        assert_eq!(report.processes, 81);
        assert_eq!(report.pool_workers, 9, "pool sized by peak, not total");
        assert_eq!(report.peak_live_processes, 9);
    }

    #[test]
    fn spawned_but_never_scheduled_processes_cost_no_thread() {
        // A deadlocked sim whose second process never gets its first wake
        // must still tear down cleanly (the body is dropped, not run).
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(0);
        sim.spawn("stuck", move |ctx| {
            // Spawn a child, then block forever before it could matter.
            let _child = ctx.spawn("never-run", |c| c.sleep(SimDuration::from_secs(1)));
            ctx.sem_acquire(sem, 1);
        });
        let err = sim.run().expect_err("deadlock");
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn fan_out_returns_results_in_job_order() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let jobs: Vec<_> = (0..6u64)
                .map(|i| {
                    move |cctx: &mut Ctx| {
                        // Later jobs finish earlier; order must still hold.
                        cctx.sleep(SimDuration::from_millis(60 - 10 * i));
                        i * 2
                    }
                })
                .collect();
            let out = ctx.fan_out("job", 6, jobs).expect("fan_out ok");
            assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
        });
        sim.run().expect("run");
    }

    #[test]
    fn fan_out_window_bounds_concurrency() {
        // 4 one-second jobs through a window of 2 take exactly 2 s, and
        // never more than 2 run at once.
        let inflight = Arc::new(Mutex::new((0u32, 0u32))); // (current, peak)
        let mut sim = Sim::new();
        let inflight2 = Arc::clone(&inflight);
        sim.spawn("parent", move |ctx| {
            let jobs: Vec<_> = (0..4)
                .map(|_| {
                    let inflight = Arc::clone(&inflight2);
                    move |cctx: &mut Ctx| {
                        {
                            let mut g = inflight.lock().unwrap();
                            g.0 += 1;
                            g.1 = g.1.max(g.0);
                        }
                        cctx.sleep(SimDuration::from_secs(1));
                        inflight.lock().unwrap().0 -= 1;
                    }
                })
                .collect();
            ctx.fan_out("bounded", 2, jobs).expect("fan_out ok");
            assert_eq!(ctx.now().as_secs_f64(), 2.0, "2 waves of 2 jobs");
        });
        sim.run().expect("run");
        assert_eq!(inflight.lock().unwrap().1, 2, "window caps concurrency");
    }

    #[test]
    fn fan_out_panic_surfaces_without_deadlocking_siblings() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            // Worker 0 pulls the panicking job and dies; worker 1 keeps
            // draining the queue, so the surviving job still runs and
            // the fan-out returns (first error) instead of hanging.
            type BoxedJob = Box<dyn FnOnce(&mut Ctx) -> u32 + Send>;
            let jobs: Vec<BoxedJob> = vec![
                Box::new(|_: &mut Ctx| panic!("job zero failed")),
                Box::new(|cctx: &mut Ctx| {
                    cctx.sleep(SimDuration::from_millis(5));
                    7
                }),
            ];
            let err = ctx.fan_out("mixed", 2, jobs).expect_err("panic surfaces");
            assert_eq!(err.process, "mixed#0");
            assert!(err.message.contains("job zero failed"));
            assert!(
                ctx.now().as_secs_f64() >= 0.005,
                "sibling still ran to completion"
            );
        });
        sim.run().expect("observed panic is not a sim error");
    }

    #[test]
    fn fan_out_empty_and_zero_window() {
        let mut sim = Sim::new();
        sim.spawn("parent", |ctx| {
            let none: Vec<fn(&mut Ctx) -> u8> = Vec::new();
            assert_eq!(ctx.fan_out("empty", 4, none).expect("empty ok"), vec![]);
            // Window 0 is clamped to 1 rather than deadlocking.
            let jobs: Vec<_> = (0..2u8).map(|i| move |_: &mut Ctx| i).collect();
            assert_eq!(ctx.fan_out("clamped", 0, jobs).expect("ok"), vec![0, 1]);
        });
        sim.run().expect("run");
    }

    #[test]
    fn task_sleep_advances_clock_without_pool_threads() {
        let mut sim = Sim::new();
        sim.spawn_task("sleeper", |ctx| async move {
            ctx.sleep_async(SimDuration::from_secs(5)).await;
            ctx.sleep_async(SimDuration::from_millis(250)).await;
        });
        let report = sim.run().expect("run");
        assert_eq!(report.end_time.as_nanos(), 5_250_000_000);
        assert_eq!(report.pool_workers, 0, "stackless bodies cost no threads");
    }

    #[test]
    fn tasks_and_threads_share_one_virtual_schedule() {
        // The same workload, thread-backed vs task-backed, must produce
        // identical end times, event counts, and interleavings.
        fn run_flavor(tasks: bool) -> (u64, u64, Vec<u64>) {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new();
            for i in 0..3u64 {
                let log = Arc::clone(&log);
                if tasks {
                    sim.spawn_task(format!("p{}", i), move |ctx| async move {
                        ctx.sleep_async(SimDuration::from_millis(10 * (3 - i)))
                            .await;
                        log.lock().unwrap().push(i);
                    });
                } else {
                    sim.spawn(format!("p{}", i), move |ctx| {
                        ctx.sleep(SimDuration::from_millis(10 * (3 - i)));
                        log.lock().unwrap().push(i);
                    });
                }
            }
            let report = sim.run().expect("run");
            let order = log.lock().unwrap().clone();
            (report.end_time.as_nanos(), report.events, order)
        }
        assert_eq!(run_flavor(false), run_flavor(true));
    }

    #[test]
    fn task_spawns_and_joins_task_children() {
        let out = Arc::new(Mutex::new(0u64));
        let mut sim = Sim::new();
        let out2 = Arc::clone(&out);
        sim.spawn_task("parent", move |ctx| async move {
            let out3 = Arc::clone(&out2);
            let child = ctx
                .spawn_task("child", move |cctx| async move {
                    cctx.sleep_async(SimDuration::from_secs(1)).await;
                    *out3.lock().unwrap() = 42;
                })
                .await;
            ctx.join_async(child).await.expect("child ok");
            assert_eq!(ctx.now().as_secs_f64(), 1.0);
            assert_eq!(*out2.lock().unwrap(), 42);
        });
        let report = sim.run().expect("run");
        assert_eq!(*out.lock().unwrap(), 42);
        assert_eq!(report.pool_workers, 0);
    }

    #[test]
    fn blocking_process_drives_task_children_via_run_blocking() {
        // The legacy bridge: a thread-backed driver uses the async API
        // eagerly through run_blocking.
        use crate::process::run_blocking;
        let mut sim = Sim::new();
        sim.spawn("driver", |ctx| {
            let child = run_blocking(ctx.spawn_task("t", |c| async move {
                c.sleep_async(SimDuration::from_secs(2)).await;
            }));
            ctx.join(child).expect("child ok");
            assert_eq!(ctx.now().as_secs_f64(), 2.0);
            run_blocking(ctx.sleep_async(SimDuration::from_secs(1)));
            assert_eq!(ctx.now().as_secs_f64(), 3.0);
        });
        let report = sim.run().expect("run");
        assert_eq!(report.end_time.as_secs_f64(), 3.0);
        assert_eq!(report.pool_workers, 1, "only the driver needs a thread");
    }

    #[test]
    fn task_panic_is_observed_by_joiner() {
        let mut sim = Sim::new();
        sim.spawn_task("parent", |ctx| async move {
            let child = ctx
                .spawn_task("bad", |_c| async move { panic!("boom") })
                .await;
            let err = ctx.join_async(child).await.expect_err("child panicked");
            assert_eq!(err.process, "bad");
            assert!(err.message.contains("boom"));
        });
        sim.run().expect("observed panic is not a sim error");
    }

    #[test]
    fn unobserved_task_panic_fails_run() {
        let mut sim = Sim::new();
        sim.spawn_task("bad", |_ctx| async move { panic!("kaboom") });
        let err = sim.run().expect_err("must fail");
        assert!(matches!(err, SimError::ProcessPanicked { .. }));
    }

    #[test]
    fn task_semaphores_and_limiters_match_blocking_semantics() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(1);
        for i in 0..4u64 {
            let log = Arc::clone(&log);
            sim.spawn_task(format!("w{}", i), move |ctx| async move {
                ctx.sem_acquire_async(sem, 1).await;
                log.lock().unwrap().push((i, ctx.now()));
                ctx.sleep_async(SimDuration::from_secs(1)).await;
                ctx.sem_release_async(sem, 1).await;
            });
        }
        sim.run().expect("run");
        let log = log.lock().unwrap();
        for (i, (w, at)) in log.iter().enumerate() {
            assert_eq!(*w, i as u64);
            assert_eq!(at.as_secs_f64(), i as f64);
        }
    }

    #[test]
    fn task_transfers_share_links_fairly() {
        let mut sim = Sim::new();
        let link = sim.create_link(Bandwidth::bytes_per_sec(100.0));
        let done = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u64 {
            let done = Arc::clone(&done);
            sim.spawn_task(format!("t{}", i), move |ctx| async move {
                ctx.transfer_async(ByteSize::new(100), &[link]).await;
                done.lock().unwrap().push((i, ctx.now()));
            });
        }
        sim.run().expect("run");
        for (_, at) in done.lock().unwrap().iter() {
            assert!((at.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn task_rng_streams_match_blocking_streams() {
        // RNG seeding depends only on (seed, pid) — never on the backing.
        use rand::Rng;
        fn draw(tasks: bool) -> Vec<u64> {
            let out = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new();
            let out2 = Arc::clone(&out);
            if tasks {
                sim.spawn_task("r", move |mut ctx| async move {
                    let v: Vec<u64> = (0..8).map(|_| ctx.rng().gen()).collect();
                    out2.lock().unwrap().extend(v);
                });
            } else {
                sim.spawn("r", move |ctx| {
                    let v: Vec<u64> = (0..8).map(|_| ctx.rng().gen()).collect();
                    out2.lock().unwrap().extend(v);
                });
            }
            sim.run().expect("run");
            let v = out.lock().unwrap().clone();
            v
        }
        assert_eq!(draw(false), draw(true));
    }

    #[test]
    fn fan_out_async_returns_results_in_job_order() {
        let mut sim = Sim::new();
        sim.spawn_task("parent", |ctx| async move {
            let jobs: Vec<_> = (0..6u64)
                .map(|i| {
                    async move |cctx: &mut Ctx| {
                        cctx.sleep_async(SimDuration::from_millis(60 - 10 * i))
                            .await;
                        i * 2
                    }
                })
                .collect();
            let out = ctx.fan_out_async("job", 6, jobs).await.expect("fan_out ok");
            assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
        });
        let report = sim.run().expect("run");
        assert_eq!(report.pool_workers, 0);
    }

    #[test]
    fn fan_out_async_window_bounds_concurrency() {
        let inflight = Arc::new(Mutex::new((0u32, 0u32)));
        let mut sim = Sim::new();
        let inflight2 = Arc::clone(&inflight);
        sim.spawn_task("parent", move |ctx| async move {
            let jobs: Vec<_> = (0..4)
                .map(|_| {
                    let inflight = Arc::clone(&inflight2);
                    async move |cctx: &mut Ctx| {
                        {
                            let mut g = inflight.lock().unwrap();
                            g.0 += 1;
                            g.1 = g.1.max(g.0);
                        }
                        cctx.sleep_async(SimDuration::from_secs(1)).await;
                        inflight.lock().unwrap().0 -= 1;
                    }
                })
                .collect();
            ctx.fan_out_async("bounded", 2, jobs).await.expect("ok");
            assert_eq!(ctx.now().as_secs_f64(), 2.0, "2 waves of 2 jobs");
        });
        sim.run().expect("run");
        assert_eq!(inflight.lock().unwrap().1, 2, "window caps concurrency");
    }

    #[test]
    fn offload_matches_compute_schedule_exactly() {
        // compute(d) + inline kernel and offload(d, kernel) must yield
        // identical end times and event counts.
        fn run_inline() -> (u64, u64, u64) {
            let out = Arc::new(AtomicU64::new(0));
            let mut sim = Sim::new();
            let out2 = Arc::clone(&out);
            sim.spawn_task("k", move |ctx| async move {
                ctx.compute_async(SimDuration::from_millis(7)).await;
                let v = (0..1000u64).sum::<u64>();
                ctx.sleep_async(SimDuration::from_millis(3)).await;
                out2.store(v, Ordering::SeqCst);
            });
            let report = sim.run().expect("run");
            (
                report.end_time.as_nanos(),
                report.events,
                out.load(Ordering::SeqCst),
            )
        }
        fn run_offloaded() -> (u64, u64, u64) {
            let out = Arc::new(AtomicU64::new(0));
            let mut sim = Sim::new();
            let out2 = Arc::clone(&out);
            sim.spawn_task("k", move |ctx| async move {
                let v = ctx
                    .offload(SimDuration::from_millis(7), || (0..1000u64).sum::<u64>())
                    .await;
                ctx.sleep_async(SimDuration::from_millis(3)).await;
                out2.store(v, Ordering::SeqCst);
            });
            let report = sim.run().expect("run");
            assert!(report.offload_workers >= 1);
            (
                report.end_time.as_nanos(),
                report.events,
                out.load(Ordering::SeqCst),
            )
        }
        assert_eq!(run_inline(), run_offloaded());
    }

    #[test]
    fn offload_panic_propagates_into_the_task() {
        let mut sim = Sim::new();
        sim.spawn_task("parent", |ctx| async move {
            let child = ctx
                .spawn_task("kern", |cctx| async move {
                    let _: u64 = cctx
                        .offload(SimDuration::from_millis(1), || panic!("kernel died"))
                        .await;
                })
                .await;
            let err = ctx.join_async(child).await.expect_err("kernel panic");
            assert!(err.message.contains("kernel died"));
        });
        sim.run().expect("observed panic is fine");
    }

    #[test]
    fn offload_runs_inline_on_thread_backed_processes() {
        let mut sim = Sim::new();
        sim.spawn("driver", |ctx| {
            use crate::process::run_blocking;
            let v: u64 = run_blocking(ctx.offload(SimDuration::from_millis(5), || 99));
            assert_eq!(v, 99);
            assert_eq!(ctx.now().as_nanos(), 5_000_000);
        });
        let report = sim.run().expect("run");
        assert_eq!(
            report.offload_workers, 0,
            "thread bodies run kernels inline"
        );
    }

    #[test]
    fn blocked_task_deadlock_is_reported() {
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(0);
        sim.spawn_task("stuck", move |ctx| async move {
            ctx.sem_acquire_async(sem, 1).await;
        });
        let err = sim.run().expect_err("deadlock");
        match err {
            SimError::Deadlock { blocked } => assert_eq!(blocked, vec!["stuck".to_string()]),
            other => panic!("unexpected error {:?}", other),
        }
    }

    #[test]
    fn zero_sleep_tasks_round_robin_with_threads() {
        // A task and a thread-backed process alternating zero-sleeps
        // interleave exactly as two thread-backed processes would.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        let l0 = Arc::clone(&log);
        sim.spawn_task("p0", move |ctx| async move {
            for _ in 0..3 {
                l0.lock().unwrap().push(0u64);
                ctx.sleep_async(SimDuration::ZERO).await;
            }
        });
        let l1 = Arc::clone(&log);
        sim.spawn("p1", move |ctx| {
            for _ in 0..3 {
                l1.lock().unwrap().push(1u64);
                ctx.sleep(SimDuration::ZERO);
            }
        });
        sim.run().expect("run");
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn many_tasks_scale_without_threads() {
        let mut sim = Sim::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..2000u64 {
            let counter = Arc::clone(&counter);
            sim.spawn_task(format!("n{}", i), move |ctx| async move {
                ctx.sleep_async(SimDuration::from_millis(i % 50)).await;
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let report = sim.run().expect("run");
        assert_eq!(counter.load(Ordering::SeqCst), 2000);
        assert_eq!(report.pool_workers, 0);
        assert_eq!(report.peak_live_processes, 2000);
    }

    #[test]
    fn worker_reuse_keeps_per_process_rng_streams() {
        // Two sequential processes share one worker thread but must draw
        // from distinct, pid-seeded random streams.
        use rand::Rng;
        let draws = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        let d = Arc::clone(&draws);
        sim.spawn("root", move |ctx| {
            for i in 0..2 {
                let d = Arc::clone(&d);
                let child = ctx.spawn(format!("c{}", i), move |c| {
                    d.lock().unwrap().push(c.rng().gen::<u64>());
                });
                ctx.join(child).expect("child ok");
            }
        });
        let report = sim.run().expect("run");
        assert_eq!(report.pool_workers, 2);
        let draws = draws.lock().unwrap();
        assert_ne!(draws[0], draws[1], "streams must differ across processes");
    }
}
