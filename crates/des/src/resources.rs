//! Kernel-owned blocking resources: FIFO semaphores and token-bucket rate
//! limiters that operate in virtual time.
//!
//! Both types are plain state machines driven by the scheduler; processes
//! reach them through [`Ctx`](crate::Ctx) methods. Grant order is strictly
//! FIFO, which keeps simulations deterministic and starvation-free.

use std::collections::VecDeque;

use crate::units::{SimDuration, SimTime};

/// Identifies a semaphore created in a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SemId(pub(crate) u32);

/// Identifies a rate limiter created in a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LimiterId(pub(crate) u32);

/// A counting semaphore with FIFO wait queue.
///
/// Used to model bounded resources: function-platform concurrency slots, VM
/// cores, connection pools.
#[derive(Debug)]
pub struct Semaphore {
    permits: u64,
    waiters: VecDeque<(u32, u64)>, // (process index, permits wanted)
}

impl Semaphore {
    /// Creates a semaphore holding `permits` initial permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            permits,
            waiters: VecDeque::new(),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.permits
    }

    /// Number of processes waiting.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Attempts to take `n` permits for process `pid`. Returns `true` if
    /// granted immediately; otherwise the process is queued and must block.
    /// A request joins the queue if anyone is already waiting, preserving
    /// FIFO order even when permits are available for smaller requests.
    pub fn acquire(&mut self, pid: u32, n: u64) -> bool {
        if self.waiters.is_empty() && self.permits >= n {
            self.permits -= n;
            true
        } else {
            self.waiters.push_back((pid, n));
            false
        }
    }

    /// Returns `n` permits and grants queued requests in FIFO order.
    /// Returns the processes to resume.
    pub fn release(&mut self, n: u64) -> Vec<u32> {
        self.permits += n;
        let mut woken = Vec::new();
        while let Some(&(pid, want)) = self.waiters.front() {
            if self.permits >= want {
                self.permits -= want;
                self.waiters.pop_front();
                woken.push(pid);
            } else {
                break;
            }
        }
        woken
    }
}

/// A token bucket that refills in **virtual time**, used to model request
/// throttling (e.g. the object store's "few thousand operations/s").
#[derive(Debug)]
pub struct RateLimiter {
    rate: f64,  // tokens per second
    burst: f64, // bucket capacity
    tokens: f64,
    last_refill: SimTime,
    waiters: VecDeque<(u32, f64)>,
}

impl RateLimiter {
    /// Creates a limiter that refills at `rate` tokens/sec up to `burst`
    /// tokens, starting full.
    ///
    /// # Panics
    /// Panics if `rate` or `burst` is non-positive or not finite.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(burst > 0.0 && burst.is_finite(), "burst must be positive");
        RateLimiter {
            rate,
            burst,
            tokens: burst,
            last_refill: SimTime::ZERO,
            waiters: VecDeque::new(),
        }
    }

    /// Tokens currently in the bucket at `now` (after refill).
    pub fn tokens_at(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Number of processes waiting.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.last_refill = now;
        if dt > 0.0 {
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        }
    }

    /// Attempts to take `n` tokens for process `pid` at virtual time `now`.
    /// Returns `true` if granted immediately, otherwise queues the request.
    ///
    /// # Panics
    /// Panics if `n` exceeds the burst capacity (the request could never be
    /// satisfied).
    pub fn acquire(&mut self, now: SimTime, pid: u32, n: f64) -> bool {
        assert!(
            n <= self.burst,
            "requested {} tokens but burst capacity is {}",
            n,
            self.burst
        );
        self.refill(now);
        if self.waiters.is_empty() && self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            self.waiters.push_back((pid, n));
            false
        }
    }

    /// Grants queued requests whose tokens have accrued by `now`. Returns
    /// the processes to resume. A tiny epsilon absorbs float residue from
    /// incremental refills.
    pub fn tick(&mut self, now: SimTime) -> Vec<u32> {
        let mut woken = Vec::new();
        self.tick_into(now, &mut woken);
        woken
    }

    /// [`RateLimiter::tick`] into a caller-owned buffer (cleared first),
    /// so the scheduler can amortise the allocation across ticks.
    pub fn tick_into(&mut self, now: SimTime, woken: &mut Vec<u32>) {
        woken.clear();
        self.refill(now);
        while let Some(&(pid, want)) = self.waiters.front() {
            if self.tokens >= want - 1e-9 {
                self.tokens -= want;
                self.waiters.pop_front();
                woken.push(pid);
            } else {
                break;
            }
        }
    }

    /// When the head-of-line request will be satisfiable, if anyone waits.
    pub fn next_ready(&mut self, now: SimTime) -> Option<SimTime> {
        self.refill(now);
        let &(_, want) = self.waiters.front()?;
        if self.tokens >= want - 1e-9 {
            return Some(now);
        }
        // Round *up* with a 1 ns pad so the scheduled tick always finds
        // the tokens accrued (see the analogous fix in flow.rs).
        let deficit = want - self.tokens;
        let ns = (deficit / self.rate * 1e9).ceil();
        let pad = if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration::from_nanos((ns as u64).saturating_add(1))
        };
        Some(now + pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn semaphore_grants_and_blocks() {
        let mut s = Semaphore::new(2);
        assert!(s.acquire(0, 1));
        assert!(s.acquire(1, 1));
        assert!(!s.acquire(2, 1));
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.release(1), vec![2]);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn semaphore_fifo_no_overtaking() {
        let mut s = Semaphore::new(2);
        assert!(s.acquire(0, 2));
        assert!(!s.acquire(1, 2)); // waits for 2
        assert!(!s.acquire(2, 1)); // must not overtake pid 1
        let woken = s.release(2);
        assert_eq!(woken, vec![1]);
        let woken = s.release(2);
        assert_eq!(woken, vec![2]);
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn semaphore_release_wakes_multiple() {
        let mut s = Semaphore::new(0);
        assert!(!s.acquire(0, 1));
        assert!(!s.acquire(1, 1));
        assert!(!s.acquire(2, 3));
        assert_eq!(s.release(2), vec![0, 1]);
        assert_eq!(s.release(3), vec![2]);
    }

    #[test]
    fn limiter_starts_full_and_throttles() {
        let mut l = RateLimiter::new(10.0, 5.0);
        assert!(l.acquire(t(0), 0, 5.0));
        assert!(!l.acquire(t(0), 1, 3.0));
        // 3 tokens accrue in 0.3 s.
        let ready = l.next_ready(t(0)).expect("waiter queued");
        assert!(
            ready.as_nanos().abs_diff(t(300).as_nanos()) <= 2,
            "ready {:?}",
            ready
        );
        assert_eq!(l.tick(t(300)), vec![1]);
        assert!(l.next_ready(t(300)).is_none());
    }

    #[test]
    fn limiter_refill_caps_at_burst() {
        let mut l = RateLimiter::new(100.0, 10.0);
        assert!(l.acquire(t(0), 0, 10.0));
        // A long wait should not accrue more than burst.
        assert!((l.tokens_at(t(60_000)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn limiter_fifo_order() {
        let mut l = RateLimiter::new(1.0, 2.0);
        assert!(l.acquire(t(0), 0, 2.0)); // drains bucket
        assert!(!l.acquire(t(0), 1, 2.0));
        assert!(!l.acquire(t(0), 2, 0.5));
        // After 2 s, head (pid 1) is satisfiable but pid 2's smaller
        // request must not jump the queue before that.
        assert_eq!(l.tick(t(1_000)), Vec::<u32>::new());
        let woken = l.tick(t(2_000));
        assert_eq!(woken, vec![1]);
        assert_eq!(l.tick(t(2_500)), vec![2]);
    }

    #[test]
    #[should_panic(expected = "burst capacity")]
    fn limiter_rejects_oversized_request() {
        let mut l = RateLimiter::new(1.0, 1.0);
        l.acquire(t(0), 0, 2.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn limiter_rejects_bad_rate() {
        RateLimiter::new(0.0, 1.0);
    }
}
