//! The METHCOMP-style columnar compressor.
//!
//! Following Peng et al., the (sorted) records are decomposed into
//! per-field streams, each coded with a model matched to its
//! distribution, all multiplexed over one adaptive range coder:
//!
//! | field       | model |
//! |-------------|-------|
//! | chromosome  | change bit + id byte (runs are nearly free) |
//! | start       | zigzag delta from the previous start, adaptive width |
//! | width       | `end - start - 1`, adaptive width (almost always 0) |
//! | strand      | one bit, conditioned on the previous strand (captures +/- pairing) |
//! | coverage    | adaptive integer model |
//! | methylation | byte model conditioned on the previous level's band (captures island structure) |
//!
//! Derived bedMethyl columns (`name`, `score`, `thickStart`, `thickEnd`,
//! `itemRgb`) are recomputed on decode, so the canonical text
//! round-trips exactly. The compressor does not require sorted input
//! (deltas are signed), but sorted input is what makes it effective —
//! which is precisely why the pipeline's sort stage exists.

use faaspipe_codec::checksum::Crc32;
use faaspipe_codec::range::{BitModel, ByteModel, RangeDecoder, RangeEncoder, UIntModel};
use faaspipe_codec::{varint, CodecError};

use crate::bed::{Dataset, MethRecord, Strand, CHROM_NAMES};

const MAGIC: &[u8; 4] = b"MC01";
/// Sanity bound on declared record counts (decompression-bomb guard).
const MAX_RECORDS: u64 = 1 << 33;

fn meth_band(pct: u8) -> usize {
    match pct {
        0..=19 => 0,
        20..=69 => 1,
        _ => 2,
    }
}

fn digest_record(crc: &mut Crc32, r: &MethRecord) {
    crc.update(&[r.chrom]);
    crc.update(&r.start.to_le_bytes());
    crc.update(&r.end.to_le_bytes());
    crc.update(&[r.strand.as_char() as u8]);
    crc.update(&r.coverage.to_le_bytes());
    crc.update(&[r.meth_pct]);
}

struct Models {
    chrom_change: BitModel,
    chrom_id: ByteModel,
    delta: UIntModel,
    width: UIntModel,
    strand: [BitModel; 2],
    coverage: UIntModel,
    meth: [ByteModel; 3],
}

impl Models {
    fn new() -> Models {
        Models {
            chrom_change: BitModel::new(),
            chrom_id: ByteModel::new(),
            delta: UIntModel::new(),
            width: UIntModel::new(),
            strand: [BitModel::new(), BitModel::new()],
            coverage: UIntModel::new(),
            meth: [ByteModel::new(), ByteModel::new(), ByteModel::new()],
        }
    }
}

/// Compresses a dataset into a METHCOMP archive.
pub fn compress(dataset: &Dataset) -> Vec<u8> {
    let mut out = Vec::with_capacity(dataset.len() / 2 + 64);
    out.extend_from_slice(MAGIC);
    varint::write_u64(&mut out, dataset.len() as u64);

    let mut enc = RangeEncoder::new();
    let mut m = Models::new();
    let mut crc = Crc32::new();
    let mut prev_chrom: u8 = 0;
    let mut prev_start: u64 = 0;
    let mut prev_strand = Strand::Plus;
    let mut prev_meth: u8 = 80;
    for r in &dataset.records {
        digest_record(&mut crc, r);
        let changed = r.chrom != prev_chrom;
        enc.encode_bit(&mut m.chrom_change, changed);
        if changed {
            m.chrom_id.encode(&mut enc, r.chrom);
            prev_start = 0;
        }
        let delta = r.start as i64 - prev_start as i64;
        m.delta.encode(&mut enc, varint::zigzag(delta));
        m.width.encode(&mut enc, r.end - r.start - 1);
        let sctx = (prev_strand == Strand::Minus) as usize;
        enc.encode_bit(&mut m.strand[sctx], r.strand == Strand::Minus);
        m.coverage.encode(&mut enc, r.coverage as u64);
        m.meth[meth_band(prev_meth)].encode(&mut enc, r.meth_pct);
        prev_chrom = r.chrom;
        prev_start = r.start;
        prev_strand = r.strand;
        prev_meth = r.meth_pct;
    }
    out.extend_from_slice(&enc.finish());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out
}

/// Decompresses a METHCOMP archive.
///
/// # Errors
/// [`CodecError`] on bad magic, truncation, invalid field values, or
/// checksum mismatch.
pub fn decompress(input: &[u8]) -> Result<Dataset, CodecError> {
    if input.len() < 4 || &input[..4] != MAGIC {
        return Err(CodecError::BadHeader {
            what: "methcomp magic",
        });
    }
    let (count, used) = varint::read_u64(&input[4..])?;
    if count > MAX_RECORDS {
        return Err(CodecError::LengthOverflow { declared: count });
    }
    let body_start = 4 + used;
    if input.len() < body_start + 4 {
        return Err(CodecError::UnexpectedEof);
    }
    let (body, trailer) = input[body_start..].split_at(input.len() - body_start - 4);
    let stored_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);

    let mut records = Vec::with_capacity(count as usize);
    if count > 0 {
        let mut dec = RangeDecoder::new(body)?;
        let mut m = Models::new();
        let mut prev_chrom: u8 = 0;
        let mut prev_start: u64 = 0;
        let mut prev_strand = Strand::Plus;
        let mut prev_meth: u8 = 80;
        for _ in 0..count {
            let changed = dec.decode_bit(&mut m.chrom_change)?;
            let chrom = if changed {
                let c = m.chrom_id.decode(&mut dec)?;
                if c as usize >= CHROM_NAMES.len() {
                    return Err(CodecError::BadSymbol { value: c as u64 });
                }
                prev_start = 0;
                c
            } else {
                prev_chrom
            };
            let delta = varint::unzigzag(m.delta.decode(&mut dec)?);
            let start = prev_start as i64 + delta;
            if start < 0 {
                return Err(CodecError::BadSymbol {
                    value: delta as u64,
                });
            }
            let start = start as u64;
            let width = m.width.decode(&mut dec)?;
            let end = start
                .checked_add(width + 1)
                .ok_or(CodecError::LengthOverflow { declared: width })?;
            let sctx = (prev_strand == Strand::Minus) as usize;
            let strand = if dec.decode_bit(&mut m.strand[sctx])? {
                Strand::Minus
            } else {
                Strand::Plus
            };
            let coverage = m.coverage.decode(&mut dec)?;
            if coverage > u32::MAX as u64 {
                return Err(CodecError::LengthOverflow { declared: coverage });
            }
            let meth_pct = m.meth[meth_band(prev_meth)].decode(&mut dec)?;
            if meth_pct > 100 {
                return Err(CodecError::BadSymbol {
                    value: meth_pct as u64,
                });
            }
            let record = MethRecord {
                chrom,
                start,
                end,
                strand,
                coverage: coverage as u32,
                meth_pct,
            };
            prev_chrom = chrom;
            prev_start = start;
            prev_strand = strand;
            prev_meth = meth_pct;
            records.push(record);
        }
    }
    let mut crc = Crc32::new();
    for r in &records {
        digest_record(&mut crc, r);
    }
    let actual = crc.finish();
    if actual != stored_crc {
        return Err(CodecError::ChecksumMismatch {
            expected: stored_crc,
            actual,
        });
    }
    Ok(Dataset::new(records))
}

/// Merges several archives of *sorted* datasets into one archive of the
/// globally sorted union (k-way merge by the canonical sort key).
///
/// This is how a consumer folds the pipeline's per-run archives into a
/// single file without re-sorting from scratch.
///
/// # Errors
/// [`CodecError`] if any input archive is invalid.
pub fn merge_archives(archives: &[&[u8]]) -> Result<Vec<u8>, CodecError> {
    let mut datasets = Vec::with_capacity(archives.len());
    for a in archives {
        datasets.push(decompress(a)?);
    }
    let total: usize = datasets.iter().map(Dataset::len).sum();
    let mut cursors = vec![0usize; datasets.len()];
    let mut merged = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, ds) in datasets.iter().enumerate() {
            if cursors[i] >= ds.len() {
                continue;
            }
            let candidate = &ds.records[cursors[i]];
            best = match best {
                None => Some(i),
                Some(b) if candidate.sort_key() < datasets[b].records[cursors[b]].sort_key() => {
                    Some(i)
                }
                other => other,
            };
        }
        match best {
            None => break,
            Some(i) => {
                merged.push(datasets[i].records[cursors[i]]);
                cursors[i] += 1;
            }
        }
    }
    Ok(compress(&Dataset::new(merged)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Synthesizer;

    #[test]
    fn empty_dataset_round_trips() {
        let ds = Dataset::default();
        let packed = compress(&ds);
        assert_eq!(decompress(&packed).expect("empty"), ds);
    }

    #[test]
    fn synthetic_round_trip() {
        let ds = Synthesizer::new(11).generate_records(20_000);
        let packed = compress(&ds);
        let got = decompress(&packed).expect("round trip");
        assert_eq!(got, ds);
        // Canonical text round-trips through the archive too.
        assert_eq!(got.to_text(), ds.to_text());
    }

    #[test]
    fn unsorted_input_still_round_trips() {
        let ds = Synthesizer::new(12).generate_shuffled(5_000);
        let packed = compress(&ds);
        assert_eq!(decompress(&packed).expect("round trip"), ds);
    }

    #[test]
    fn sorted_compresses_much_better_than_unsorted() {
        let sorted = Synthesizer::new(13).generate_records(20_000);
        let shuffled = Synthesizer::new(13).generate_shuffled(20_000);
        let a = compress(&sorted).len();
        let b = compress(&shuffled).len();
        assert!(
            (a as f64) < 0.65 * b as f64,
            "sorted {} should be well under shuffled {}",
            a,
            b
        );
    }

    #[test]
    fn compression_ratio_beats_10x_on_text() {
        let ds = Synthesizer::new(14).generate_records(50_000);
        let text = ds.to_text();
        let packed = compress(&ds);
        let ratio = text.len() as f64 / packed.len() as f64;
        assert!(ratio > 10.0, "methcomp ratio {:.1}x", ratio);
    }

    #[test]
    fn beats_gzipish_by_large_factor() {
        let ds = Synthesizer::new(15).generate_records(50_000);
        let text = ds.to_text();
        let gz = faaspipe_codec::gzipish::compress(text.as_bytes());
        let mc = compress(&ds);
        let advantage = gz.len() as f64 / mc.len() as f64;
        assert!(
            advantage > 4.0,
            "expected methcomp << gzipish, got {:.1}x ({} vs {})",
            advantage,
            mc.len(),
            gz.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let ds = Synthesizer::new(16).generate_records(100);
        let mut packed = compress(&ds);
        packed[0] = b'X';
        assert!(matches!(
            decompress(&packed),
            Err(CodecError::BadHeader { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let ds = Synthesizer::new(17).generate_records(1_000);
        let packed = compress(&ds);
        for cut in [3usize, 6, packed.len() / 2] {
            assert!(decompress(&packed[..cut]).is_err(), "cut {}", cut);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let ds = Synthesizer::new(18).generate_records(2_000);
        let packed = compress(&ds);
        let mut corrupt = packed.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        // Either a structural error or a checksum mismatch — never a
        // silent wrong answer.
        match decompress(&corrupt) {
            Err(_) => {}
            Ok(got) => assert_ne!(got, ds, "corruption must not round-trip"),
        }
    }

    #[test]
    fn bomb_guard_on_record_count() {
        let mut packed = Vec::new();
        packed.extend_from_slice(MAGIC);
        varint::write_u64(&mut packed, u64::MAX / 2);
        packed.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decompress(&packed),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn single_record_round_trip() {
        let ds = Dataset::new(vec![MethRecord {
            chrom: 5,
            start: 123_456_789,
            end: 123_456_790,
            strand: Strand::Minus,
            coverage: 1_000_000,
            meth_pct: 100,
        }]);
        let packed = compress(&ds);
        assert_eq!(decompress(&packed).expect("round trip"), ds);
    }

    #[test]
    fn merge_archives_produces_the_global_sort() {
        let full = Synthesizer::new(19).generate_records(6_000);
        // Split round-robin so each piece is itself sorted but interleaved.
        let mut pieces: Vec<Dataset> = (0..3).map(|_| Dataset::default()).collect();
        for (i, r) in full.records.iter().enumerate() {
            pieces[i % 3].records.push(*r);
        }
        let archives: Vec<Vec<u8>> = pieces.iter().map(compress).collect();
        let refs: Vec<&[u8]> = archives.iter().map(Vec::as_slice).collect();
        let merged = merge_archives(&refs).expect("merge");
        let decoded = decompress(&merged).expect("decode");
        assert_eq!(decoded, full, "merge must reproduce the global order");
        // And the merged archive is about as tight as compressing whole.
        let direct = compress(&full);
        assert!(merged.len() <= direct.len() + direct.len() / 20);
    }

    #[test]
    fn merge_rejects_corrupt_member() {
        let ds = Synthesizer::new(20).generate_records(100);
        let good = compress(&ds);
        let bad = b"MCxx not an archive".to_vec();
        assert!(merge_archives(&[&good, &bad]).is_err());
        // Merging nothing yields an empty archive.
        let empty = merge_archives(&[]).expect("empty merge");
        assert_eq!(decompress(&empty).expect("decode"), Dataset::default());
    }

    #[test]
    fn all_chromosomes_round_trip() {
        let records: Vec<MethRecord> = (0..24u8)
            .map(|c| MethRecord {
                chrom: c,
                start: 1000 + c as u64,
                end: 1001 + c as u64,
                strand: Strand::Plus,
                coverage: 7,
                meth_pct: 50,
            })
            .collect();
        let ds = Dataset::new(records);
        let packed = compress(&ds);
        assert_eq!(decompress(&packed).expect("round trip"), ds);
    }
}
