//! Indexed METHCOMP archives with random access by genomic region.
//!
//! The plain archive ([`crate::codec`]) must be decoded front to back.
//! For consumers that want *one gene, not one genome*, this module packs
//! records into independently compressed blocks (fixed record count,
//! never spanning chromosomes) behind a small footer index mapping
//! `(chrom, start-range)` to byte extents. A region query decodes only
//! the touched blocks — and pairs naturally with object-storage range
//! GETs, the same access pattern the shuffle's coalesced exchange uses.
//!
//! Layout:
//!
//! ```text
//! magic "MX01" | blocks... | index JSON | varint index_len | crc32(index)
//! ```
//!
//! (The index sits at the tail so writers stream blocks out first; readers
//! fetch the fixed-size trailer, then the index, then only the blocks
//! they need.)

use faaspipe_codec::checksum::crc32;
use faaspipe_codec::{varint, CodecError};

use crate::bed::{Dataset, MethRecord};
use crate::codec;

const MAGIC: &[u8; 4] = b"MX01";
/// Records per block (a few thousand keeps blocks ~10 KiB compressed).
pub const DEFAULT_BLOCK_RECORDS: usize = 4_096;

/// One block's entry in the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Chromosome id all the block's records share.
    pub chrom: u8,
    /// Smallest start coordinate in the block.
    pub min_start: u64,
    /// Largest start coordinate in the block.
    pub max_start: u64,
    /// Records in the block.
    pub records: u64,
    /// Byte offset of the block within the archive.
    pub offset: u64,
    /// Byte length of the block.
    pub len: u64,
}

/// The footer index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveIndex {
    /// Total records in the archive.
    pub total_records: u64,
    /// Blocks in genome order.
    pub blocks: Vec<BlockInfo>,
}

faaspipe_json::json_object! {
    BlockInfo { req chrom, req min_start, req max_start, req records, req offset, req len }
}
faaspipe_json::json_object! { ArchiveIndex { req total_records, req blocks } }

/// Compresses a **sorted** dataset into an indexed archive.
///
/// # Errors
/// [`CodecError::BadHeader`] if the dataset is not sorted (block ranges
/// would be meaningless).
pub fn compress_indexed(dataset: &Dataset, block_records: usize) -> Result<Vec<u8>, CodecError> {
    if !dataset.is_sorted() {
        return Err(CodecError::BadHeader {
            what: "unsorted dataset for indexed archive",
        });
    }
    let block_records = block_records.max(1);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while i < dataset.records.len() {
        let chrom = dataset.records[i].chrom;
        // A block never spans chromosomes and holds at most block_records.
        let mut j = i;
        while j < dataset.records.len()
            && j - i < block_records
            && dataset.records[j].chrom == chrom
        {
            j += 1;
        }
        let slice = Dataset::new(dataset.records[i..j].to_vec());
        let packed = codec::compress(&slice);
        blocks.push(BlockInfo {
            chrom,
            min_start: dataset.records[i].start,
            max_start: dataset.records[j - 1].start,
            records: (j - i) as u64,
            offset: out.len() as u64,
            len: packed.len() as u64,
        });
        out.extend_from_slice(&packed);
        i = j;
    }
    let index = ArchiveIndex {
        total_records: dataset.len() as u64,
        blocks,
    };
    let index_json = faaspipe_json::to_vec(&index);
    let index_crc = crc32(&index_json);
    out.extend_from_slice(&index_json);
    let mut trailer = Vec::new();
    varint::write_u64(&mut trailer, index_json.len() as u64);
    out.extend_from_slice(&trailer);
    out.push(trailer.len() as u8);
    out.extend_from_slice(&index_crc.to_le_bytes());
    Ok(out)
}

/// Reads the footer index of an indexed archive.
///
/// # Errors
/// [`CodecError`] on bad magic, truncation, or index corruption.
pub fn read_index(archive: &[u8]) -> Result<ArchiveIndex, CodecError> {
    if archive.len() < 9 || &archive[..4] != MAGIC {
        return Err(CodecError::BadHeader {
            what: "indexed archive magic",
        });
    }
    let crc_start = archive.len() - 4;
    let stored_crc = u32::from_le_bytes(archive[crc_start..].try_into().expect("4 bytes"));
    let varlen = archive[crc_start - 1] as usize;
    if varlen == 0 || crc_start < 1 + varlen {
        return Err(CodecError::BadHeader {
            what: "indexed archive trailer",
        });
    }
    let var_start = crc_start - 1 - varlen;
    let (index_len, _) = varint::read_u64(&archive[var_start..crc_start - 1])?;
    let index_start = var_start
        .checked_sub(index_len as usize)
        .ok_or(CodecError::UnexpectedEof)?;
    let index_json = &archive[index_start..var_start];
    let actual = crc32(index_json);
    if actual != stored_crc {
        return Err(CodecError::ChecksumMismatch {
            expected: stored_crc,
            actual,
        });
    }
    faaspipe_json::from_slice(index_json).map_err(|_| CodecError::BadHeader {
        what: "indexed archive index",
    })
}

/// Decodes the whole indexed archive.
///
/// # Errors
/// [`CodecError`] on any structural problem.
pub fn decompress_indexed(archive: &[u8]) -> Result<Dataset, CodecError> {
    let index = read_index(archive)?;
    let mut records = Vec::with_capacity(index.total_records as usize);
    for b in &index.blocks {
        records.extend(decode_block(archive, b)?.records);
    }
    Ok(Dataset::new(records))
}

fn decode_block(archive: &[u8], b: &BlockInfo) -> Result<Dataset, CodecError> {
    let start = b.offset as usize;
    let end = start
        .checked_add(b.len as usize)
        .filter(|&e| e <= archive.len())
        .ok_or(CodecError::UnexpectedEof)?;
    codec::decompress(&archive[start..end])
}

/// Returns the records overlapping `[start, end)` on chromosome `chrom`,
/// decoding only the blocks whose ranges intersect the query.
///
/// Also returns how many blocks were decoded (so callers — and tests —
/// can see the selectivity win).
///
/// # Errors
/// [`CodecError`] on any structural problem.
pub fn query_region(
    archive: &[u8],
    chrom: u8,
    start: u64,
    end: u64,
) -> Result<(Vec<MethRecord>, usize), CodecError> {
    let index = read_index(archive)?;
    let mut hits = Vec::new();
    let mut decoded = 0usize;
    for b in &index.blocks {
        if b.chrom != chrom || b.max_start < start || b.min_start >= end {
            continue;
        }
        decoded += 1;
        for r in decode_block(archive, b)?.records {
            if r.chrom == chrom && r.start >= start && r.start < end {
                hits.push(r);
            }
        }
    }
    Ok((hits, decoded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Synthesizer;

    fn sorted_dataset(n: usize) -> Dataset {
        Synthesizer::new(51).generate_records(n)
    }

    #[test]
    fn indexed_round_trip() {
        let ds = sorted_dataset(20_000);
        let archive = compress_indexed(&ds, 1_000).expect("compress");
        let back = decompress_indexed(&archive).expect("decompress");
        assert_eq!(back, ds);
    }

    #[test]
    fn unsorted_input_rejected() {
        let mut ds = Synthesizer::new(52).generate_shuffled(1_000);
        assert!(compress_indexed(&ds, 100).is_err());
        ds.sort();
        compress_indexed(&ds, 100).expect("sorted is fine");
    }

    #[test]
    fn blocks_never_span_chromosomes() {
        let ds = sorted_dataset(30_000);
        let archive = compress_indexed(&ds, 512).expect("compress");
        let index = read_index(&archive).expect("index");
        for b in &index.blocks {
            assert!(b.records <= 512);
            assert!(b.min_start <= b.max_start);
        }
        // Blocks are in genome order and tile the archive contiguously.
        for pair in index.blocks.windows(2) {
            assert!((pair[0].chrom, pair[0].min_start) <= (pair[1].chrom, pair[1].min_start));
            assert_eq!(pair[0].offset + pair[0].len, pair[1].offset);
        }
        assert_eq!(index.total_records, 30_000);
    }

    #[test]
    fn region_query_matches_linear_scan_and_is_selective() {
        let ds = sorted_dataset(40_000);
        let archive = compress_indexed(&ds, 1_000).expect("compress");
        let index = read_index(&archive).expect("index");
        // Query a window on chr2 (id 1).
        let (lo, hi) = (2_000_000u64, 4_000_000u64);
        let (hits, decoded) = query_region(&archive, 1, lo, hi).expect("query");
        let expect: Vec<MethRecord> = ds
            .records
            .iter()
            .filter(|r| r.chrom == 1 && r.start >= lo && r.start < hi)
            .copied()
            .collect();
        assert_eq!(hits, expect);
        assert!(
            decoded * 4 < index.blocks.len(),
            "query decoded {}/{} blocks — index must be selective",
            decoded,
            index.blocks.len()
        );
    }

    #[test]
    fn empty_region_decodes_nothing() {
        let ds = sorted_dataset(5_000);
        let archive = compress_indexed(&ds, 500).expect("compress");
        // chrY exists, but position 0..5 holds no CpGs (synth starts at 10k).
        let (hits, decoded) = query_region(&archive, 23, 0, 5).expect("query");
        assert!(hits.is_empty());
        assert_eq!(decoded, 0);
    }

    #[test]
    fn corrupt_index_is_detected() {
        let ds = sorted_dataset(2_000);
        let mut archive = compress_indexed(&ds, 500).expect("compress");
        let n = archive.len();
        archive[n - 20] ^= 0x01; // inside the index JSON
        assert!(read_index(&archive).is_err());
        // Bad magic.
        archive[0] = b'Z';
        assert!(matches!(
            read_index(&archive),
            Err(CodecError::BadHeader { .. })
        ));
    }

    #[test]
    fn indexed_overhead_is_small() {
        let ds = sorted_dataset(30_000);
        let plain = codec::compress(&ds);
        let indexed = compress_indexed(&ds, DEFAULT_BLOCK_RECORDS).expect("compress");
        assert!(
            (indexed.len() as f64) < plain.len() as f64 * 1.25,
            "index + per-block reset overhead must stay modest: {} vs {}",
            indexed.len(),
            plain.len()
        );
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = Dataset::default();
        let archive = compress_indexed(&ds, 100).expect("compress");
        assert_eq!(decompress_indexed(&archive).expect("decompress"), ds);
        let (hits, decoded) = query_region(&archive, 0, 0, u64::MAX).expect("query");
        assert!(hits.is_empty());
        assert_eq!(decoded, 0);
    }
}
