//! # faaspipe-methcomp — DNA-methylation data model, synthesizer, and codec
//!
//! Reproduction of the METHCOMP special-purpose compressor (Peng,
//! Milenkovic, Ochoa — *Bioinformatics* 2018) that the paper's genomics
//! pipeline runs: a **sort** stage over whole-genome bisulfite-sequencing
//! (WGBS) records in bedMethyl format, followed by an embarrassingly
//! parallel **encode** stage that exploits per-field redundancy of the
//! sorted records.
//!
//! Three pieces:
//!
//! * [`bed`] — the bedMethyl record model with lossless text parsing and
//!   canonical serialization (ENCODE's 11-column layout);
//! * [`synth`] — a statistical WGBS generator standing in for the paper's
//!   3.5 GB ENCODE sample ENCFF988BSW (see DESIGN.md for the
//!   substitution rationale);
//! * [`codec`] — the METHCOMP-style columnar compressor: position deltas,
//!   interval widths, strands, coverage and methylation levels each coded
//!   with adaptive range-coder models, ~an order of magnitude tighter
//!   than the LZ77+Huffman baseline on this data;
//! * [`index`] — indexed archives with per-chromosome blocks and random
//!   access by genomic region (pairs with object-store range GETs).
//!
//! ## Example
//!
//! ```
//! use faaspipe_methcomp::synth::Synthesizer;
//! use faaspipe_methcomp::codec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = Synthesizer::new(7).generate_records(5_000);
//! let packed = codec::compress(&dataset);
//! let unpacked = codec::decompress(&packed)?;
//! assert_eq!(unpacked, dataset);
//! # Ok(())
//! # }
//! ```

pub mod bed;
pub mod codec;
pub mod index;
pub mod stats;
pub mod synth;

pub use bed::{BedError, Dataset, MethRecord, Strand, CHROM_NAMES};
