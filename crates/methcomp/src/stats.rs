//! Dataset summary statistics (used by reports, tests, and EXPERIMENTS.md).

use crate::bed::Dataset;

/// Summary of a bedMethyl dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Record count.
    pub records: usize,
    /// Serialized text size in bytes.
    pub text_bytes: usize,
    /// Mean read coverage.
    pub mean_coverage: f64,
    /// Fraction of records with methylation > 50%.
    pub methylated_fraction: f64,
    /// Number of distinct chromosomes present.
    pub chromosomes: usize,
}

impl DatasetStats {
    /// Computes statistics for `dataset`.
    pub fn of(dataset: &Dataset) -> DatasetStats {
        let n = dataset.len();
        let mut coverage_sum = 0u64;
        let mut methylated = 0usize;
        let mut chroms = [false; 24];
        let mut text_bytes = 0usize;
        for r in &dataset.records {
            coverage_sum += r.coverage as u64;
            if r.meth_pct > 50 {
                methylated += 1;
            }
            chroms[r.chrom as usize] = true;
            text_bytes += r.to_line().len() + 1;
        }
        DatasetStats {
            records: n,
            text_bytes,
            mean_coverage: if n == 0 {
                0.0
            } else {
                coverage_sum as f64 / n as f64
            },
            methylated_fraction: if n == 0 {
                0.0
            } else {
                methylated as f64 / n as f64
            },
            chromosomes: chroms.iter().filter(|&&c| c).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Synthesizer;

    #[test]
    fn empty_dataset_stats() {
        let s = DatasetStats::of(&Dataset::default());
        assert_eq!(s.records, 0);
        assert_eq!(s.text_bytes, 0);
        assert_eq!(s.mean_coverage, 0.0);
        assert_eq!(s.chromosomes, 0);
    }

    #[test]
    fn synthetic_stats_are_plausible() {
        let ds = Synthesizer::new(9).generate_records(30_000);
        let s = DatasetStats::of(&ds);
        assert_eq!(s.records, 30_000);
        assert_eq!(s.text_bytes, ds.to_text().len());
        assert!((20.0..40.0).contains(&s.mean_coverage));
        assert!(s.methylated_fraction > 0.5, "WGBS is mostly methylated");
        assert!(s.chromosomes >= 20);
    }
}
