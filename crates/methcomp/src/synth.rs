//! Statistical WGBS bedMethyl synthesizer.
//!
//! Stands in for the paper's 3.5 GB ENCODE sample (ENCFF988BSW). The
//! generator reproduces the dataset properties the pipeline and the codec
//! are sensitive to:
//!
//! * CpG sites are sparse and *clustered*: long inter-site gaps punctuated
//!   by dense CpG islands (mixture of geometric gap distributions);
//! * each CpG yields calls on both strands at adjacent coordinates;
//! * coverage is over-dispersed around ~30× (Poisson-Gamma);
//! * methylation is strongly bimodal — islands hypomethylated, open sea
//!   hypermethylated;
//! * chromosome sizes follow hg38 proportions.
//!
//! Generation is deterministic per seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[cfg(test)]
use crate::bed::CHROM_NAMES;
use crate::bed::{Dataset, MethRecord, Strand};

/// Approximate hg38 chromosome lengths in megabases, same order as
/// [`CHROM_NAMES`].
const CHROM_MB: [u32; 24] = [
    249, 242, 198, 190, 182, 171, 159, 145, 138, 134, 135, 133, 114, 107, 102, 90, 83, 80, 59, 64,
    47, 51, 156, 57,
];

/// Average serialized bytes per bedMethyl record (used to size datasets by
/// target bytes). Measured on synthetic output; see tests.
pub const APPROX_BYTES_PER_RECORD: usize = 52;

/// Deterministic WGBS dataset generator.
#[derive(Debug)]
pub struct Synthesizer {
    rng: SmallRng,
    /// Mean read coverage.
    pub mean_coverage: f64,
    /// Fraction of CpGs inside hypomethylated islands.
    pub island_fraction: f64,
}

impl Synthesizer {
    /// Creates a generator with the given seed and default WGBS
    /// statistics.
    pub fn new(seed: u64) -> Synthesizer {
        Synthesizer {
            rng: SmallRng::seed_from_u64(seed),
            mean_coverage: 30.0,
            island_fraction: 0.22,
        }
    }

    /// Geometric gap with the given mean (>= 2, CpGs cannot overlap).
    fn gap(&mut self, mean: f64) -> u64 {
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        2 + (-u.ln() * mean) as u64
    }

    /// Over-dispersed coverage: Gamma-mixed Poisson approximated by a
    /// scaled exponential mixture (cheap, right shape).
    fn coverage(&mut self) -> u32 {
        let base = self.mean_coverage;
        let dispersion: f64 = 0.35;
        let gamma = 1.0 + dispersion * (self.rng.gen::<f64>() - 0.5) * 2.0;
        let lambda = (base * gamma).max(1.0);
        // Poisson via normal approximation (lambda ~ 30).
        let (u1, u2): (f64, f64) = (self.rng.gen::<f64>().max(1e-12), self.rng.gen());
        let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + normal * lambda.sqrt()).round().max(1.0) as u32
    }

    /// Bimodal methylation percentage.
    fn meth_pct(&mut self, in_island: bool) -> u8 {
        let (center, spread) = if in_island { (4.0, 6.0) } else { (88.0, 9.0) };
        let (u1, u2): (f64, f64) = (self.rng.gen::<f64>().max(1e-12), self.rng.gen());
        let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (center + normal * spread).round().clamp(0.0, 100.0) as u8
    }

    /// Generates `n` records in genome order (sorted).
    pub fn generate_records(&mut self, n: usize) -> Dataset {
        let total_mb: u64 = CHROM_MB.iter().map(|&m| m as u64).sum();
        let mut records = Vec::with_capacity(n);
        // Allocate record counts per chromosome proportional to length.
        for (ci, &mb) in CHROM_MB.iter().enumerate() {
            let share = ((n as u64 * mb as u64) / total_mb) as usize;
            let quota = if ci == CHROM_MB.len() - 1 {
                n - records.len()
            } else {
                share.min(n - records.len())
            };
            self.fill_chrom(ci as u8, quota, &mut records);
            if records.len() >= n {
                break;
            }
        }
        Dataset::new(records)
    }

    fn fill_chrom(&mut self, chrom: u8, quota: usize, out: &mut Vec<MethRecord>) {
        let mut pos: u64 = 10_000;
        let mut emitted = 0usize;
        let mut in_island = false;
        let mut island_left = 0usize;
        while emitted < quota {
            if island_left == 0 {
                in_island = self.rng.gen::<f64>() < self.island_fraction;
                island_left = if in_island {
                    20 + (self.rng.gen::<f64>() * 60.0) as usize
                } else {
                    40 + (self.rng.gen::<f64>() * 200.0) as usize
                };
            }
            island_left -= 1;
            let mean_gap = if in_island { 18.0 } else { 350.0 };
            pos += self.gap(mean_gap);
            // A CpG yields a + call and, usually, the paired - call at the
            // next base.
            let meth = self.meth_pct(in_island);
            out.push(MethRecord {
                chrom,
                start: pos,
                end: pos + 1,
                strand: Strand::Plus,
                coverage: self.coverage(),
                meth_pct: meth,
            });
            emitted += 1;
            if emitted < quota && self.rng.gen::<f64>() < 0.92 {
                // Paired call: similar but not identical methylation.
                let jitter = (self.rng.gen::<f64>() * 10.0 - 5.0) as i32;
                let pct = (meth as i32 + jitter).clamp(0, 100) as u8;
                out.push(MethRecord {
                    chrom,
                    start: pos + 1,
                    end: pos + 2,
                    strand: Strand::Minus,
                    coverage: self.coverage(),
                    meth_pct: pct,
                });
                emitted += 1;
            }
        }
    }

    /// Generates roughly `target_bytes` of serialized bedMethyl text.
    pub fn generate_bytes(&mut self, target_bytes: usize) -> Dataset {
        self.generate_records(target_bytes / APPROX_BYTES_PER_RECORD)
    }

    /// Generates `n` records and then deterministically shuffles them —
    /// the pipeline input shape (unsorted calls straight from the caller).
    pub fn generate_shuffled(&mut self, n: usize) -> Dataset {
        let mut ds = self.generate_records(n);
        // Fisher-Yates with the generator's own rng.
        for i in (1..ds.records.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            ds.records.swap(i, j);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Synthesizer::new(42).generate_records(2_000);
        let b = Synthesizer::new(42).generate_records(2_000);
        let c = Synthesizer::new(43).generate_records(2_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generates_requested_count_sorted() {
        let ds = Synthesizer::new(1).generate_records(10_000);
        assert_eq!(ds.len(), 10_000);
        assert!(ds.is_sorted());
    }

    #[test]
    fn records_are_valid_bed() {
        let ds = Synthesizer::new(2).generate_records(3_000);
        let text = ds.to_text();
        let parsed = Dataset::from_text(&text).expect("valid BED");
        assert_eq!(parsed, ds);
    }

    #[test]
    fn coverage_is_realistic() {
        let ds = Synthesizer::new(3).generate_records(20_000);
        let mean: f64 = ds.records.iter().map(|r| r.coverage as f64).sum::<f64>() / ds.len() as f64;
        assert!((20.0..40.0).contains(&mean), "mean coverage {}", mean);
        assert!(ds.records.iter().all(|r| r.coverage >= 1));
    }

    #[test]
    fn methylation_is_bimodal() {
        let ds = Synthesizer::new(4).generate_records(20_000);
        let low = ds.records.iter().filter(|r| r.meth_pct < 20).count();
        let high = ds.records.iter().filter(|r| r.meth_pct > 70).count();
        let mid = ds.len() - low - high;
        assert!(low > ds.len() / 20, "hypomethylated mass: {}", low);
        assert!(high > ds.len() / 2, "hypermethylated mass: {}", high);
        assert!(mid < ds.len() / 4, "valley in the middle: {}", mid);
    }

    #[test]
    fn chromosomes_follow_length_proportions() {
        let ds = Synthesizer::new(5).generate_records(50_000);
        let chr1 = ds.records.iter().filter(|r| r.chrom == 0).count();
        let chr21 = ds.records.iter().filter(|r| r.chrom == 20).count();
        assert!(chr1 > chr21 * 2, "chr1 {} vs chr21 {}", chr1, chr21);
        // All catalog chromosomes appear in a big sample.
        for c in 0..CHROM_NAMES.len() as u8 {
            assert!(
                ds.records.iter().any(|r| r.chrom == c),
                "missing chrom {}",
                c
            );
        }
    }

    #[test]
    fn bytes_per_record_estimate_close() {
        let mut synth = Synthesizer::new(6);
        let ds = synth.generate_records(5_000);
        let actual = ds.to_text().len() as f64 / ds.len() as f64;
        let est = APPROX_BYTES_PER_RECORD as f64;
        assert!(
            (actual - est).abs() / est < 0.15,
            "bytes/record {} vs estimate {}",
            actual,
            est
        );
    }

    #[test]
    fn generate_bytes_hits_target_roughly() {
        let ds = Synthesizer::new(7).generate_bytes(1_000_000);
        let actual = ds.to_text().len();
        assert!(
            (700_000..1_300_000).contains(&actual),
            "got {} bytes",
            actual
        );
    }

    #[test]
    fn shuffled_is_permutation_of_sorted() {
        let sorted = Synthesizer::new(8).generate_records(5_000);
        let mut shuffled = Synthesizer::new(8).generate_shuffled(5_000);
        assert_ne!(sorted, shuffled, "must actually shuffle");
        assert!(!shuffled.is_sorted());
        shuffled.sort();
        assert_eq!(shuffled, sorted);
    }
}
