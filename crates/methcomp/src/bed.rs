//! The bedMethyl record model.
//!
//! ENCODE WGBS methylation calls ship as 11-column BED ("bedMethyl"):
//!
//! ```text
//! chrom  start  end  name  score  strand  thickStart  thickEnd  itemRgb  coverage  methPct
//! ```
//!
//! Several columns are derived (`name` is always `.`, `score` is
//! `min(coverage, 1000)`, `thickStart`/`thickEnd` mirror the interval,
//! `itemRgb` encodes the methylation level) — redundancy a
//! special-purpose codec exploits and a byte-oriented one pays for.

use std::fmt;

/// Canonical chromosome order used for sort keys and compact ids
/// (hg38 autosomes + X, Y).
pub const CHROM_NAMES: [&str; 24] = [
    "chr1", "chr2", "chr3", "chr4", "chr5", "chr6", "chr7", "chr8", "chr9", "chr10", "chr11",
    "chr12", "chr13", "chr14", "chr15", "chr16", "chr17", "chr18", "chr19", "chr20", "chr21",
    "chr22", "chrX", "chrY",
];

/// Looks up a chromosome's compact id.
pub fn chrom_id(name: &str) -> Option<u8> {
    CHROM_NAMES.iter().position(|&c| c == name).map(|i| i as u8)
}

/// Read strand of a methylation call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strand {
    /// `+`
    Plus,
    /// `-`
    Minus,
}

impl Strand {
    /// The BED character for this strand.
    pub fn as_char(self) -> char {
        match self {
            Strand::Plus => '+',
            Strand::Minus => '-',
        }
    }
}

/// One methylation call (one CpG site on one strand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethRecord {
    /// Chromosome id (index into [`CHROM_NAMES`]).
    pub chrom: u8,
    /// 0-based start position.
    pub start: u64,
    /// End position (start + 1 for CpG calls).
    pub end: u64,
    /// Read strand.
    pub strand: Strand,
    /// Read coverage at this site.
    pub coverage: u32,
    /// Methylation percentage, 0..=100.
    pub meth_pct: u8,
}

impl MethRecord {
    /// The sort key the pipeline orders by.
    pub fn sort_key(&self) -> (u8, u64, u64, Strand) {
        (self.chrom, self.start, self.end, self.strand)
    }

    /// The derived `score` column: coverage capped at 1000.
    pub fn score(&self) -> u32 {
        self.coverage.min(1000)
    }

    /// The derived `itemRgb` column encoding the methylation level the way
    /// ENCODE tracks do (a green→red ramp).
    pub fn item_rgb(&self) -> String {
        let m = self.meth_pct as u32;
        let r = 255 * m / 100;
        let g = 255 * (100 - m) / 100;
        format!("{},{},0", r, g)
    }

    /// Serializes to one canonical bedMethyl text line (no newline).
    pub fn to_line(&self) -> String {
        let chrom = CHROM_NAMES[self.chrom as usize];
        format!(
            "{}\t{}\t{}\t.\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            chrom,
            self.start,
            self.end,
            self.score(),
            self.strand.as_char(),
            self.start,
            self.end,
            self.item_rgb(),
            self.coverage,
            self.meth_pct
        )
    }

    /// Parses one bedMethyl line.
    ///
    /// # Errors
    /// [`BedError`] describing the malformed column.
    pub fn parse_line(line: &str) -> Result<MethRecord, BedError> {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 11 {
            return Err(BedError::ColumnCount { found: cols.len() });
        }
        let chrom = chrom_id(cols[0]).ok_or_else(|| BedError::UnknownChrom {
            name: cols[0].to_string(),
        })?;
        let start: u64 = cols[1].parse().map_err(|_| BedError::BadField {
            column: "start",
            value: cols[1].to_string(),
        })?;
        let end: u64 = cols[2].parse().map_err(|_| BedError::BadField {
            column: "end",
            value: cols[2].to_string(),
        })?;
        if end <= start {
            return Err(BedError::BadInterval { start, end });
        }
        let strand = match cols[5] {
            "+" => Strand::Plus,
            "-" => Strand::Minus,
            other => {
                return Err(BedError::BadField {
                    column: "strand",
                    value: other.to_string(),
                })
            }
        };
        let coverage: u32 = cols[9].parse().map_err(|_| BedError::BadField {
            column: "coverage",
            value: cols[9].to_string(),
        })?;
        let meth_pct: u8 = cols[10].parse().map_err(|_| BedError::BadField {
            column: "methPct",
            value: cols[10].to_string(),
        })?;
        if meth_pct > 100 {
            return Err(BedError::BadField {
                column: "methPct",
                value: cols[10].to_string(),
            });
        }
        Ok(MethRecord {
            chrom,
            start,
            end,
            strand,
            coverage,
            meth_pct,
        })
    }
}

/// Errors from BED parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BedError {
    /// The line did not have 11 tab-separated columns.
    ColumnCount {
        /// Number of columns found.
        found: usize,
    },
    /// The chromosome is not in the canonical catalog.
    UnknownChrom {
        /// The unrecognized name.
        name: String,
    },
    /// A numeric or enum field failed to parse.
    BadField {
        /// Column name.
        column: &'static str,
        /// Offending text.
        value: String,
    },
    /// `end <= start`.
    BadInterval {
        /// Start coordinate.
        start: u64,
        /// End coordinate.
        end: u64,
    },
}

impl fmt::Display for BedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BedError::ColumnCount { found } => {
                write!(f, "expected 11 bedMethyl columns, found {}", found)
            }
            BedError::UnknownChrom { name } => write!(f, "unknown chromosome '{}'", name),
            BedError::BadField { column, value } => {
                write!(f, "invalid {} field '{}'", column, value)
            }
            BedError::BadInterval { start, end } => {
                write!(f, "invalid interval [{}, {})", start, end)
            }
        }
    }
}

impl std::error::Error for BedError {}

/// An in-memory bedMethyl dataset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dataset {
    /// The records, in file order.
    pub records: Vec<MethRecord>,
}

impl Dataset {
    /// Creates a dataset from records.
    pub fn new(records: Vec<MethRecord>) -> Dataset {
        Dataset { records }
    }

    /// Parses a whole bedMethyl text (one record per line; a trailing
    /// newline is tolerated).
    ///
    /// # Errors
    /// The first [`BedError`] encountered, annotated with nothing — the
    /// caller knows the source.
    pub fn from_text(text: &str) -> Result<Dataset, BedError> {
        let mut records = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            records.push(MethRecord::parse_line(line)?);
        }
        Ok(Dataset { records })
    }

    /// Serializes to canonical bedMethyl text (newline-terminated lines).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 64);
        for r in &self.records {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sorts records by the canonical pipeline key.
    pub fn sort(&mut self) {
        self.records.sort_unstable_by_key(|r| r.sort_key());
    }

    /// Whether records are sorted by the canonical key.
    pub fn is_sorted(&self) -> bool {
        self.records
            .windows(2)
            .all(|w| w[0].sort_key() <= w[1].sort_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MethRecord {
        MethRecord {
            chrom: 0,
            start: 10468,
            end: 10469,
            strand: Strand::Plus,
            coverage: 33,
            meth_pct: 87,
        }
    }

    #[test]
    fn line_round_trip() {
        let r = sample();
        let line = r.to_line();
        assert_eq!(
            line,
            "chr1\t10468\t10469\t.\t33\t+\t10468\t10469\t221,33,0\t33\t87"
        );
        assert_eq!(MethRecord::parse_line(&line).expect("parse"), r);
    }

    #[test]
    fn score_caps_at_1000() {
        let mut r = sample();
        r.coverage = 5000;
        assert_eq!(r.score(), 1000);
        let line = r.to_line();
        assert_eq!(MethRecord::parse_line(&line).expect("parse"), r);
    }

    #[test]
    fn item_rgb_ramp() {
        let mut r = sample();
        r.meth_pct = 0;
        assert_eq!(r.item_rgb(), "0,255,0");
        r.meth_pct = 100;
        assert_eq!(r.item_rgb(), "255,0,0");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(
            MethRecord::parse_line("chr1\t1\t2"),
            Err(BedError::ColumnCount { found: 3 })
        ));
        let line = "chrMT\t1\t2\t.\t5\t+\t1\t2\t0,0,0\t5\t50";
        assert!(matches!(
            MethRecord::parse_line(line),
            Err(BedError::UnknownChrom { .. })
        ));
        let line = "chr1\tx\t2\t.\t5\t+\t1\t2\t0,0,0\t5\t50";
        assert!(matches!(
            MethRecord::parse_line(line),
            Err(BedError::BadField {
                column: "start",
                ..
            })
        ));
        let line = "chr1\t5\t5\t.\t5\t+\t5\t5\t0,0,0\t5\t50";
        assert!(matches!(
            MethRecord::parse_line(line),
            Err(BedError::BadInterval { .. })
        ));
        let line = "chr1\t1\t2\t.\t5\t*\t1\t2\t0,0,0\t5\t50";
        assert!(matches!(
            MethRecord::parse_line(line),
            Err(BedError::BadField {
                column: "strand",
                ..
            })
        ));
        let line = "chr1\t1\t2\t.\t5\t+\t1\t2\t0,0,0\t5\t101";
        assert!(matches!(
            MethRecord::parse_line(line),
            Err(BedError::BadField {
                column: "methPct",
                ..
            })
        ));
    }

    #[test]
    fn dataset_text_round_trip() {
        let mut records = Vec::new();
        for i in 0..50u64 {
            records.push(MethRecord {
                chrom: (i % 3) as u8,
                start: 100 + i * 7,
                end: 101 + i * 7,
                strand: if i % 2 == 0 {
                    Strand::Plus
                } else {
                    Strand::Minus
                },
                coverage: (i % 60) as u32 + 1,
                meth_pct: (i % 101) as u8,
            });
        }
        let ds = Dataset::new(records);
        let text = ds.to_text();
        let parsed = Dataset::from_text(&text).expect("parse");
        assert_eq!(parsed, ds);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn sort_orders_by_chrom_then_position() {
        let mk = |chrom, start, strand| MethRecord {
            chrom,
            start,
            end: start + 1,
            strand,
            coverage: 1,
            meth_pct: 0,
        };
        let mut ds = Dataset::new(vec![
            mk(1, 5, Strand::Plus),
            mk(0, 9, Strand::Minus),
            mk(0, 9, Strand::Plus),
            mk(0, 2, Strand::Plus),
        ]);
        assert!(!ds.is_sorted());
        ds.sort();
        assert!(ds.is_sorted());
        let key: Vec<(u8, u64)> = ds.records.iter().map(|r| (r.chrom, r.start)).collect();
        assert_eq!(key, vec![(0, 2), (0, 9), (0, 9), (1, 5)]);
        // Plus strand sorts before minus at the same position.
        assert_eq!(ds.records[1].strand, Strand::Plus);
    }

    #[test]
    fn chrom_ids_cover_catalog() {
        assert_eq!(chrom_id("chr1"), Some(0));
        assert_eq!(chrom_id("chrY"), Some(23));
        assert_eq!(chrom_id("chrM"), None);
        for (i, name) in CHROM_NAMES.iter().enumerate() {
            assert_eq!(chrom_id(name), Some(i as u8));
        }
    }

    #[test]
    fn from_text_skips_blank_lines() {
        let r = sample();
        let text = format!("{}\n\n{}\n", r.to_line(), r.to_line());
        let ds = Dataset::from_text(&text).expect("parse");
        assert_eq!(ds.len(), 2);
    }
}
