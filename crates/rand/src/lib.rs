//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The workspace only needs deterministic, seedable pseudo-randomness for
//! the discrete-event simulation; bit-compatibility with the real `rand`
//! crate is explicitly *not* a goal (all seeds in the repo are our own).
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded via
//! splitmix64, which is small, fast, and deterministic across platforms.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over a type's natural domain
/// (full integer range, `[0, 1)` for floats).
pub struct Standard;

macro_rules! impl_standard_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled from, as accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire-style modulo (deterministic,
/// bias negligible for the span sizes used in the simulator).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = <Standard as Distribution<u128>>::sample(&Standard, rng);
    wide % span
}

macro_rules! impl_sample_range {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Trait for generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Re-export of the distribution module path used by `rand` 0.8.
pub mod distributions {
    pub use super::{Distribution, Standard};
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(0u8..=100);
            assert!(x <= 100);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert!(!rng.gen_bool(0.0));
            let _ = rng.gen_bool(1.0); // p=1.0 is near-certain; must not panic
        }
    }
}
