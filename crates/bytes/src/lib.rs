//! Offline stand-in for the `bytes` crate.
//!
//! The container image cannot reach a crates.io mirror, so the workspace
//! vendors the minimal surface it uses: [`Bytes`], a cheaply clonable,
//! reference-counted, sliceable byte buffer. The implementation keeps an
//! `Arc<[u8]>` plus a window; `clone` and `slice` are O(1) and share the
//! backing allocation, which is what the simulated object store relies on
//! when many readers hold the same object.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer (no allocation is shared).
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates a buffer by copying a slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-window sharing the same backing allocation (O(1)).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {}..{} out of 0..{}",
            lo,
            hi,
            len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_and_window() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(s.slice(..0).len(), 0);
    }

    #[test]
    fn equality_and_conversions() {
        assert_eq!(Bytes::from("abc"), Bytes::from(vec![b'a', b'b', b'c']));
        assert_eq!(Bytes::from(String::from("xy")), "xy");
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("hello").to_vec(), b"hello".to_vec());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from("ab").slice(0..3);
    }
}
