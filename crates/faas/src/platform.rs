//! The functions platform: container pool, invoker, and billing records.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::Rng;

use faaspipe_des::{
    catch_unwind_future, run_blocking, Ctx, LinkId, ProcessId, SemId, Sim, SimDuration, SimTime,
};
use faaspipe_trace::{Category, SpanId, TraceSink};

use crate::config::FaasConfig;

/// A warm container parked in the pool.
#[derive(Debug, Clone, Copy)]
struct WarmContainer {
    nic: LinkId,
    expires: SimTime,
}

/// Billing span of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationRecord {
    /// Registered function name.
    pub function: String,
    /// Attribution tag (typically the pipeline stage).
    pub tag: String,
    /// When the invocation was requested.
    pub requested: SimTime,
    /// When the body began executing (after cold/warm start).
    pub started: SimTime,
    /// When the body finished.
    pub finished: SimTime,
    /// Memory configured for the instance, in MiB.
    pub memory_mb: u32,
    /// Whether this invocation paid a cold start.
    pub cold: bool,
}

impl InvocationRecord {
    /// The billed execution duration (providers bill body time only).
    pub fn billed_duration(&self) -> SimDuration {
        self.finished.saturating_duration_since(self.started)
    }

    /// Billed gigabyte-seconds.
    pub fn gb_seconds(&self) -> f64 {
        (self.memory_mb as f64 / 1024.0) * self.billed_duration().as_secs_f64()
    }
}

/// Execution environment handed to a function body.
///
/// Cloning is cheap (the sink is refcounted) and hands the same NIC,
/// CPU share, and trace lane to helper processes the body fans out —
/// [`FunctionEnv::compute`] in a clone still parents its span to the
/// invocation.
#[derive(Debug, Clone)]
pub struct FunctionEnv {
    /// The container's NIC link; pass it to
    /// `ObjectStore::connect_via` so store traffic contends for it.
    pub nic: LinkId,
    /// vCPU share of this instance.
    pub cpu_share: f64,
    /// Memory configured for the instance, in MiB.
    pub memory_mb: u32,
    /// Whether this instance was cold-started.
    pub cold: bool,
    trace: TraceSink,
    span: SpanId,
    lane: String,
}

impl FunctionEnv {
    /// Charges `work` of single-vCPU compute time, scaled by this
    /// instance's CPU share (half a vCPU takes twice as long).
    pub fn compute(&self, ctx: &Ctx, work: SimDuration) {
        run_blocking(self.compute_async(ctx, work));
    }

    /// Async form of [`FunctionEnv::compute`] for stackless processes.
    pub async fn compute_async(&self, ctx: &Ctx, work: SimDuration) {
        let span = self.compute_span(ctx);
        ctx.compute_async(work.mul_f64(1.0 / self.cpu_share)).await;
        self.trace.span_end(span, ctx.now());
    }

    /// Charges compute like [`FunctionEnv::compute_async`] while running
    /// the CPU-heavy host `job` on the simulator's offload pool. The
    /// virtual schedule (and the emitted span) is identical to charging
    /// the compute and running the kernel inline.
    pub async fn compute_offload<R, J>(&self, ctx: &Ctx, work: SimDuration, job: J) -> R
    where
        R: Send + 'static,
        J: FnOnce() -> R + Send + 'static,
    {
        let span = self.compute_span(ctx);
        let out = ctx.offload(work.mul_f64(1.0 / self.cpu_share), job).await;
        self.trace.span_end(span, ctx.now());
        out
    }

    fn compute_span(&self, ctx: &Ctx) -> SpanId {
        if self.trace.is_enabled() {
            self.trace.span_start(
                Category::Compute,
                "compute",
                "faas",
                &self.lane,
                self.span,
                ctx.now(),
            )
        } else {
            SpanId::NONE
        }
    }
}

/// The simulated functions platform.
///
/// See the [crate docs](crate) for the model and an example.
/// Warm-pool key: `(tenant scope, function name)`. The scope is `""`
/// unless [`FaasConfig::tenant_scoped_pool`] is set, in which case it is
/// the invocation tag's first `/`-segment.
type PoolKey = (String, String);

pub struct FunctionPlatform {
    cfg: FaasConfig,
    concurrency: SemId,
    pool: Mutex<HashMap<PoolKey, Vec<WarmContainer>>>,
    records: Mutex<Vec<InvocationRecord>>,
    trace: Mutex<TraceSink>,
    next_inv: AtomicU64,
    queued: AtomicU64,
    running: AtomicU64,
}

impl std::fmt::Debug for FunctionPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionPlatform")
            .field("cfg", &self.cfg)
            .field("invocations", &self.records.lock().len())
            .finish()
    }
}

impl FunctionPlatform {
    /// Creates the platform and registers its concurrency limit with the
    /// simulation.
    pub fn install(sim: &mut Sim, cfg: FaasConfig) -> Arc<FunctionPlatform> {
        let concurrency = sim.create_semaphore(cfg.max_concurrency);
        Arc::new(FunctionPlatform {
            cfg,
            concurrency,
            pool: Mutex::new(HashMap::new()),
            records: Mutex::new(Vec::new()),
            trace: Mutex::new(TraceSink::disabled()),
            next_inv: AtomicU64::new(1),
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
        })
    }

    /// Routes invocation spans and pool counters to `sink`. The default
    /// sink is disabled.
    pub fn set_trace_sink(&self, sink: TraceSink) {
        *self.trace.lock() = sink;
    }

    /// Total warm containers parked across all functions.
    fn pool_size(&self) -> usize {
        self.pool.lock().values().map(|v| v.len()).sum()
    }

    /// The pool partition an invocation tag claims from.
    fn pool_scope(&self, tag: &str) -> String {
        if self.cfg.tenant_scoped_pool {
            tag.split('/').next().unwrap_or("").to_string()
        } else {
            String::new()
        }
    }

    /// The platform configuration.
    pub fn config(&self) -> &FaasConfig {
        &self.cfg
    }

    /// Snapshot of all invocation billing records so far.
    pub fn records(&self) -> Vec<InvocationRecord> {
        self.records.lock().clone()
    }

    /// Number of warm containers currently parked for `function`, summed
    /// across tenant scopes. (Expired containers are evicted on the next
    /// invoke — any invoke, not just one of the same function.)
    pub fn warm_count(&self, function: &str) -> usize {
        self.pool
            .lock()
            .iter()
            .filter(|((_, f), _)| f == function)
            .map(|(_, v)| v.len())
            .sum()
    }

    /// Number of warm containers parked for `function` in one tenant's
    /// pool partition (`scope` is the tag's first `/`-segment; use `""`
    /// when [`FaasConfig::tenant_scoped_pool`] is off).
    pub fn warm_count_scoped(&self, scope: &str, function: &str) -> usize {
        self.pool
            .lock()
            .get(&(scope.to_string(), function.to_string()))
            .map_or(0, |v| v.len())
    }

    /// Drops all warm containers (simulates a platform-wide reset, used by
    /// the cold-vs-warm experiment).
    pub fn flush_pool(&self) {
        self.pool.lock().clear();
    }

    /// Invokes `function` asynchronously from the calling process and
    /// returns the child process id; `ctx.join` it to rendezvous.
    ///
    /// The invocation acquires a platform concurrency slot (FIFO), pays a
    /// cold or warm start, runs `body`, then parks its container back in
    /// the warm pool.
    pub fn invoke_async<F>(
        self: &Arc<Self>,
        ctx: &Ctx,
        function: impl Into<String>,
        tag: impl Into<String>,
        body: F,
    ) -> ProcessId
    where
        F: FnOnce(&mut Ctx, &FunctionEnv) + Send + 'static,
    {
        let platform = Arc::clone(self);
        let function = function.into();
        let tag = tag.into();
        let requested = ctx.now();
        // Parent the invocation to whatever span the *caller* is inside
        // (typically the driver's stage span), captured before the hop to
        // the invocation's own process.
        let trace = self.trace.lock().clone();
        let parent = trace.current(ctx.pid());
        let pname = format!("fn:{}:{}", function, tag);
        ctx.spawn(pname, move |fctx| {
            run_blocking(platform.run_invocation(
                fctx,
                function,
                tag,
                requested,
                trace,
                parent,
                async move |c: &mut Ctx, env: FunctionEnv| body(c, &env),
            ));
        })
    }

    /// Invokes `function` as a **stackless task** and returns the child
    /// process id; `ctx.join_async` it to rendezvous. Identical platform
    /// semantics (and virtual-time schedule) to
    /// [`FunctionPlatform::invoke_async`], but the invocation costs a
    /// heap-allocated state machine instead of an OS thread — use this
    /// form for wide fan-outs.
    pub async fn invoke_task<F>(
        self: &Arc<Self>,
        ctx: &Ctx,
        function: impl Into<String>,
        tag: impl Into<String>,
        body: F,
    ) -> ProcessId
    where
        F: AsyncFnOnce(&mut Ctx, FunctionEnv) + Send + 'static,
    {
        let platform = Arc::clone(self);
        let function = function.into();
        let tag = tag.into();
        let requested = ctx.now();
        let trace = self.trace.lock().clone();
        let parent = trace.current(ctx.pid());
        let pname = format!("fn:{}:{}", function, tag);
        ctx.spawn_task(pname, move |mut fctx: Ctx| async move {
            platform
                .run_invocation(&mut fctx, function, tag, requested, trace, parent, body)
                .await;
        })
        .await
    }

    /// Invokes `function` and blocks the calling process until it returns.
    ///
    /// # Errors
    /// Propagates a panic in the function body as a
    /// [`JoinError`](faaspipe_des::JoinError).
    pub fn invoke<F>(
        self: &Arc<Self>,
        ctx: &Ctx,
        function: impl Into<String>,
        tag: impl Into<String>,
        body: F,
    ) -> Result<(), faaspipe_des::JoinError>
    where
        F: FnOnce(&mut Ctx, &FunctionEnv) + Send + 'static,
    {
        let h = self.invoke_async(ctx, function, tag, body);
        ctx.join(h)
    }

    #[allow(clippy::too_many_arguments)]
    async fn run_invocation<F>(
        self: Arc<Self>,
        ctx: &mut Ctx,
        function: String,
        tag: String,
        requested: SimTime,
        trace: TraceSink,
        parent: SpanId,
        body: F,
    ) where
        F: AsyncFnOnce(&mut Ctx, FunctionEnv) + Send + 'static,
    {
        let tracing = trace.is_enabled();
        let (inv, lane) = if tracing {
            let seq = self.next_inv.fetch_add(1, Ordering::SeqCst);
            let lane = format!("inv-{}", seq);
            let inv = trace.span_start(
                Category::Invocation,
                &function,
                "faas",
                &lane,
                parent,
                requested,
            );
            trace.attr(inv, "function", function.as_str());
            trace.attr(inv, "tag", tag.as_str());
            trace.attr(inv, "memory_mb", self.cfg.memory_mb);
            (inv, lane)
        } else {
            (SpanId::NONE, String::new())
        };
        let queue = if tracing {
            let q = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
            trace.gauge("faas.queued_invocations", requested, q as f64);
            trace.span_start(Category::Queue, "queue", "faas", &lane, inv, requested)
        } else {
            SpanId::NONE
        };
        ctx.sem_acquire_async(self.concurrency, 1).await;
        if tracing {
            let q = self.queued.fetch_sub(1, Ordering::SeqCst) - 1;
            trace.gauge("faas.queued_invocations", ctx.now(), q as f64);
            trace.span_end(queue, ctx.now());
        }
        // Claim a warm container or cold-start a new one. Expiry is
        // evaluated pool-wide, not just for this function's slot: with
        // several tenants interleaving claims, a slot touched by no one
        // would otherwise keep dead containers on the books (wrong
        // `warm_count`s and an inflated `faas.warm_containers` gauge).
        let now = ctx.now();
        let scope = self.pool_scope(&tag);
        let warm = {
            let mut pool = self.pool.lock();
            pool.retain(|_, slot| {
                slot.retain(|c| c.expires >= now);
                !slot.is_empty()
            });
            pool.get_mut(&(scope.clone(), function.clone()))
                .and_then(|slot| slot.pop())
        };
        if tracing {
            trace.gauge("faas.warm_containers", now, self.pool_size() as f64);
        }
        let start_at = ctx.now();
        let (nic, cold) = match warm {
            Some(c) => {
                ctx.sleep_async(self.cfg.warm_start).await;
                (c.nic, false)
            }
            None => {
                ctx.sleep_async(self.cfg.cold_start).await;
                (ctx.link_create_async(self.cfg.nic_bw).await, true)
            }
        };
        if tracing {
            let category = if cold {
                Category::ColdStart
            } else {
                Category::WarmStart
            };
            let name = if cold { "cold-start" } else { "warm-start" };
            let s = trace.span_start(category, name, "faas", &lane, inv, start_at);
            trace.span_end(s, ctx.now());
        }
        if self.cfg.failure_rate > 0.0 && ctx.rng().gen::<f64>() < self.cfg.failure_rate {
            // Crash before user code, releasing the slot first so the
            // platform is not poisoned.
            ctx.sem_release_async(self.concurrency, 1).await;
            if tracing {
                trace.attr(inv, "failed", true);
                trace.span_end(inv, ctx.now());
            }
            panic!("injected invocation failure for '{}'", function);
        }
        let env = FunctionEnv {
            nic,
            cpu_share: self.cfg.cpu_share(),
            memory_mb: self.cfg.memory_mb,
            cold,
            trace: trace.clone(),
            span: inv,
            lane,
        };
        let started = ctx.now();
        if tracing {
            let r = self.running.fetch_add(1, Ordering::SeqCst) + 1;
            trace.gauge("faas.running_containers", started, r as f64);
            // Store requests issued by the body parent to this invocation.
            trace.enter(ctx.pid(), inv);
        }
        // A crashing body must still release the platform's concurrency
        // slot (its container dies with it and is not parked).
        let result =
            catch_unwind_future(std::panic::AssertUnwindSafe(body(ctx, env.clone()))).await;
        if tracing {
            trace.exit(ctx.pid());
            let r = self.running.fetch_sub(1, Ordering::SeqCst) - 1;
            trace.gauge("faas.running_containers", ctx.now(), r as f64);
        }
        if let Err(payload) = result {
            if !faaspipe_des::is_shutdown_payload(payload.as_ref()) {
                ctx.sem_release_async(self.concurrency, 1).await;
            }
            if tracing {
                trace.attr(inv, "failed", true);
                trace.span_end(inv, ctx.now());
            }
            std::panic::resume_unwind(payload);
        }
        let finished = ctx.now();
        // Park the container (in its tenant's partition) and release the
        // slot.
        {
            let mut pool = self.pool.lock();
            pool.entry((scope, function.clone()))
                .or_default()
                .push(WarmContainer {
                    nic,
                    expires: finished + self.cfg.keep_alive,
                });
        }
        ctx.sem_release_async(self.concurrency, 1).await;
        if tracing {
            trace.gauge("faas.warm_containers", finished, self.pool_size() as f64);
            trace.attr(inv, "cold", cold);
            trace.span_end(inv, finished);
        }
        self.records.lock().push(InvocationRecord {
            function,
            tag,
            requested,
            started,
            finished,
            memory_mb: self.cfg.memory_mb,
            cold,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::{Sim, SimDuration};
    use std::sync::Mutex as StdMutex;

    fn platform_sim(cfg: FaasConfig) -> (Sim, Arc<FunctionPlatform>) {
        let mut sim = Sim::new();
        let faas = FunctionPlatform::install(&mut sim, cfg);
        (sim, faas)
    }

    #[test]
    fn cold_then_warm_start() {
        let cfg = FaasConfig {
            cold_start: SimDuration::from_millis(500),
            warm_start: SimDuration::from_millis(20),
            ..FaasConfig::default()
        };
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "a", |_, env| assert!(env.cold)).unwrap();
            p.invoke(ctx, "f", "b", |_, env| assert!(!env.cold))
                .unwrap();
        });
        sim.run().expect("run");
        let recs = faas.records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].cold);
        assert!(!recs[1].cold);
        assert_eq!(recs[0].started.as_nanos(), 500_000_000);
        // Second starts 20 ms after the first finished.
        assert_eq!(
            recs[1].started.as_nanos() - recs[0].finished.as_nanos(),
            20_000_000
        );
    }

    #[test]
    fn keep_alive_expiry_forces_cold() {
        let cfg = FaasConfig {
            keep_alive: SimDuration::from_secs(1),
            ..FaasConfig::default()
        };
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "a", |_, _| {}).unwrap();
            ctx.sleep(SimDuration::from_secs(5));
            p.invoke(ctx, "f", "b", |_, env| assert!(env.cold)).unwrap();
        });
        sim.run().expect("run");
        assert!(faas.records().iter().all(|r| r.cold));
    }

    #[test]
    fn parallel_invocations_reuse_separate_containers() {
        let (mut sim, faas) = platform_sim(FaasConfig::default());
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            let hs: Vec<_> = (0..4)
                .map(|i| {
                    p.invoke_async(ctx, "f", format!("t{}", i), |fctx, env| {
                        env.compute(fctx, SimDuration::from_secs(1));
                    })
                })
                .collect();
            ctx.join_all(&hs).unwrap();
        });
        sim.run().expect("run");
        let recs = faas.records();
        assert_eq!(recs.len(), 4);
        // All four run concurrently: every one pays a cold start.
        assert!(recs.iter().all(|r| r.cold));
        assert_eq!(faas.warm_count("f"), 4);
    }

    #[test]
    fn concurrency_limit_queues_fifo() {
        let cfg = FaasConfig {
            max_concurrency: 1,
            cold_start: SimDuration::ZERO,
            warm_start: SimDuration::ZERO,
            ..FaasConfig::default()
        };
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        let order = Arc::new(StdMutex::new(Vec::new()));
        let order2 = Arc::clone(&order);
        sim.spawn("driver", move |ctx| {
            let hs: Vec<_> = (0..3u64)
                .map(|i| {
                    let order = Arc::clone(&order2);
                    p.invoke_async(ctx, "f", format!("t{}", i), move |fctx, _| {
                        order.lock().unwrap().push((i, fctx.now().as_secs_f64()));
                        fctx.sleep(SimDuration::from_secs(1));
                    })
                })
                .collect();
            ctx.join_all(&hs).unwrap();
        });
        sim.run().expect("run");
        let order = order.lock().unwrap();
        for (i, (who, at)) in order.iter().enumerate() {
            assert_eq!(*who, i as u64);
            assert!((at - i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn compute_scales_with_memory() {
        let cfg = FaasConfig::default().with_memory_mb(1024); // 0.5 vCPU
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "t", |fctx, env| {
                let before = fctx.now();
                env.compute(fctx, SimDuration::from_secs(1));
                let took = fctx.now().saturating_duration_since(before);
                assert!((took.as_secs_f64() - 2.0).abs() < 1e-9);
            })
            .unwrap();
        });
        sim.run().expect("run");
    }

    #[test]
    fn billed_duration_excludes_cold_start() {
        let cfg = FaasConfig {
            cold_start: SimDuration::from_secs(3),
            ..FaasConfig::default()
        };
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "t", |fctx, _| {
                fctx.sleep(SimDuration::from_secs(2))
            })
            .unwrap();
        });
        sim.run().expect("run");
        let rec = &faas.records()[0];
        assert_eq!(rec.billed_duration(), SimDuration::from_secs(2));
        // 2 GiB * 2 s = 4 GB-s.
        assert!((rec.gb_seconds() - 4.0).abs() < 1e-9);
        assert_eq!(rec.requested, SimTime::ZERO);
        assert_eq!(rec.started.as_secs_f64(), 3.0);
    }

    #[test]
    fn injected_failures_surface_via_join() {
        let cfg = FaasConfig::default().with_failure_rate(1.0);
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            let err = p.invoke(ctx, "f", "t", |_, _| {}).expect_err("must crash");
            assert!(err.message.contains("injected invocation failure"));
        });
        sim.run().expect("observed failure is fine");
        assert!(
            faas.records().is_empty(),
            "crashed invocations are not billed"
        );
    }

    #[test]
    fn failed_invocations_release_concurrency() {
        // One slot + guaranteed failure: a second invocation must still run.
        let cfg = FaasConfig {
            max_concurrency: 1,
            ..FaasConfig::default().with_failure_rate(1.0)
        };
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            let _ = p.invoke(ctx, "f", "a", |_, _| {});
            let _ = p.invoke(ctx, "f", "b", |_, _| {});
        });
        sim.run().expect("run");
    }

    #[test]
    fn warm_container_reuses_its_nic_link() {
        use std::sync::Mutex as StdMutex;
        let (mut sim, faas) = platform_sim(FaasConfig::default());
        let p = faas.clone();
        let nics = Arc::new(StdMutex::new(Vec::new()));
        let nics2 = Arc::clone(&nics);
        sim.spawn("driver", move |ctx| {
            for _ in 0..2 {
                let nics = Arc::clone(&nics2);
                p.invoke(ctx, "f", "t", move |_, env| {
                    nics.lock().unwrap().push(env.nic);
                })
                .unwrap();
            }
        });
        sim.run().expect("run");
        let nics = nics.lock().unwrap();
        assert_eq!(nics[0], nics[1], "warm start must reuse the container NIC");
    }

    #[test]
    fn records_carry_function_and_tag() {
        let (mut sim, faas) = platform_sim(FaasConfig::default());
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "mapper", "sort/map", |_, _| {}).unwrap();
        });
        sim.run().expect("run");
        let recs = faas.records();
        assert_eq!(recs[0].function, "mapper");
        assert_eq!(recs[0].tag, "sort/map");
        assert!(recs[0].requested <= recs[0].started);
        assert!(recs[0].started <= recs[0].finished);
    }

    #[test]
    fn crashing_body_releases_slot_and_destroys_container() {
        // One slot; a body panic must release it AND not park the
        // container (the next invoke cold-starts).
        let cfg = FaasConfig {
            max_concurrency: 1,
            ..FaasConfig::default()
        };
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            let err = p
                .invoke(ctx, "f", "a", |_, _| panic!("body exploded"))
                .expect_err("crash observed");
            assert!(err.message.contains("body exploded"));
            // Slot free again and the crashed container is gone -> cold.
            p.invoke(ctx, "f", "b", |_, env| assert!(env.cold)).unwrap();
        });
        sim.run().expect("run");
        assert_eq!(faas.warm_count("f"), 1, "only the healthy container parked");
    }

    #[test]
    fn traced_invocation_records_queue_start_and_compute_spans() {
        let cfg = FaasConfig {
            cold_start: SimDuration::from_millis(500),
            ..FaasConfig::default()
        };
        let (mut sim, faas) = platform_sim(cfg);
        let sink = TraceSink::recording();
        faas.set_trace_sink(sink.clone());
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "t", |fctx, env| {
                env.compute(fctx, SimDuration::from_secs(1));
            })
            .unwrap();
        });
        sim.run().expect("run");
        let data = sink.snapshot();
        let inv = data
            .spans
            .iter()
            .find(|s| s.category == Category::Invocation)
            .expect("invocation span");
        assert_eq!(inv.name, "f");
        assert_eq!(inv.lane, "inv-1");
        assert!(inv.end.is_some());
        let cold = data
            .spans
            .iter()
            .find(|s| s.category == Category::ColdStart)
            .expect("cold-start span");
        assert_eq!(cold.parent, Some(inv.id));
        assert_eq!(cold.duration().unwrap(), SimDuration::from_millis(500));
        let compute = data
            .spans
            .iter()
            .find(|s| s.category == Category::Compute)
            .expect("compute span");
        assert_eq!(compute.parent, Some(inv.id));
        assert!(data.spans.iter().any(|s| s.category == Category::Queue));
    }

    #[test]
    fn interleaved_tenants_do_not_share_warm_containers() {
        // Two tenants interleave claims on the shared platform. With the
        // pool partitioned by tenant, t1 must NOT pick up the container
        // t0 just parked — on the pre-fix shared pool it warm-started
        // on t0's container (and inherited its NIC).
        let cfg = FaasConfig::default().with_tenant_scoped_pool(true);
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "t0/r0/sort/map", |_, env| assert!(env.cold))
                .unwrap();
            p.invoke(ctx, "f", "t1/r0/sort/map", |_, env| {
                assert!(env.cold, "a tenant must not claim another's container")
            })
            .unwrap();
            // Each tenant's own second claim is warm.
            p.invoke(ctx, "f", "t0/r1/sort/map", |_, env| assert!(!env.cold))
                .unwrap();
            p.invoke(ctx, "f", "t1/r1/sort/map", |_, env| assert!(!env.cold))
                .unwrap();
        });
        sim.run().expect("run");
        assert_eq!(faas.warm_count_scoped("t0", "f"), 1);
        assert_eq!(faas.warm_count_scoped("t1", "f"), 1);
        assert_eq!(faas.warm_count("f"), 2);
    }

    #[test]
    fn interleaved_claims_evict_expired_containers_globally() {
        // Keep-alive expiry used to be evaluated only for the slot being
        // claimed: tenant A's dead "f" container stayed on the books
        // forever while tenant B kept invoking "g". Any claim now sweeps
        // the whole pool.
        let cfg = FaasConfig {
            keep_alive: SimDuration::from_secs(1),
            ..FaasConfig::default()
        };
        let (mut sim, faas) = platform_sim(cfg);
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "a", |_, _| {}).unwrap();
            assert_eq!(p.warm_count("f"), 1);
            ctx.sleep(SimDuration::from_secs(5));
            // A *different* function's claim happens after "f"'s
            // container expired; the expired container must be gone.
            p.invoke(ctx, "g", "b", |_, _| {}).unwrap();
            assert_eq!(
                p.warm_count("f"),
                0,
                "expired container must not survive an interleaved claim"
            );
        });
        sim.run().expect("run");
    }

    #[test]
    fn flush_pool_forces_cold_again() {
        let (mut sim, faas) = platform_sim(FaasConfig::default());
        let p = faas.clone();
        sim.spawn("driver", move |ctx| {
            p.invoke(ctx, "f", "a", |_, _| {}).unwrap();
            p.flush_pool();
            p.invoke(ctx, "f", "b", |_, env| assert!(env.cold)).unwrap();
        });
        sim.run().expect("run");
    }
}
