//! # faaspipe-faas — simulated cloud-functions platform
//!
//! Models an IBM Cloud Functions / AWS Lambda-style FaaS platform on top of
//! the [`faaspipe-des`](faaspipe_des) kernel:
//!
//! * **cold vs warm starts** — a per-function container pool with a
//!   keep-alive window;
//! * **memory-proportional CPU** — a 2 GB function gets ~1 vCPU, a 1 GB
//!   function half of one (matching IBM CF's allotment);
//! * **per-container networking** — each container owns a NIC link that
//!   its object-store connections traverse;
//! * **platform concurrency limits** — invocations queue FIFO once the
//!   account-wide limit is reached;
//! * **billing records** — one span per invocation (billed execution time
//!   and memory), consumed by the cost model in `faaspipe-core`.
//!
//! Function *bodies are real Rust closures*: they move real bytes through
//! the simulated store and charge virtual CPU time via
//! [`FunctionEnv::compute`].
//!
//! ## Example
//!
//! ```
//! use faaspipe_des::{Sim, SimDuration};
//! use faaspipe_faas::{FaasConfig, FunctionPlatform};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Sim::new();
//! let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
//! let platform = faas.clone();
//! sim.spawn("driver", move |ctx| {
//!     let h = platform.invoke_async(ctx, "hello", "stage0", |fctx, env| {
//!         env.compute(fctx, SimDuration::from_millis(100));
//!     });
//!     ctx.join(h).unwrap();
//! });
//! sim.run()?;
//! assert_eq!(faas.records().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod platform;

pub use config::FaasConfig;
pub use platform::{FunctionEnv, FunctionPlatform, InvocationRecord};
