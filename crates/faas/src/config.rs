//! FaaS platform configuration.

use faaspipe_des::{Bandwidth, SimDuration};

/// Performance model of the functions platform.
///
/// Defaults approximate IBM Cloud Functions circa 2021 with 2 GB actions,
/// the configuration the paper uses ("We will allocate 2GB of memory to
/// cloud functions").
#[derive(Debug, Clone)]
pub struct FaasConfig {
    /// Memory allocated per function instance, in MiB.
    pub memory_mb: u32,
    /// Scheduling + runtime-init delay when no warm container exists.
    pub cold_start: SimDuration,
    /// Dispatch delay when a warm container is reused.
    pub warm_start: SimDuration,
    /// How long an idle container stays warm.
    pub keep_alive: SimDuration,
    /// Account-wide concurrent-invocation limit.
    pub max_concurrency: u64,
    /// Per-container network bandwidth.
    pub nic_bw: Bandwidth,
    /// vCPUs granted at 2048 MiB; CPU scales linearly with memory.
    pub cpu_at_2048mb: f64,
    /// Probability an invocation crashes (for failure-injection tests).
    pub failure_rate: f64,
    /// Partition the warm pool by tenant: a container parked by a tag
    /// whose first `/`-segment is `t0` can only be claimed by `t0` tags,
    /// the way real platforms never hand one tenant's container to
    /// another. Off by default — single-tenant runs keep one pool.
    pub tenant_scoped_pool: bool,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            memory_mb: 2048,
            cold_start: SimDuration::from_millis(520),
            warm_start: SimDuration::from_millis(28),
            keep_alive: SimDuration::from_secs(600),
            max_concurrency: 1_000,
            nic_bw: Bandwidth::mib_per_sec(80.0),
            cpu_at_2048mb: 1.0,
            failure_rate: 0.0,
            tenant_scoped_pool: false,
        }
    }
}

impl FaasConfig {
    /// The vCPU share for this memory size.
    pub fn cpu_share(&self) -> f64 {
        self.memory_mb as f64 / 2048.0 * self.cpu_at_2048mb
    }

    /// Returns the config with a different memory size.
    ///
    /// # Panics
    /// Panics if `memory_mb` is zero.
    pub fn with_memory_mb(mut self, memory_mb: u32) -> Self {
        assert!(memory_mb > 0, "memory must be positive");
        self.memory_mb = memory_mb;
        self
    }

    /// Returns the config with a different failure rate.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "failure_rate must be in [0,1]");
        self.failure_rate = rate;
        self
    }

    /// Returns the config with the warm pool partitioned by tenant (the
    /// first `/`-segment of the invocation tag).
    pub fn with_tenant_scoped_pool(mut self, scoped: bool) -> Self {
        self.tenant_scoped_pool = scoped;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = FaasConfig::default();
        assert_eq!(c.memory_mb, 2048, "paper allocates 2GB to functions");
        assert!((c.cpu_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_share_scales_with_memory() {
        let c = FaasConfig::default().with_memory_mb(1024);
        assert!((c.cpu_share() - 0.5).abs() < 1e-12);
        let c = FaasConfig::default().with_memory_mb(4096);
        assert!((c.cpu_share() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "memory")]
    fn rejects_zero_memory() {
        FaasConfig::default().with_memory_mb(0);
    }
}
