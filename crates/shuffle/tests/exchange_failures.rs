//! Failure injection against the non-store exchange backends: transient
//! faults must be absorbed by the shared retry helper, terminal faults
//! (relay VM crash, expired direct-stream peer) must fail the sort
//! loudly instead of producing silent corruption.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe_des::{Sim, SimDuration};
use faaspipe_exchange::{DataExchange, DirectConfig, DirectExchange, RelayConfig, VmRelayExchange};
use faaspipe_faas::{FaasConfig, FunctionPlatform};
use faaspipe_shuffle::{serverless_sort, ShuffleError, SortConfig, SortRecord};
use faaspipe_store::{FailurePolicy, ObjectStore, StoreConfig};
use faaspipe_vm::VmFleet;

fn upload(store: &Arc<ObjectStore>, values: &[u64], chunks: usize) {
    store.create_bucket("data").expect("bucket");
    let per = values.len().div_ceil(chunks);
    for (i, chunk) in values.chunks(per).enumerate() {
        let data = SortRecord::write_all(chunk);
        store
            .put_untimed("data", &format!("in/{:04}", i), Bytes::from(data))
            .expect("upload");
    }
}

type SortOutcome = Result<Vec<u64>, ShuffleError>;

/// Runs a 4-worker sort over `backend` and returns the result (the
/// concatenated output on success).
fn sort_with(backend: Arc<dyn DataExchange>, retries: u32, task_attempts: u32) -> SortOutcome {
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    let values: Vec<u64> = (0..3_000u64).rev().collect();
    upload(&store, &values, 4);
    let out: Arc<Mutex<Option<SortOutcome>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let store2 = Arc::clone(&store);
    sim.spawn("driver", move |ctx| {
        let cfg = SortConfig {
            workers: 4,
            retries,
            task_attempts,
            backend: Some(backend),
            ..SortConfig::default()
        };
        let result = serverless_sort::<u64>(ctx, &faas, &store2, &cfg).map(|stats| {
            let client = store2.connect(ctx, "verify");
            let mut all = Vec::new();
            for run in &stats.runs {
                let data = client.get(ctx, "data", run).expect("run exists");
                let mut records: Vec<u64> = SortRecord::read_all(&data).expect("decode");
                all.append(&mut records);
            }
            all
        });
        *out2.lock() = Some(result);
    });
    sim.run().expect("sim ok");
    let result = out.lock().take().expect("driver ran");
    result
}

#[test]
fn relay_transient_faults_recover_through_retries() {
    let relay = VmRelayExchange::new(
        VmFleet::new(),
        RelayConfig {
            failure: FailurePolicy::with_error_rate(0.2),
            ..RelayConfig::default()
        },
    );
    let sorted = sort_with(Arc::new(relay), 20, 2).expect("retries absorb 20% relay faults");
    assert_eq!(sorted, (0..3_000u64).collect::<Vec<_>>());
}

#[test]
fn relay_crash_mid_shuffle_fails_loudly() {
    // The relay VM dies after a handful of requests; the crash is
    // terminal (RelayDown is not retryable), so task re-invocation
    // cannot save the phase and the sort must surface TaskFailed.
    let relay = VmRelayExchange::new(
        VmFleet::new(),
        RelayConfig {
            crash_after_requests: Some(6),
            ..RelayConfig::default()
        },
    );
    let err = sort_with(Arc::new(relay), 8, 3).expect_err("crashed relay cannot complete");
    match err {
        ShuffleError::TaskFailed { message, .. } => {
            assert!(
                message.contains("relay"),
                "failure must name the relay: {}",
                message
            );
        }
        other => panic!("expected TaskFailed, got {:?}", other),
    }
}

#[test]
fn direct_peer_timeouts_recover_through_retries() {
    let direct = DirectExchange::new(DirectConfig {
        failure: FailurePolicy::with_error_rate(0.3),
        ..DirectConfig::default()
    });
    let sorted = sort_with(Arc::new(direct), 20, 2).expect("retries absorb 30% peer timeouts");
    assert_eq!(sorted, (0..3_000u64).collect::<Vec<_>>());
}

#[test]
fn direct_expired_senders_fail_loudly() {
    // With a keep-alive far shorter than the gap between the map and
    // reduce phases, every sender is cold by the time reducers stream:
    // PeerGone is terminal and the reduce phase must fail loudly.
    let direct = DirectExchange::new(DirectConfig {
        keep_alive: SimDuration::from_millis(1),
        ..DirectConfig::default()
    });
    let err = sort_with(Arc::new(direct), 3, 2).expect_err("cold senders cannot stream");
    match err {
        ShuffleError::TaskFailed { phase, message } => {
            assert_eq!(phase, "reduce");
            assert!(
                message.contains("no longer warm") || message.contains("gather"),
                "failure must explain the cold peer: {}",
                message
            );
        }
        other => panic!("expected TaskFailed, got {:?}", other),
    }
}
