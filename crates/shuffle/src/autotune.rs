//! Worker-count autotuning — Primula's headline feature.
//!
//! "For I/O-bound tasks, using the optimal number of functions in terms of
//! remote storage resource utilization is crucial for good performance"
//! (paper §2.2). The tuner combines an analytic makespan model of the
//! sample→map→reduce data path with storage parameters measured *on the
//! fly* ([`Autotuner::probe`]), and picks the worker count minimizing
//! modelled completion time.
//!
//! The model captures the three regimes the worker sweep (experiment E3)
//! exhibits:
//!
//! * **too few workers** — per-connection bandwidth bound: each function
//!   must move `D/W` bytes at `min(conn_bw, agg_bw / W)`;
//! * **sweet spot** — enough connections to aggregate storage bandwidth,
//!   few enough that request overheads stay small;
//! * **too many workers** — the `W²` intermediate objects hit request
//!   latency and the store's operations/s throttle.

use std::sync::Arc;

use bytes::Bytes;
use faaspipe_des::Ctx;
use faaspipe_store::{ObjectStore, StoreError};

/// Analytic makespan/cost model of the serverless sort.
#[derive(Debug, Clone)]
pub struct TuningModel {
    /// Shuffle data size in (modelled) bytes.
    pub data_bytes: f64,
    /// Number of input chunk objects.
    pub input_chunks: usize,
    /// Per-request latency, seconds.
    pub request_latency_s: f64,
    /// Per-connection bandwidth, bytes/sec.
    pub conn_bw: f64,
    /// Store aggregate bandwidth, bytes/sec.
    pub agg_bw: f64,
    /// Store operations per second.
    pub ops_per_sec: f64,
    /// Function startup paid once per stage, seconds.
    pub startup_s: f64,
    /// vCPU share per function.
    pub cpu_share: f64,
    /// Local-sort throughput per vCPU, bytes/sec.
    pub sort_bps: f64,
    /// Merge throughput per vCPU, bytes/sec.
    pub merge_bps: f64,
    /// Largest worker count considered.
    pub max_workers: usize,
}

/// Modelled makespan decomposition for one worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Workers this breakdown is for.
    pub workers: usize,
    /// Startup (cold start) seconds.
    pub startup_s: f64,
    /// Data movement seconds (both phases).
    pub transfer_s: f64,
    /// Request overhead seconds (latency + ops/s throttling).
    pub request_s: f64,
    /// Compute seconds (sort + merge).
    pub compute_s: f64,
}

impl CostBreakdown {
    /// Total modelled makespan in seconds.
    pub fn total_s(&self) -> f64 {
        self.startup_s + self.transfer_s + self.request_s + self.compute_s
    }
}

impl TuningModel {
    /// Models the makespan for `workers` functions in the shuffle stage.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn breakdown(&self, workers: usize) -> CostBreakdown {
        assert!(workers > 0, "workers must be positive");
        let w = workers as f64;
        let per_fn_bw = self.conn_bw.min(self.agg_bw / w);
        // Map: read D/W, write D/W. Reduce: read D/W, write D/W.
        let transfer_s = 4.0 * (self.data_bytes / w) / per_fn_bw;
        // Requests: map does (chunks/W reads + W writes), reduce does
        // (W reads + 1 write); serial latency per worker, floored by the
        // store-wide ops/s throttle over ~2W² + chunks total requests.
        let per_worker_reqs = (self.input_chunks as f64 / w).ceil() + 2.0 * w + 1.0;
        let serial = per_worker_reqs * self.request_latency_s;
        let total_reqs = 2.0 * w * w + self.input_chunks as f64 + w;
        let throttled = total_reqs / self.ops_per_sec;
        let request_s = serial.max(throttled);
        // Compute: local sort of D/W, then merge of D/W, at cpu_share.
        let compute_s = (self.data_bytes / w) / (self.sort_bps * self.cpu_share)
            + (self.data_bytes / w) / (self.merge_bps * self.cpu_share);
        CostBreakdown {
            workers,
            startup_s: 2.0 * self.startup_s,
            transfer_s,
            request_s,
            compute_s,
        }
    }

    /// The worker count minimizing modelled makespan (ties go to fewer
    /// workers).
    pub fn best_workers(&self) -> usize {
        let mut best = 1;
        let mut best_t = f64::INFINITY;
        for w in 1..=self.max_workers.max(1) {
            let t = self.breakdown(w).total_s();
            if t < best_t {
                best_t = t;
                best = w;
            }
        }
        best
    }

    /// Modelled dollar cost for `workers` (function GB-seconds plus
    /// storage requests), used by the cost-for-latency trade-off report.
    pub fn cost_dollars(
        &self,
        workers: usize,
        memory_gb: f64,
        gb_second_price: f64,
        class_a_price_per_k: f64,
        class_b_price_per_k: f64,
    ) -> f64 {
        let b = self.breakdown(workers);
        let w = workers as f64;
        // Each function is busy roughly total/parallelism of the
        // non-startup time, twice (map + reduce stage).
        let busy_s = b.transfer_s + b.request_s + b.compute_s;
        let gb_s = 2.0 * w * memory_gb * busy_s / 2.0;
        let class_a = w * w + w; // scatter writes + run writes
        let class_b = w * w + self.input_chunks as f64 + w; // gathers + reads + samples
        gb_s * gb_second_price
            + class_a / 1000.0 * class_a_price_per_k
            + class_b / 1000.0 * class_b_price_per_k
    }
}

/// Pricing inputs for cost-aware tuning.
#[derive(Debug, Clone)]
pub struct TuningPrices {
    /// Function memory in GB.
    pub memory_gb: f64,
    /// Price per GB-second of function execution.
    pub gb_second: f64,
    /// Price per 1000 class-A (write/list) requests.
    pub class_a_per_k: f64,
    /// Price per 1000 class-B (read) requests.
    pub class_b_per_k: f64,
}

impl Default for TuningPrices {
    fn default() -> Self {
        TuningPrices {
            memory_gb: 2.0,
            gb_second: 0.000017,
            class_a_per_k: 0.005,
            class_b_per_k: 0.0004,
        }
    }
}

impl TuningModel {
    /// Modelled cost with a [`TuningPrices`] bundle.
    pub fn cost_with(&self, workers: usize, prices: &TuningPrices) -> f64 {
        self.cost_dollars(
            workers,
            prices.memory_gb,
            prices.gb_second,
            prices.class_a_per_k,
            prices.class_b_per_k,
        )
    }

    /// The latency-optimal worker count whose modelled cost stays within
    /// `budget_dollars`. Falls back to the overall cheapest count when no
    /// worker count fits the budget.
    pub fn best_workers_under_budget(&self, budget_dollars: f64, prices: &TuningPrices) -> usize {
        let mut best: Option<(usize, f64)> = None;
        let mut cheapest = (1usize, f64::INFINITY);
        for w in 1..=self.max_workers.max(1) {
            let cost = self.cost_with(w, prices);
            let latency = self.breakdown(w).total_s();
            if cost < cheapest.1 {
                cheapest = (w, cost);
            }
            if cost <= budget_dollars {
                match best {
                    Some((_, l)) if l <= latency => {}
                    _ => best = Some((w, latency)),
                }
            }
        }
        best.map(|(w, _)| w).unwrap_or(cheapest.0)
    }

    /// The Pareto frontier over `(workers, latency_s, cost_dollars)`:
    /// configurations not dominated in both latency and cost, in
    /// increasing worker order.
    pub fn pareto(&self, prices: &TuningPrices) -> Vec<(usize, f64, f64)> {
        let mut points: Vec<(usize, f64, f64)> = (1..=self.max_workers.max(1))
            .map(|w| (w, self.breakdown(w).total_s(), self.cost_with(w, prices)))
            .collect();
        points.sort_by(|a, b| a.2.total_cmp(&b.2));
        let mut frontier: Vec<(usize, f64, f64)> = Vec::new();
        let mut best_latency = f64::INFINITY;
        for p in points {
            if p.1 < best_latency {
                best_latency = p.1;
                frontier.push(p);
            }
        }
        frontier.sort_by_key(|p| p.0);
        frontier
    }
}

/// Measures storage parameters on the fly and instantiates the model —
/// Primula's "finds the optimal number of functions ... on the fly".
#[derive(Debug)]
pub struct Autotuner {
    /// Measured per-request latency, seconds.
    pub measured_latency_s: f64,
    /// Measured per-connection bandwidth, bytes/sec.
    pub measured_conn_bw: f64,
}

impl Autotuner {
    /// Probes the store with a handful of requests: timed empty PUTs for
    /// latency, a timed multi-megabyte PUT/GET pair for bandwidth.
    ///
    /// # Errors
    /// Propagates store failures.
    pub fn probe(
        ctx: &mut Ctx,
        store: &Arc<ObjectStore>,
        bucket: &str,
    ) -> Result<Autotuner, StoreError> {
        faaspipe_des::run_blocking(Autotuner::probe_async(ctx, store, bucket))
    }

    /// Async form of [`Autotuner::probe`] for stackless processes.
    ///
    /// # Errors
    /// Propagates store failures.
    pub async fn probe_async(
        ctx: &mut Ctx,
        store: &Arc<ObjectStore>,
        bucket: &str,
    ) -> Result<Autotuner, StoreError> {
        let client = store.connect_async(ctx, "autotune/probe").await;
        // Latency: average 3 empty PUTs.
        let t0 = ctx.now();
        for i in 0..3 {
            client
                .put_async(ctx, bucket, &format!("__probe/lat{}", i), Bytes::new())
                .await?;
        }
        let lat = ctx.now().saturating_duration_since(t0).as_secs_f64() / 3.0;
        // Bandwidth: one 4 MiB (modelled) round trip, netting out latency.
        // Under a scaled data model the physical payload shrinks so the
        // wire-level probe stays 4 MiB.
        let scale = store.config().size_scale;
        let physical = ((4.0 * 1024.0 * 1024.0 / scale).round() as usize).max(1);
        let payload = Bytes::from(vec![0u8; physical]);
        let t0 = ctx.now();
        client.put_async(ctx, bucket, "__probe/bw", payload).await?;
        let up = ctx.now().saturating_duration_since(t0).as_secs_f64();
        let t0 = ctx.now();
        let got = client.get_async(ctx, bucket, "__probe/bw").await?;
        let down = ctx.now().saturating_duration_since(t0).as_secs_f64();
        let wire = store.config().scaled_len(got.len()) as f64;
        let bw = (2.0 * wire) / ((up - lat).max(1e-6) + (down - lat).max(1e-6));
        // Clean up probe objects.
        for i in 0..3 {
            client
                .delete_async(ctx, bucket, &format!("__probe/lat{}", i))
                .await?;
        }
        client.delete_async(ctx, bucket, "__probe/bw").await?;
        Ok(Autotuner {
            measured_latency_s: lat,
            measured_conn_bw: bw,
        })
    }

    /// Builds the analytic model from the measurements plus known platform
    /// parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn model(
        &self,
        data_bytes: f64,
        input_chunks: usize,
        store: &ObjectStore,
        startup_s: f64,
        cpu_share: f64,
        sort_bps: f64,
        merge_bps: f64,
        max_workers: usize,
    ) -> TuningModel {
        TuningModel {
            data_bytes,
            input_chunks,
            request_latency_s: self.measured_latency_s,
            conn_bw: self.measured_conn_bw,
            agg_bw: store.config().aggregate_bw.as_bytes_per_sec(),
            ops_per_sec: store.config().ops_per_sec,
            startup_s,
            cpu_share,
            sort_bps,
            merge_bps,
            max_workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;
    use faaspipe_store::StoreConfig;
    use parking_lot::Mutex;

    /// A model shaped like the paper's setup: 3.5 GB, COS-ish store.
    fn paper_model() -> TuningModel {
        TuningModel {
            data_bytes: 3.5e9,
            input_chunks: 8,
            request_latency_s: 0.028,
            conn_bw: 95.0 * 1024.0 * 1024.0,
            agg_bw: 200e9 / 8.0,
            ops_per_sec: 3_000.0,
            startup_s: 0.52,
            cpu_share: 1.0,
            sort_bps: 95.0 * 1024.0 * 1024.0,
            merge_bps: 180.0 * 1024.0 * 1024.0,
            max_workers: 256,
        }
    }

    #[test]
    fn interior_optimum_exists() {
        let m = paper_model();
        let best = m.best_workers();
        let t1 = m.breakdown(1).total_s();
        let t_best = m.breakdown(best).total_s();
        let t_max = m.breakdown(m.max_workers).total_s();
        assert!(best > 1, "one worker cannot be optimal for 3.5 GB");
        assert!(
            best < m.max_workers,
            "request overhead must bite eventually"
        );
        assert!(t_best < t1, "optimum beats too-few");
        assert!(t_best < t_max, "optimum beats too-many");
    }

    #[test]
    fn too_few_workers_are_bandwidth_bound() {
        let m = paper_model();
        let b = m.breakdown(1);
        assert!(
            b.transfer_s > b.request_s && b.transfer_s > b.compute_s,
            "{:?}",
            b
        );
    }

    #[test]
    fn too_many_workers_are_request_bound() {
        let m = paper_model();
        let b = m.breakdown(256);
        assert!(b.request_s > b.transfer_s, "{:?}", b);
    }

    #[test]
    fn more_data_wants_more_workers() {
        let small = TuningModel {
            data_bytes: 100e6,
            ..paper_model()
        };
        let large = TuningModel {
            data_bytes: 10e9,
            ..paper_model()
        };
        assert!(
            small.best_workers() <= large.best_workers(),
            "small {} vs large {}",
            small.best_workers(),
            large.best_workers()
        );
    }

    #[test]
    fn slower_ops_budget_wants_fewer_workers() {
        let slow = TuningModel {
            ops_per_sec: 300.0,
            ..paper_model()
        };
        let fast = TuningModel {
            ops_per_sec: 30_000.0,
            ..paper_model()
        };
        assert!(slow.best_workers() <= fast.best_workers());
    }

    #[test]
    fn cost_grows_with_workers_at_the_tail() {
        let m = paper_model();
        let c8 = m.cost_dollars(8, 2.0, 0.000017, 0.005, 0.0004);
        let c256 = m.cost_dollars(256, 2.0, 0.000017, 0.005, 0.0004);
        assert!(c256 > c8, "request costs must dominate eventually");
        assert!(c8 > 0.0);
    }

    #[test]
    fn budget_constrained_tuning_trades_latency_for_cost() {
        let m = paper_model();
        let prices = TuningPrices::default();
        let unconstrained = m.best_workers();
        let unconstrained_cost = m.cost_with(unconstrained, &prices);
        // A budget at half the unconstrained cost must pick fewer (or
        // equal) workers and stay within budget.
        let budget = unconstrained_cost / 2.0;
        let constrained = m.best_workers_under_budget(budget, &prices);
        assert!(constrained <= unconstrained);
        assert!(m.cost_with(constrained, &prices) <= budget + 1e-12);
        // An enormous budget reproduces the latency optimum.
        assert_eq!(m.best_workers_under_budget(1e9, &prices), unconstrained);
    }

    #[test]
    fn impossible_budget_falls_back_to_cheapest() {
        let m = paper_model();
        let prices = TuningPrices::default();
        let w = m.best_workers_under_budget(0.0, &prices);
        let cost = m.cost_with(w, &prices);
        for other in 1..=m.max_workers {
            assert!(cost <= m.cost_with(other, &prices) + 1e-12);
        }
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let m = paper_model();
        let frontier = m.pareto(&TuningPrices::default());
        assert!(!frontier.is_empty());
        // Sorted by workers; along the frontier cost rises and latency
        // falls (no dominated points).
        for pair in frontier.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].2 <= pair[1].2 + 1e-12, "cost must not fall");
            assert!(pair[0].1 >= pair[1].1 - 1e-12, "latency must not rise");
        }
        // The latency optimum is on the frontier.
        let best = m.best_workers();
        assert!(frontier.iter().any(|p| p.0 == best));
    }

    #[test]
    fn probe_measures_configured_parameters() {
        let mut sim = Sim::new();
        let cfg = StoreConfig::default();
        let expected_lat = cfg.first_byte_latency.as_secs_f64();
        let expected_bw = cfg.per_connection_bw.as_bytes_per_sec();
        let store = ObjectStore::install(&mut sim, cfg);
        store.create_bucket("data").expect("bucket");
        let out: Arc<Mutex<Option<Autotuner>>> = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        let store2 = Arc::clone(&store);
        sim.spawn("prober", move |ctx| {
            let tuner = Autotuner::probe(ctx, &store2, "data").expect("probe");
            *out2.lock() = Some(tuner);
        });
        sim.run().expect("sim ok");
        let tuner = out.lock().take().expect("probe ran");
        assert!(
            (tuner.measured_latency_s - expected_lat).abs() / expected_lat < 0.05,
            "latency {} vs {}",
            tuner.measured_latency_s,
            expected_lat
        );
        assert!(
            (tuner.measured_conn_bw - expected_bw).abs() / expected_bw < 0.15,
            "bw {} vs {}",
            tuner.measured_conn_bw,
            expected_bw
        );
    }

    #[test]
    #[should_panic(expected = "workers must be positive")]
    fn zero_workers_breakdown_panics() {
        paper_model().breakdown(0);
    }
}
