//! Shuffle operator errors.

use std::fmt;

use faaspipe_exchange::ExchangeError;
use faaspipe_store::StoreError;

/// Errors from the shuffle/sort operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleError {
    /// An object-store request failed (possibly after retries).
    Store(StoreError),
    /// A data-exchange backend failed (possibly after retries).
    Exchange(ExchangeError),
    /// Intermediate data failed to deserialize.
    Corrupt {
        /// What was being decoded.
        what: &'static str,
    },
    /// The configuration is unusable (zero workers, no input, ...).
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A task (function invocation) kept failing after re-invocations.
    TaskFailed {
        /// Which phase the task belonged to.
        phase: &'static str,
        /// The final failure message.
        message: String,
    },
}

impl fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShuffleError::Store(e) => write!(f, "store error: {}", e),
            ShuffleError::Exchange(e) => write!(f, "exchange error: {}", e),
            ShuffleError::Corrupt { what } => write!(f, "corrupt {} data", what),
            ShuffleError::BadConfig { reason } => write!(f, "bad shuffle config: {}", reason),
            ShuffleError::TaskFailed { phase, message } => {
                write!(f, "{} task failed after retries: {}", phase, message)
            }
        }
    }
}

impl std::error::Error for ShuffleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShuffleError::Store(e) => Some(e),
            ShuffleError::Exchange(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ShuffleError {
    fn from(e: StoreError) -> Self {
        ShuffleError::Store(e)
    }
}

impl From<ExchangeError> for ShuffleError {
    fn from(e: ExchangeError) -> Self {
        ShuffleError::Exchange(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ShuffleError::from(StoreError::NoSuchBucket { bucket: "b".into() });
        assert!(e.to_string().contains("no such bucket"));
        assert!(e.source().is_some());
        let e = ShuffleError::BadConfig {
            reason: "zero workers".into(),
        };
        assert!(e.to_string().contains("zero workers"));
    }
}
