//! Calibrated CPU-work model.
//!
//! Function and VM bodies perform real data transformations but charge
//! *virtual* CPU time. The charge is `modelled_bytes / throughput`, where
//! the throughputs below are calibrated to a single modern x86 vCPU
//! running the corresponding Rust kernels (sorting ~100 MB/s including
//! parse+serialize, k-way merging faster, METHCOMP encoding slower than
//! plain merging, LZ77+Huffman much slower). EXPERIMENTS.md records how
//! this calibration maps onto the paper's absolute numbers.

use faaspipe_des::SimDuration;

/// Per-vCPU throughputs (MiB/s) for the pipeline's compute kernels.
#[derive(Debug, Clone)]
pub struct WorkModel {
    /// Local sort of binary records (parse + sort + serialize).
    pub sort_mibps: f64,
    /// Range-partitioning a locally sorted buffer.
    pub partition_mibps: f64,
    /// K-way merging sorted runs.
    pub merge_mibps: f64,
    /// METHCOMP columnar encoding.
    pub methcomp_encode_mibps: f64,
    /// METHCOMP decoding.
    pub methcomp_decode_mibps: f64,
    /// gzip-class LZ77+Huffman encoding.
    pub gzip_encode_mibps: f64,
    /// Parsing bedMethyl text into records.
    pub parse_mibps: f64,
    /// Multiplier on all modelled byte counts, mirroring the store's
    /// `size_scale` so a physically small run charges full-scale compute.
    pub size_scale: f64,
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel {
            sort_mibps: 95.0,
            partition_mibps: 160.0,
            merge_mibps: 180.0,
            methcomp_encode_mibps: 85.0,
            methcomp_decode_mibps: 110.0,
            gzip_encode_mibps: 36.0,
            parse_mibps: 140.0,
            size_scale: 1.0,
        }
    }
}

impl WorkModel {
    /// Returns the model with a different size scale.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite.
    pub fn with_size_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "size_scale must be positive and finite"
        );
        self.size_scale = scale;
        self
    }

    fn time(&self, real_bytes: usize, mibps: f64) -> SimDuration {
        let modelled = real_bytes as f64 * self.size_scale;
        SimDuration::from_secs_f64(modelled / (mibps * 1024.0 * 1024.0))
    }

    /// Single-vCPU time to locally sort `real_bytes` of records.
    pub fn sort_time(&self, real_bytes: usize) -> SimDuration {
        self.time(real_bytes, self.sort_mibps)
    }

    /// Single-vCPU time to partition `real_bytes`.
    pub fn partition_time(&self, real_bytes: usize) -> SimDuration {
        self.time(real_bytes, self.partition_mibps)
    }

    /// Single-vCPU time to merge `real_bytes` of sorted runs.
    pub fn merge_time(&self, real_bytes: usize) -> SimDuration {
        self.time(real_bytes, self.merge_mibps)
    }

    /// Single-vCPU time to METHCOMP-encode `real_bytes`.
    pub fn methcomp_encode_time(&self, real_bytes: usize) -> SimDuration {
        self.time(real_bytes, self.methcomp_encode_mibps)
    }

    /// Single-vCPU time to METHCOMP-decode `real_bytes` (of decoded size).
    pub fn methcomp_decode_time(&self, real_bytes: usize) -> SimDuration {
        self.time(real_bytes, self.methcomp_decode_mibps)
    }

    /// Single-vCPU time to gzip-encode `real_bytes`.
    pub fn gzip_encode_time(&self, real_bytes: usize) -> SimDuration {
        self.time(real_bytes, self.gzip_encode_mibps)
    }

    /// Single-vCPU time to parse `real_bytes` of BED text.
    pub fn parse_time(&self, real_bytes: usize) -> SimDuration {
        self.time(real_bytes, self.parse_mibps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_scale_linearly_with_bytes() {
        let m = WorkModel::default();
        let t1 = m.sort_time(1024 * 1024);
        let t2 = m.sort_time(2 * 1024 * 1024);
        assert_eq!(t2.as_nanos(), 2 * t1.as_nanos());
    }

    #[test]
    fn size_scale_multiplies_charge() {
        let base = WorkModel::default();
        let scaled = WorkModel::default().with_size_scale(10.0);
        assert_eq!(
            scaled.sort_time(1000).as_nanos(),
            base.sort_time(10_000).as_nanos()
        );
    }

    #[test]
    fn kernel_order_is_sane() {
        let m = WorkModel::default();
        // gzip is the slowest kernel, merging among the fastest.
        assert!(m.gzip_encode_mibps < m.methcomp_encode_mibps);
        assert!(m.sort_mibps < m.merge_mibps);
    }

    #[test]
    #[should_panic(expected = "size_scale")]
    fn rejects_bad_scale() {
        WorkModel::default().with_size_scale(f64::NAN);
    }
}
