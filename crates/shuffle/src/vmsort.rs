//! The VM-driven sort baseline (the hybrid pipeline's shuffle stage).
//!
//! Instead of scattering data between functions through the store, a
//! single large VM downloads every input chunk over its one NIC, sorts
//! in memory with all cores, and uploads the sorted runs. No all-to-all
//! traffic — but the pipeline pays the provisioning delay and is limited
//! to one machine's bandwidth and cores.

use std::sync::Arc;

use bytes::Bytes;

use faaspipe_des::{Ctx, SimDuration, SimTime};
use faaspipe_store::ObjectStore;
use faaspipe_vm::{VmFleet, VmProfile};

use crate::error::ShuffleError;
use crate::plan::{RunInfo, SortManifest};
use crate::record::SortRecord;
use crate::sort::{phase_begin, phase_end};
use crate::work::WorkModel;
use faaspipe_exchange::with_retry_async;

/// Configuration of one VM-driven sort.
#[derive(Debug, Clone)]
pub struct VmSortConfig {
    /// Bucket holding inputs and outputs.
    pub bucket: String,
    /// Prefix of the input chunk objects.
    pub input_prefix: String,
    /// Prefix for the sorted run objects.
    pub output_prefix: String,
    /// Number of output runs (the downstream encode parallelism).
    pub runs: usize,
    /// Instance type to provision.
    pub profile: VmProfile,
    /// Metrics/billing tag.
    pub tag: String,
    /// CPU-work calibration.
    pub work: WorkModel,
    /// Attempts per store request.
    pub retries: u32,
    /// Release (stop billing) the VM when done.
    pub release: bool,
    /// When set, a [`SortManifest`] is written to this key after the runs.
    pub manifest_key: Option<String>,
}

impl Default for VmSortConfig {
    fn default() -> Self {
        VmSortConfig {
            bucket: "data".to_string(),
            input_prefix: "in/".to_string(),
            output_prefix: "out/".to_string(),
            runs: 8,
            profile: VmProfile::bx2_8x32(),
            tag: "vmsort".to_string(),
            work: WorkModel::default(),
            retries: 3,
            release: true,
            manifest_key: None,
        }
    }
}

/// Outcome of a VM-driven sort.
#[derive(Debug, Clone)]
pub struct VmSortStats {
    /// Total input bytes (real, unscaled).
    pub input_bytes: u64,
    /// Total output bytes (real, unscaled).
    pub output_bytes: u64,
    /// Keys of the sorted run objects, in global order.
    pub runs: Vec<String>,
    /// Time spent provisioning the VM.
    pub provision_duration: SimDuration,
    /// Time spent downloading inputs.
    pub download_duration: SimDuration,
    /// Time spent sorting in memory.
    pub sort_duration: SimDuration,
    /// Time spent uploading runs.
    pub upload_duration: SimDuration,
    /// When the operator started (provisioning request).
    pub started: SimTime,
    /// When the operator finished.
    pub finished: SimTime,
}

impl VmSortStats {
    /// Total wall-clock of the operator.
    pub fn total_duration(&self) -> SimDuration {
        self.finished.saturating_duration_since(self.started)
    }
}

/// Runs the VM-driven sort from the calling (driver) process.
///
/// # Errors
/// [`ShuffleError`] on configuration problems, store failures that
/// survive retries, or corrupt input data.
pub fn vm_sort<R: SortRecord>(
    ctx: &mut Ctx,
    fleet: &VmFleet,
    store: &Arc<ObjectStore>,
    cfg: &VmSortConfig,
) -> Result<VmSortStats, ShuffleError> {
    faaspipe_des::run_blocking(vm_sort_async::<R>(ctx, fleet, store, cfg))
}

/// Async form of [`vm_sort`] for stackless processes.
///
/// # Errors
/// Same as [`vm_sort`].
pub async fn vm_sort_async<R: SortRecord>(
    ctx: &mut Ctx,
    fleet: &VmFleet,
    store: &Arc<ObjectStore>,
    cfg: &VmSortConfig,
) -> Result<VmSortStats, ShuffleError> {
    if cfg.runs == 0 {
        return Err(ShuffleError::BadConfig {
            reason: "runs must be positive".to_string(),
        });
    }
    let started = ctx.now();
    let trace = store.trace_sink();
    let vm = fleet.provision_async(ctx, cfg.profile.clone()).await;
    let provisioned = ctx.now();
    // All VM traffic flows through the instance's single NIC.
    let client = store
        .connect_via_async(ctx, cfg.tag.clone(), &[vm.nic])
        .await;

    let p_download = phase_begin(ctx, &trace, "download", SimDuration::ZERO).await;
    let inputs = client
        .list_async(ctx, &cfg.bucket, &cfg.input_prefix)
        .await?;
    if inputs.is_empty() {
        return Err(ShuffleError::BadConfig {
            reason: format!("no inputs under '{}'", cfg.input_prefix),
        });
    }
    // Chunks stay in wire form; the kernel sorts over them in place.
    let mut chunks: Vec<Bytes> = Vec::with_capacity(inputs.len());
    let mut input_bytes = 0u64;
    for obj in &inputs {
        let data = with_retry_async(ctx, cfg.retries, async |c: &mut Ctx| {
            client.get_async(c, &cfg.bucket, &obj.key).await
        })
        .await?;
        input_bytes += data.len() as u64;
        chunks.push(data);
    }
    phase_end(ctx, &trace, p_download);
    let downloaded = ctx.now();

    // In-memory sort using every core. The zero-copy kernel validates
    // and sorts the wire bytes directly; its (chunk, offset) tie-break
    // reproduces the stable decoded-record sort byte for byte. The
    // kernel itself runs on the simulator's offload pool.
    let p_sort = phase_begin(ctx, &trace, "sort", SimDuration::ZERO).await;
    let sorted_bytes = {
        let chunks = std::mem::take(&mut chunks);
        let sorted: Result<Vec<u8>, ShuffleError> = vm
            .compute_parallel_offload(
                ctx,
                cfg.work.sort_time(input_bytes as usize),
                cfg.profile.vcpus,
                move || crate::kernel::sort_concat::<R>(&chunks),
            )
            .await;
        Bytes::from(sorted?)
    };
    phase_end(ctx, &trace, p_sort);
    let sorted = ctx.now();

    // Upload equal-size record ranges as the sorted runs — O(1) slices
    // of the one sorted buffer, so the retried PUTs clone refcounts,
    // not record bytes.
    let p_upload = phase_begin(ctx, &trace, "upload", SimDuration::ZERO).await;
    let mut run_keys = Vec::with_capacity(cfg.runs);
    let mut run_infos = Vec::with_capacity(cfg.runs);
    let total_records = sorted_bytes.len() / R::WIRE_SIZE;
    let per = total_records.div_ceil(cfg.runs).max(1);
    let mut output_bytes = 0u64;
    for j in 0..cfg.runs {
        let lo = (j * per).min(total_records);
        let hi = ((j + 1) * per).min(total_records);
        let data = sorted_bytes.slice(lo * R::WIRE_SIZE..hi * R::WIRE_SIZE);
        output_bytes += data.len() as u64;
        let key = format!("{}{:05}", cfg.output_prefix, j);
        run_infos.push(RunInfo {
            key: key.clone(),
            records: (hi - lo) as u64,
            bytes: data.len() as u64,
        });
        with_retry_async(ctx, cfg.retries, async |c: &mut Ctx| {
            client.put_async(c, &cfg.bucket, &key, data.clone()).await
        })
        .await?;
        run_keys.push(key);
    }
    if let Some(manifest_key) = &cfg.manifest_key {
        let manifest = SortManifest {
            operator: "vm".to_string(),
            workers: 1,
            input_bytes,
            output_bytes,
            runs: run_infos,
        };
        manifest
            .write_async(ctx, &client, &cfg.bucket, manifest_key)
            .await?;
    }
    phase_end(ctx, &trace, p_upload);
    let finished = ctx.now();
    if cfg.release {
        fleet.release(ctx, vm);
    }
    Ok(VmSortStats {
        input_bytes,
        output_bytes,
        runs: run_keys,
        provision_duration: provisioned.saturating_duration_since(started),
        download_duration: downloaded.saturating_duration_since(provisioned),
        sort_duration: sorted.saturating_duration_since(downloaded),
        upload_duration: finished.saturating_duration_since(sorted),
        started,
        finished,
    })
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;
    use faaspipe_store::StoreConfig;
    use parking_lot::Mutex;

    fn run_vm_sort(values: Vec<u64>, chunks: usize, runs: usize) -> (Vec<u64>, VmSortStats) {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let fleet = VmFleet::new();
        store.create_bucket("data").expect("bucket");
        let per = values.len().div_ceil(chunks);
        let store_up = Arc::clone(&store);
        let values2 = values.clone();
        sim.spawn("uploader", move |ctx| {
            let client = store_up.connect(ctx, "upload");
            for (i, chunk) in values2.chunks(per).enumerate() {
                let data = SortRecord::write_all(chunk);
                client
                    .put(ctx, "data", &format!("in/{:04}", i), Bytes::from(data))
                    .expect("upload");
            }
        });
        let result: Arc<Mutex<Option<(Vec<u64>, VmSortStats)>>> = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(120));
            let cfg = VmSortConfig {
                runs,
                ..VmSortConfig::default()
            };
            let stats = vm_sort::<u64>(ctx, &fleet, &store2, &cfg).expect("vm sort");
            let client = store2.connect(ctx, "verify");
            let mut all = Vec::new();
            for run in &stats.runs {
                let data = client.get(ctx, "data", run).expect("run exists");
                let mut records: Vec<u64> = SortRecord::read_all(&data).expect("decode");
                all.append(&mut records);
            }
            *result2.lock() = Some((all, stats));
        });
        sim.run().expect("sim ok");
        let out = result.lock().take().expect("driver ran");
        out
    }

    #[test]
    fn vm_sort_produces_global_order() {
        let mut values: Vec<u64> = (0..5_000u64).map(|i| (i * 48_271) % 100_000).collect();
        let (sorted, stats) = run_vm_sort(values.clone(), 4, 8);
        values.sort_unstable();
        assert_eq!(sorted, values);
        assert_eq!(stats.runs.len(), 8);
        assert_eq!(stats.input_bytes, stats.output_bytes);
    }

    #[test]
    fn provisioning_dominates_small_inputs() {
        let values: Vec<u64> = (0..1_000u64).rev().collect();
        let (_, stats) = run_vm_sort(values, 2, 2);
        assert!(
            stats.provision_duration > stats.download_duration + stats.sort_duration,
            "tiny sort should be dominated by the boot delay: {:?}",
            stats
        );
        assert_eq!(
            stats.total_duration(),
            stats.provision_duration
                + stats.download_duration
                + stats.sort_duration
                + stats.upload_duration
        );
    }

    #[test]
    fn zero_runs_rejected() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let fleet = VmFleet::new();
        store.create_bucket("data").expect("bucket");
        sim.spawn("driver", move |ctx| {
            let cfg = VmSortConfig {
                runs: 0,
                ..VmSortConfig::default()
            };
            let err = vm_sort::<u64>(ctx, &fleet, &store, &cfg).expect_err("bad cfg");
            assert!(matches!(err, ShuffleError::BadConfig { .. }));
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn vm_sort_manifest_matches_runs() {
        let values: Vec<u64> = (0..1_500u64).rev().collect();
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let fleet = VmFleet::new();
        store.create_bucket("data").expect("bucket");
        store
            .put_untimed(
                "data",
                "in/0000",
                Bytes::from(SortRecord::write_all(&values)),
            )
            .expect("stage");
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            let cfg = VmSortConfig {
                runs: 3,
                manifest_key: Some("out/_manifest.json".to_string()),
                ..VmSortConfig::default()
            };
            vm_sort::<u64>(ctx, &fleet, &store2, &cfg).expect("vm sort");
            let client = store2.connect(ctx, "verify");
            let manifest = SortManifest::read(ctx, &client, "data", "out/_manifest.json")
                .expect("manifest readable");
            assert_eq!(manifest.operator, "vm");
            assert_eq!(manifest.total_records(), 1_500);
            assert_eq!(manifest.runs.len(), 3);
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn vm_is_billed_for_the_sort_span() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let fleet = VmFleet::new();
        store.create_bucket("data").expect("bucket");
        let values: Vec<u64> = (0..2_000u64).rev().collect();
        let store_up = Arc::clone(&store);
        let v2 = values.clone();
        sim.spawn("uploader", move |ctx| {
            let client = store_up.connect(ctx, "upload");
            let data = SortRecord::write_all(&v2);
            client
                .put(ctx, "data", "in/0000", Bytes::from(data))
                .expect("upload");
        });
        let fleet2 = fleet.clone();
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(60));
            vm_sort::<u64>(ctx, &fleet2, &store2, &VmSortConfig::default()).expect("vm sort");
        });
        sim.run().expect("sim ok");
        let recs = fleet.records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].released.is_some(), "vm released after sort");
    }
}
