//! The serverless shuffle/sort operator (Primula's data path).
//!
//! ```text
//!   inputs (unsorted chunks)          intermediates              outputs
//!   in/0 in/1 ... in/N-1      part/{mapper}/{reducer}      out/0 ... out/W-1
//!        │   sample                  (W × W objects)            (sorted runs)
//!        ▼                                                        ▲
//!   W mapper functions ── local sort ── range partition ── W reducer functions
//!                     (partitions move through a DataExchange backend)
//! ```
//!
//! The all-to-all hand-off between mappers and reducers goes through a
//! pluggable [`DataExchange`] backend (see [`faaspipe_exchange`]). The
//! default is the paper's object-storage pattern: every byte of
//! intermediate data really moves through the simulated store, contending
//! for its per-connection bandwidth, aggregate backbone, and
//! operations/s budget. Alternative backends relay through a provisioned
//! VM or stream function-to-function.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe_des::{Ctx, LocalBoxFuture, ProcessId, SimDuration, SimTime};
use faaspipe_exchange::{
    with_retry_async, DataExchange, ExchangeEnv, ExchangeStrategy, ObjectStoreExchange,
};
use faaspipe_faas::{FunctionEnv, FunctionPlatform};
use faaspipe_store::ObjectStore;
use faaspipe_trace::{Category, SpanId, TraceSink};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::ShuffleError;
use crate::kernel;
use crate::partitioner::RangePartitioner;
use crate::plan::{RunInfo, SortManifest};
use crate::record::SortRecord;
use crate::sampler::Reservoir;
use crate::work::WorkModel;

/// SplitMix64 finalizer — spreads small integers (mapper indices) into
/// well-mixed rng seeds.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Configuration of one serverless sort run.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Number of mapper functions (equal to the number of reducers) — the
    /// "number of functions in the shuffle stage" the paper tunes.
    pub workers: usize,
    /// Bucket holding inputs, intermediates, and outputs.
    pub bucket: String,
    /// Prefix of the input chunk objects (binary records).
    pub input_prefix: String,
    /// Prefix written with the sorted run objects (`{prefix}{j:05}`).
    pub output_prefix: String,
    /// Prefix for intermediate partition objects.
    pub part_prefix: String,
    /// Reservoir capacity per sampler.
    pub sample_capacity: usize,
    /// Bytes range-read from each input chunk when sampling.
    pub sample_bytes: u64,
    /// Seed for the samplers' reservoir draws. Each mapper derives its
    /// rng from this seed and its *logical* index — never from its
    /// process id — so the partition boundaries are a pure function of
    /// input data and configuration. That keeps sorted output
    /// byte-identical across exchange backends even when a backend runs
    /// helper processes (relay provisioners) that perturb process-id
    /// allocation, and makes re-invoked sample tasks idempotent.
    pub sample_seed: u64,
    /// Metrics/billing tag.
    pub tag: String,
    /// CPU-work calibration.
    pub work: WorkModel,
    /// Attempts per store request (fault-injection resilience).
    pub retries: u32,
    /// Driver-side orchestration overhead charged at the start of each
    /// phase: job serialization/upload, invocation fan-out, and the
    /// COS-polling result detection of a Lithops-style client. Unbilled
    /// (the driver is not a function), but on the critical path.
    pub orchestration: SimDuration,
    /// Object-store layout used when `backend` is `None` (the default
    /// [`ObjectStoreExchange`] path).
    pub exchange: ExchangeStrategy,
    /// The intermediate data-exchange backend. `None` (the default)
    /// exchanges through the object store under `part_prefix` with the
    /// `exchange` layout; pass a [`VmRelayExchange`](faaspipe_exchange::VmRelayExchange)
    /// or [`DirectExchange`](faaspipe_exchange::DirectExchange) to move
    /// the shuffle off the store.
    pub backend: Option<Arc<dyn DataExchange>>,
    /// Invocation attempts per task: crashed functions are re-invoked up
    /// to this many times (Lithops-style task retry), on top of the
    /// per-request `retries`.
    pub task_attempts: u32,
    /// When set, a [`SortManifest`] is written to this key after the runs
    /// (one extra timed PUT).
    pub manifest_key: Option<String>,
    /// Concurrent transfers per function (the intra-function parallel
    /// I/O window). `1` reproduces the historical strictly-sequential
    /// data plane bit-for-bit; higher values fan sample range-reads
    /// out, overlap mapper chunk downloads with decode/sort compute,
    /// window reducer gathers, and parallelise exchange writes — each
    /// connection gets its own store link, so per-function throughput
    /// climbs toward the NIC cap (or the store's aggregate cap).
    pub io_concurrency: usize,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            workers: 8,
            bucket: "data".to_string(),
            input_prefix: "in/".to_string(),
            output_prefix: "out/".to_string(),
            part_prefix: "part/".to_string(),
            sample_capacity: 512,
            sample_bytes: 64 * 1024,
            sample_seed: 0x5A3D_5EED,
            tag: "sort".to_string(),
            work: WorkModel::default(),
            retries: 3,
            orchestration: SimDuration::ZERO,
            exchange: ExchangeStrategy::default(),
            backend: None,
            task_attempts: 2,
            manifest_key: None,
            io_concurrency: 4,
        }
    }
}

/// Outcome of a serverless sort.
#[derive(Debug, Clone)]
pub struct SortStats {
    /// Workers used.
    pub workers: usize,
    /// Total input bytes (real, unscaled).
    pub input_bytes: u64,
    /// Total output bytes (real, unscaled).
    pub output_bytes: u64,
    /// Keys of the sorted run objects, in global order.
    pub runs: Vec<String>,
    /// Virtual duration of the sampling phase.
    pub sample_duration: SimDuration,
    /// Virtual duration of the map (sort + scatter) phase.
    pub map_duration: SimDuration,
    /// Virtual duration of the reduce (gather + merge) phase.
    pub reduce_duration: SimDuration,
    /// When the operator started.
    pub started: SimTime,
    /// When the operator finished.
    pub finished: SimTime,
}

impl SortStats {
    /// Total wall-clock of the operator.
    pub fn total_duration(&self) -> SimDuration {
        self.finished.saturating_duration_since(self.started)
    }
}

/// Naive k-way merge of individually sorted runs into one sorted
/// vector. Kept as the reference implementation the streaming merge's
/// property test compares against.
#[cfg(test)]
pub(crate) fn kway_merge<R: SortRecord>(runs: Vec<Vec<R>>) -> Vec<R> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq)]
    struct Head<K: Ord>(K, usize);
    impl<K: Ord> PartialOrd for Head<K> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K: Ord> Ord for Head<K> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (&self.0, self.1).cmp(&(&other.0, other.1))
        }
    }

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; runs.len()];
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        if let Some(r) = run.first() {
            heap.push(Reverse(Head(r.key(), i)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(Head(_, i))) = heap.pop() {
        let rec = runs[i][cursors[i]].clone();
        cursors[i] += 1;
        out.push(rec);
        if cursors[i] < runs[i].len() {
            heap.push(Reverse(Head(runs[i][cursors[i]].key(), i)));
        }
    }
    out
}

/// Streaming k-way merge straight over the runs' wire bytes: a cursor
/// per run and a binary heap of run heads, copying each record's wire
/// form directly into the output buffer. Never materializes the decoded
/// record vectors, so peak memory is one key per run plus the output —
/// the difference between O(total records) and O(runs) scratch on
/// W=128 sweeps. Ties break on run index, making the output identical
/// to a stable `kway_merge` over the decoded runs.
///
/// # Errors
/// [`ShuffleError::Corrupt`] if any run is not a whole number of valid
/// records.
pub fn streaming_merge<R: SortRecord>(runs: &[Bytes]) -> Result<Vec<u8>, ShuffleError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let rec = R::WIRE_SIZE;
    let mut total = 0usize;
    for run in runs {
        if !run.len().is_multiple_of(rec) {
            return Err(ShuffleError::Corrupt {
                what: "record buffer length",
            });
        }
        total += run.len();
    }

    #[derive(PartialEq, Eq)]
    struct Head<K: Ord>(K, usize);
    impl<K: Ord> PartialOrd for Head<K> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K: Ord> Ord for Head<K> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (&self.0, self.1).cmp(&(&other.0, other.1))
        }
    }

    let key_at = |run: &Bytes, cursor: usize| -> Result<R::Key, ShuffleError> {
        R::key_from_wire(&run[cursor..cursor + rec])
    };

    let mut cursors = vec![0usize; runs.len()];
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        if !run.is_empty() {
            heap.push(Reverse(Head(key_at(run, 0)?, i)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(Head(_, i))) = heap.pop() {
        let cursor = cursors[i];
        out.extend_from_slice(&runs[i][cursor..cursor + rec]);
        cursors[i] = cursor + rec;
        if cursors[i] < runs[i].len() {
            heap.push(Reverse(Head(key_at(&runs[i], cursors[i])?, i)));
        }
    }
    Ok(out)
}

/// Splits a mapper's assigned `(key, offset, len)` spans into
/// record-aligned download chunks sized so a window of `k` transfers
/// yields roughly two chunks per slot (`total / 2k`) — small enough to
/// keep the pipeline full, large enough to amortize per-request
/// latency. Spans are split in order, so concatenating the chunk
/// payloads reproduces the sequential read byte for byte.
fn split_chunks(assigned: &[(String, u64, u64)], k: usize, rec: u64) -> Vec<(String, u64, u64)> {
    let total: u64 = assigned.iter().map(|(_, _, len)| len).sum();
    let target = total
        .div_ceil((k * 2) as u64)
        .max(rec)
        .div_ceil(rec)
        .saturating_mul(rec);
    let mut chunks = Vec::new();
    for (key, off, len) in assigned {
        let mut cursor = 0u64;
        while cursor < *len {
            let take = target.min(len - cursor);
            chunks.push((key.clone(), off + cursor, take));
            cursor += take;
        }
    }
    chunks
}

/// Runs the full serverless sort from the calling (driver) process.
///
/// Inputs under `cfg.input_prefix` must be objects of concatenated
/// [`SortRecord`] wire forms. On success the bucket holds
/// `cfg.workers` sorted run objects whose concatenation in key order of
/// `runs` is the globally sorted dataset.
///
/// # Errors
/// [`ShuffleError`] on configuration problems, store failures that
/// survive retries, or corrupt intermediate data.
pub fn serverless_sort<R: SortRecord>(
    ctx: &mut Ctx,
    faas: &Arc<FunctionPlatform>,
    store: &Arc<ObjectStore>,
    cfg: &SortConfig,
) -> Result<SortStats, ShuffleError> {
    faaspipe_des::run_blocking(serverless_sort_async::<R>(ctx, faas, store, cfg))
}

/// Async form of [`serverless_sort`] for stackless (task-backed)
/// drivers. The sync wrapper above is a [`faaspipe_des::run_blocking`]
/// facade over this, so both flavors execute the identical virtual-time
/// schedule.
///
/// # Errors
/// Same contract as [`serverless_sort`].
pub async fn serverless_sort_async<R: SortRecord>(
    ctx: &mut Ctx,
    faas: &Arc<FunctionPlatform>,
    store: &Arc<ObjectStore>,
    cfg: &SortConfig,
) -> Result<SortStats, ShuffleError> {
    if cfg.workers == 0 {
        return Err(ShuffleError::BadConfig {
            reason: "workers must be positive".to_string(),
        });
    }
    let started = ctx.now();
    let driver = store
        .connect_async(ctx, format!("{}/driver", cfg.tag))
        .await;
    let inputs = driver
        .list_async(ctx, &cfg.bucket, &cfg.input_prefix)
        .await?;
    if inputs.is_empty() {
        return Err(ShuffleError::BadConfig {
            reason: format!("no inputs under '{}'", cfg.input_prefix),
        });
    }
    let input_keys: Vec<String> = inputs.iter().map(|o| o.key.clone()).collect();
    let input_bytes: u64 = inputs.iter().map(|o| o.len.as_u64()).sum();
    let w = cfg.workers;
    // Phase spans nest under whatever span the driver is inside (the
    // stage span when run from the executor).
    let trace = store.trace_sink();
    let cfg = Arc::new(cfg.clone());
    // The exchange backend carries all mapper→reducer intermediates.
    // Backing resources (the relay VM's provisioning delay, for one) are
    // paid here, before any function is invoked — unless the backend
    // pre-warms, in which case `prepare` returns immediately and the
    // boot overlaps the sample phase below; the first map-phase request
    // then blocks for whatever boot time the sampling didn't hide.
    let backend: Arc<dyn DataExchange> = match &cfg.backend {
        Some(b) => Arc::clone(b),
        None => Arc::new(ObjectStoreExchange::new(
            Arc::clone(store),
            cfg.bucket.as_str(),
            cfg.part_prefix.as_str(),
            cfg.exchange,
        )),
    };
    backend.prepare_async(ctx, w, w).await?;

    // ---- Phase 0: sample keys with range reads (one fn per mapper). ----
    let p_sample = phase_begin(ctx, &trace, "sample", cfg.orchestration).await;
    let samples: Arc<Mutex<Vec<R::Key>>> = Arc::new(Mutex::new(Vec::new()));
    let mut tasks: Vec<TaskFactory> = Vec::new();
    for m in 0..w {
        let assigned: Arc<Vec<(String, u64)>> = Arc::new(
            input_keys
                .iter()
                .enumerate()
                .filter(|(i, _)| i % w == m)
                .map(|(i, k)| (k.clone(), inputs[i].len.as_u64()))
                .collect(),
        );
        if assigned.is_empty() {
            continue;
        }
        let faas = Arc::clone(faas);
        let store = Arc::clone(store);
        let samples = Arc::clone(&samples);
        let cfg = Arc::clone(&cfg);
        tasks.push(Box::new(move |ctx| {
            let store = Arc::clone(&store);
            let samples = Arc::clone(&samples);
            let cfg = Arc::clone(&cfg);
            let assigned = Arc::clone(&assigned);
            let tag = format!("{}/sample", cfg.tag);
            spawn_invocation(
                Arc::clone(&faas),
                ctx,
                "sample",
                tag,
                async move |fctx: &mut Ctx, env: FunctionEnv| {
                    let mut reservoir = Reservoir::new(cfg.sample_capacity);
                    // Seeded from the logical mapper index, and offered
                    // to in assignment order on both I/O paths below, so
                    // the partition boundaries are invariant to
                    // `io_concurrency`.
                    let mut rng = SmallRng::seed_from_u64(cfg.sample_seed ^ splitmix(m as u64));
                    if cfg.io_concurrency <= 1 {
                        let client = store
                            .connect_via_async(fctx, format!("{}/sample", cfg.tag), &[env.nic])
                            .await;
                        for (key, len) in assigned.iter() {
                            let span = cfg.sample_bytes.min(*len);
                            let span = span - span % R::WIRE_SIZE as u64;
                            if span == 0 {
                                continue;
                            }
                            let data = with_retry_async(fctx, cfg.retries, async |c: &mut Ctx| {
                                client.get_range_async(c, &cfg.bucket, key, 0, span).await
                            })
                            .await
                            .unwrap_or_else(|e| panic!("sample read failed: {}", e));
                            env.compute_async(fctx, cfg.work.parse_time(data.len()))
                                .await;
                            // Keys feed the reservoir straight off the
                            // wire, in buffer order — same draws as the
                            // decoded-record loop this replaces.
                            kernel::scan_keys::<R>(&data, |k| reservoir.offer(k, &mut rng))
                                .unwrap_or_else(|e| panic!("sample decode failed: {}", e));
                        }
                    } else {
                        // Fan the per-input range reads out; parsing
                        // serializes on the single vCPU while other
                        // reads stream in. The reservoir draws stay on
                        // this process, in assignment order.
                        let trace = store.trace_sink();
                        let parent = trace.current(fctx.pid());
                        let cpu = fctx.sem_create_async(1).await;
                        let mut jobs = Vec::new();
                        for (key, len) in assigned.iter() {
                            let span = cfg.sample_bytes.min(*len);
                            let span = span - span % R::WIRE_SIZE as u64;
                            if span == 0 {
                                continue;
                            }
                            let store = Arc::clone(&store);
                            let cfg = Arc::clone(&cfg);
                            let env = env.clone();
                            let trace = trace.clone();
                            let key = key.clone();
                            jobs.push(async move |cctx: &mut Ctx| {
                                trace.enter(cctx.pid(), parent);
                                let client = store
                                    .connect_via_async(
                                        cctx,
                                        format!("{}/sample", cfg.tag),
                                        &[env.nic],
                                    )
                                    .await;
                                let data =
                                    with_retry_async(cctx, cfg.retries, async |c: &mut Ctx| {
                                        client.get_range_async(c, &cfg.bucket, &key, 0, span).await
                                    })
                                    .await
                                    .unwrap_or_else(|e| panic!("sample read failed: {}", e));
                                cctx.sem_acquire_async(cpu, 1).await;
                                env.compute_async(cctx, cfg.work.parse_time(data.len()))
                                    .await;
                                cctx.sem_release_async(cpu, 1).await;
                                trace.exit(cctx.pid());
                                data
                            });
                        }
                        let name = format!("{}/sample-io", cfg.tag);
                        let chunks = fctx
                            .fan_out_async(&name, cfg.io_concurrency, jobs)
                            .await
                            .unwrap_or_else(|e| panic!("sample read failed: {}", e));
                        // Keys stream off the wire in assignment order —
                        // the reservoir sees the exact sequence the
                        // decoded-record loop produced.
                        for data in &chunks {
                            kernel::scan_keys::<R>(data, |k| reservoir.offer(k, &mut rng))
                                .unwrap_or_else(|e| panic!("sample decode failed: {}", e));
                        }
                    }
                    samples.lock().extend(reservoir.into_items());
                },
            )
        }));
    }
    run_phase(ctx, "sample", cfg.task_attempts, &tasks).await?;
    phase_end(ctx, &trace, p_sample);
    let sample_done = ctx.now();
    let sample = std::mem::take(&mut *samples.lock());
    let partitioner = Arc::new(RangePartitioner::from_sample(sample, w));

    // ---- Phase 1: map — local sort, range partition, exchange write. ----
    let p_map = phase_begin(ctx, &trace, "map", cfg.orchestration).await;
    let map_bytes: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    // Byte-range input assignment: every mapper reads an equal,
    // record-aligned slice of the input space regardless of how the data
    // is chunked into objects — the map phase parallelises with W, not
    // with the object count (Primula reads partitions with range GETs).
    let spans = assign_spans(&inputs, w, R::WIRE_SIZE as u64);
    let mut tasks: Vec<TaskFactory> = Vec::new();
    for (m, span) in spans.iter().enumerate() {
        let assigned: Arc<Vec<(String, u64, u64)>> = Arc::new(span.clone());
        let faas = Arc::clone(faas);
        let store = Arc::clone(store);
        let partitioner = Arc::clone(&partitioner);
        let cfg = Arc::clone(&cfg);
        let map_bytes = Arc::clone(&map_bytes);
        let backend = Arc::clone(&backend);
        tasks.push(Box::new(move |ctx| {
            let store = Arc::clone(&store);
            let partitioner = Arc::clone(&partitioner);
            let cfg = Arc::clone(&cfg);
            let map_bytes = Arc::clone(&map_bytes);
            let backend = Arc::clone(&backend);
            let assigned = Arc::clone(&assigned);
            let tag = format!("{}/map", cfg.tag);
            spawn_invocation(
                Arc::clone(&faas),
                ctx,
                "map",
                tag,
                async move |fctx: &mut Ctx, env: FunctionEnv| {
                    // Downloaded chunks stay in wire form: the kernel sorts
                    // and partitions views into these buffers, so record
                    // payloads are copied once (chunk → partition bucket)
                    // instead of decoded, sorted, and re-encoded.
                    let mut chunks: Vec<Bytes> = Vec::new();
                    let mut read_bytes = 0usize;
                    if cfg.io_concurrency <= 1 {
                        let client = store
                            .connect_via_async(fctx, format!("{}/map", cfg.tag), &[env.nic])
                            .await;
                        for (key, off, len) in assigned.iter() {
                            let data = with_retry_async(fctx, cfg.retries, async |c: &mut Ctx| {
                                client
                                    .get_range_async(c, &cfg.bucket, key, *off, *len)
                                    .await
                            })
                            .await
                            .unwrap_or_else(|e| panic!("map read failed: {}", e));
                            read_bytes += data.len();
                            chunks.push(data);
                        }
                        env.compute_async(fctx, cfg.work.sort_time(read_bytes))
                            .await;
                    } else {
                        // Double-buffered pipeline: split the assignment into
                        // ~2·K record-aligned chunks, keep K downloads in
                        // flight on separate store connections, and charge
                        // each chunk's share of the sort compute on the
                        // single vCPU as it lands — downloads overlap
                        // compute, compute never overlaps itself. The chunks
                        // concatenate in assignment order, so the record
                        // sequence (and after the kernel's order-preserving
                        // sort below, the output bytes) is identical to the
                        // sequential path.
                        let splits =
                            split_chunks(&assigned, cfg.io_concurrency, R::WIRE_SIZE as u64);
                        let trace = store.trace_sink();
                        let parent = trace.current(fctx.pid());
                        let cpu = fctx.sem_create_async(1).await;
                        let jobs: Vec<_> = splits
                            .into_iter()
                            .map(|(key, off, len)| {
                                let store = Arc::clone(&store);
                                let cfg = Arc::clone(&cfg);
                                let env = env.clone();
                                let trace = trace.clone();
                                async move |cctx: &mut Ctx| {
                                    trace.enter(cctx.pid(), parent);
                                    let client = store
                                        .connect_via_async(
                                            cctx,
                                            format!("{}/map", cfg.tag),
                                            &[env.nic],
                                        )
                                        .await;
                                    let data =
                                        with_retry_async(cctx, cfg.retries, async |c: &mut Ctx| {
                                            client
                                                .get_range_async(c, &cfg.bucket, &key, off, len)
                                                .await
                                        })
                                        .await
                                        .unwrap_or_else(|e| panic!("map read failed: {}", e));
                                    cctx.sem_acquire_async(cpu, 1).await;
                                    env.compute_async(cctx, cfg.work.sort_time(data.len()))
                                        .await;
                                    cctx.sem_release_async(cpu, 1).await;
                                    trace.exit(cctx.pid());
                                    data
                                }
                            })
                            .collect();
                        let name = format!("{}/map-io", cfg.tag);
                        chunks = fctx
                            .fan_out_async(&name, cfg.io_concurrency, jobs)
                            .await
                            .unwrap_or_else(|e| panic!("map read failed: {}", e));
                        read_bytes = chunks.iter().map(Bytes::len).sum();
                    }
                    // Sort + range-partition straight over the wire bytes,
                    // offloaded to the simulator's worker pool while the
                    // partition compute is charged in virtual time — the
                    // schedule and span are identical to charging the
                    // compute and running the kernel inline. The kernel's
                    // (chunk, offset) tie-break keeps equal keys in global
                    // input order. The range partitioner is monotone over
                    // the sort order, so the sorted run IS the partitions
                    // concatenated in part order — the kernel hands back
                    // that one buffer plus the sparse cut list, and the
                    // write side never materialises W per-partition
                    // buffers (the mapper-side O(W) term of the old W²
                    // host cost).
                    let (run, cuts) = {
                        let partitioner = Arc::clone(&partitioner);
                        let chunks = std::mem::take(&mut chunks);
                        env.compute_offload(fctx, cfg.work.partition_time(read_bytes), move || {
                            kernel::partition_sorted_run::<R>(&chunks, w, |k| partitioner.part(k))
                        })
                        .await
                        .unwrap_or_else(|e| panic!("map decode failed: {}", e))
                    };
                    let xenv = ExchangeEnv {
                        host_links: vec![env.nic],
                        tag: format!("{}/map", cfg.tag),
                        retries: cfg.retries,
                        io_window: cfg.io_concurrency.max(1),
                    };
                    let written = backend
                        .write_run_async(fctx, &xenv, m, Bytes::from(run), cuts, w)
                        .await
                        .unwrap_or_else(|e| panic!("map exchange write failed: {}", e));
                    *map_bytes.lock() += written;
                },
            )
        }));
    }
    run_phase(ctx, "map", cfg.task_attempts, &tasks).await?;
    phase_end(ctx, &trace, p_map);
    let map_done = ctx.now();

    // ---- Phase 2: reduce — gather, k-way merge, write runs. ----
    let p_reduce = phase_begin(ctx, &trace, "reduce", cfg.orchestration).await;
    let out_bytes: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let run_infos: Arc<Mutex<Vec<Option<RunInfo>>>> = Arc::new(Mutex::new(vec![None; w]));
    let mut tasks: Vec<TaskFactory> = Vec::new();
    for j in 0..w {
        let faas = Arc::clone(faas);
        let store = Arc::clone(store);
        let cfg = Arc::clone(&cfg);
        let out_bytes = Arc::clone(&out_bytes);
        let run_infos = Arc::clone(&run_infos);
        let backend = Arc::clone(&backend);
        tasks.push(Box::new(move |ctx| {
            let store = Arc::clone(&store);
            let cfg = Arc::clone(&cfg);
            let out_bytes = Arc::clone(&out_bytes);
            let run_infos = Arc::clone(&run_infos);
            let backend = Arc::clone(&backend);
            let tag = format!("{}/reduce", cfg.tag);
            spawn_invocation(
                Arc::clone(&faas),
                ctx,
                "reduce",
                tag,
                async move |fctx: &mut Ctx, env: FunctionEnv| {
                    let client = store
                        .connect_via_async(fctx, format!("{}/reduce", cfg.tag), &[env.nic])
                        .await;
                    let xenv = ExchangeEnv {
                        host_links: vec![env.nic],
                        tag: format!("{}/reduce", cfg.tag),
                        retries: cfg.retries,
                        io_window: cfg.io_concurrency.max(1),
                    };
                    // Gather this partition's non-empty map outputs
                    // through the backend's sparse column read (the same
                    // store requests as a dense W-wide batch read — a
                    // sequential loop when io_concurrency == 1 — but
                    // O(non-empty) host work), keeping the raw wire
                    // bytes so the merge can stream without decoding
                    // whole runs up front. Dropping empty runs is
                    // merge-neutral: the (key, run) tie-break preserves
                    // the non-empty runs' relative order.
                    let runs = backend
                        .read_gather_async(fctx, &xenv, w, j)
                        .await
                        .unwrap_or_else(|e| panic!("reduce gather failed: {}", e));
                    let gathered: usize = runs.iter().map(Bytes::len).sum();
                    // The merge kernel runs on the offload pool while the
                    // merge compute is charged in virtual time — same
                    // schedule and span as the inline form.
                    let merged = env
                        .compute_offload(fctx, cfg.work.merge_time(gathered), move || {
                            streaming_merge::<R>(&runs)
                        })
                        .await
                        .unwrap_or_else(|e| panic!("reduce decode failed: {}", e));
                    let records = (merged.len() / R::WIRE_SIZE) as u64;
                    // One shared buffer: `Bytes::clone` inside the retry
                    // loop is a refcount bump, not a copy of the run.
                    let data = Bytes::from(merged);
                    *out_bytes.lock() += data.len() as u64;
                    let key = format!("{}{:05}", cfg.output_prefix, j);
                    run_infos.lock()[j] = Some(RunInfo {
                        key: key.clone(),
                        records,
                        bytes: data.len() as u64,
                    });
                    with_retry_async(fctx, cfg.retries, async |c: &mut Ctx| {
                        client.put_async(c, &cfg.bucket, &key, data.clone()).await
                    })
                    .await
                    .unwrap_or_else(|e| panic!("reduce write failed: {}", e));
                },
            )
        }));
    }
    run_phase(ctx, "reduce", cfg.task_attempts, &tasks).await?;
    phase_end(ctx, &trace, p_reduce);
    // Release exchange resources (the relay VM stops billing here; the
    // object-store backend keeps its intermediates for inspection).
    let xenv = ExchangeEnv::driver(format!("{}/driver", cfg.tag), cfg.retries);
    backend.cleanup_async(ctx, &xenv).await?;
    let output_bytes = *out_bytes.lock();
    if let Some(manifest_key) = &cfg.manifest_key {
        let manifest = SortManifest {
            operator: "serverless".to_string(),
            workers: w,
            input_bytes,
            output_bytes,
            runs: run_infos.lock().iter().flatten().cloned().collect(),
        };
        manifest
            .write_async(ctx, &driver, &cfg.bucket, manifest_key)
            .await?;
    }
    let finished = ctx.now();

    Ok(SortStats {
        workers: w,
        input_bytes,
        output_bytes,
        runs: (0..w)
            .map(|j| format!("{}{:05}", cfg.output_prefix, j))
            .collect(),
        sample_duration: sample_done.saturating_duration_since(started),
        map_duration: map_done.saturating_duration_since(sample_done),
        reduce_duration: finished.saturating_duration_since(map_done),
        started,
        finished,
    })
}

/// Splits the input objects into `w` equal, record-aligned byte spans:
/// mapper `m` receives a list of `(key, offset, len)` range reads. Spans
/// never split a record (all lengths are multiples of `record_size`).
fn assign_spans(
    inputs: &[faaspipe_store::ObjectSummary],
    w: usize,
    record_size: u64,
) -> Vec<Vec<(String, u64, u64)>> {
    let total: u64 = inputs.iter().map(|o| o.len.as_u64()).sum();
    let total_records = total / record_size;
    let per = total_records.div_ceil(w as u64).max(1) * record_size;
    let mut spans: Vec<Vec<(String, u64, u64)>> = vec![Vec::new(); w];
    let mut global = 0u64;
    for obj in inputs {
        let len = obj.len.as_u64() - obj.len.as_u64() % record_size;
        let mut off = 0u64;
        while off < len {
            let m = ((global / per) as usize).min(w - 1);
            let room = per - global % per;
            let take = room.min(len - off);
            spans[m].push((obj.key.clone(), off, take));
            off += take;
            global += take;
        }
    }
    spans
}

/// Opens a [`Category::Phase`] span on the calling (driver) process and
/// charges the phase's orchestration overhead inside it as an
/// [`Category::Orchestration`] leaf. The phase is pushed onto the
/// driver's open-span stack so invocations spawned during it nest under
/// it. Pair with [`phase_end`].
pub(crate) async fn phase_begin(
    ctx: &Ctx,
    trace: &TraceSink,
    name: &str,
    orchestration: SimDuration,
) -> SpanId {
    if !trace.is_enabled() {
        ctx.sleep_async(orchestration).await;
        return SpanId::NONE;
    }
    let parent = trace.current(ctx.pid());
    let span = trace.span_start(Category::Phase, name, "driver", "driver", parent, ctx.now());
    trace.enter(ctx.pid(), span);
    let sleep = if orchestration > SimDuration::ZERO {
        trace.span_start(
            Category::Orchestration,
            "orchestration",
            "driver",
            "driver",
            span,
            ctx.now(),
        )
    } else {
        SpanId::NONE
    };
    ctx.sleep_async(orchestration).await;
    trace.span_end(sleep, ctx.now());
    span
}

/// Closes a phase span opened by [`phase_begin`].
pub(crate) fn phase_end(ctx: &Ctx, trace: &TraceSink, span: SpanId) {
    if span.is_none() {
        return;
    }
    trace.exit(ctx.pid());
    trace.span_end(span, ctx.now());
}

/// A re-invocable task: every call spawns a fresh invocation of the same
/// work (all captured state is shared and idempotent).
type TaskFactory = Box<dyn for<'a> Fn(&'a Ctx) -> LocalBoxFuture<'a, ProcessId>>;

/// Spawns one stackless invocation through
/// [`FunctionPlatform::invoke_task`], boxing the spawn future so task
/// factories can be stored type-erased. Everything the invocation body
/// needs is owned by `body`, so the returned future borrows only `ctx`.
fn spawn_invocation<'a, F>(
    faas: Arc<FunctionPlatform>,
    ctx: &'a Ctx,
    function: &'static str,
    tag: String,
    body: F,
) -> LocalBoxFuture<'a, ProcessId>
where
    F: AsyncFnOnce(&mut Ctx, FunctionEnv) + Send + 'static,
{
    Box::pin(async move { faas.invoke_task(ctx, function, tag, body).await })
}

/// Spawns every task, joins them, and re-invokes crashed tasks up to
/// `attempts` total tries each — the Lithops-style task retry that makes
/// the operator survive injected invocation failures.
async fn run_phase(
    ctx: &Ctx,
    phase: &'static str,
    attempts: u32,
    tasks: &[TaskFactory],
) -> Result<(), ShuffleError> {
    let attempts = attempts.max(1);
    let mut pending: Vec<(usize, ProcessId)> = Vec::with_capacity(tasks.len());
    for (i, spawn) in tasks.iter().enumerate() {
        pending.push((i, spawn(ctx).await));
    }
    let mut last_error = String::new();
    for attempt in 1..=attempts {
        let mut failed = Vec::new();
        for (i, pid) in pending.drain(..) {
            if let Err(e) = ctx.join_async(pid).await {
                last_error = e.to_string();
                failed.push(i);
            }
        }
        if failed.is_empty() {
            return Ok(());
        }
        if attempt < attempts {
            for i in failed {
                pending.push((i, tasks[i](ctx).await));
            }
        }
    }
    Err(ShuffleError::TaskFailed {
        phase,
        message: last_error,
    })
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;
    use faaspipe_faas::FaasConfig;
    use faaspipe_store::StoreConfig;

    fn upload_chunks(sim: &mut Sim, store: &Arc<ObjectStore>, values: &[u64], chunks: usize) {
        store.create_bucket("data").expect("bucket");
        let per = values.len().div_ceil(chunks);
        let store = Arc::clone(store);
        let values = values.to_vec();
        sim.spawn("uploader", move |ctx| {
            let client = store.connect(ctx, "upload");
            for (i, chunk) in values.chunks(per).enumerate() {
                let data = SortRecord::write_all(chunk);
                client
                    .put(ctx, "data", &format!("in/{:04}", i), Bytes::from(data))
                    .expect("upload");
            }
        });
    }

    fn run_sort(
        values: Vec<u64>,
        chunks: usize,
        workers: usize,
    ) -> (Vec<u64>, SortStats, Arc<ObjectStore>) {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        upload_chunks(&mut sim, &store, &values, chunks);
        let result: Arc<Mutex<Option<(Vec<u64>, SortStats)>>> = Arc::new(Mutex::new(None));
        let store2 = Arc::clone(&store);
        let result2 = Arc::clone(&result);
        sim.spawn("driver", move |ctx| {
            // Let the uploader finish first.
            ctx.sleep(SimDuration::from_secs(120));
            let cfg = SortConfig {
                workers,
                ..SortConfig::default()
            };
            let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort succeeds");
            // Gather all runs in order and check global order.
            let client = store2.connect(ctx, "verify");
            let mut all = Vec::new();
            for run in &stats.runs {
                let data = client.get(ctx, "data", run).expect("run exists");
                let mut records: Vec<u64> = SortRecord::read_all(&data).expect("decode");
                all.append(&mut records);
            }
            *result2.lock() = Some((all, stats));
        });
        sim.run().expect("sim ok");
        let (all, stats) = result.lock().take().expect("driver ran");
        (all, stats, store)
    }

    #[test]
    fn sorts_small_dataset_globally() {
        let mut values: Vec<u64> = (0..4_000u64)
            .map(|i| (i * 2_654_435_761) % 1_000_000)
            .collect();
        let (sorted, stats, _) = run_sort(values.clone(), 4, 4);
        values.sort_unstable();
        assert_eq!(sorted, values, "output must be the sorted input");
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.output_bytes, 4_000 * 8);
    }

    #[test]
    fn single_worker_degenerate_case() {
        let values: Vec<u64> = (0..500u64).rev().collect();
        let (sorted, stats, _) = run_sort(values, 2, 1);
        assert_eq!(sorted, (0..500u64).collect::<Vec<_>>());
        assert_eq!(stats.runs.len(), 1);
    }

    #[test]
    fn more_workers_than_chunks() {
        let values: Vec<u64> = (0..2_000u64).map(|i| 2_000 - i).collect();
        let (sorted, _, _) = run_sort(values, 2, 8);
        assert_eq!(sorted, (1..=2_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_keys_preserved() {
        let values: Vec<u64> = (0..3_000u64).map(|i| i % 7).collect();
        let (sorted, _, _) = run_sort(values.clone(), 3, 4);
        let mut expect = values;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn phase_durations_are_positive_and_ordered() {
        let values: Vec<u64> = (0..5_000u64).rev().collect();
        let (_, stats, _) = run_sort(values, 4, 4);
        assert!(stats.sample_duration > SimDuration::ZERO);
        assert!(stats.map_duration > SimDuration::ZERO);
        assert!(stats.reduce_duration > SimDuration::ZERO);
        assert_eq!(
            stats.total_duration(),
            stats.sample_duration + stats.map_duration + stats.reduce_duration
        );
    }

    #[test]
    fn intermediate_objects_are_w_squared() {
        let values: Vec<u64> = (0..2_000u64).rev().collect();
        let (_, _, store) = run_sort(values, 4, 4);
        // part/{m}/{j}: 16 objects.
        let count = (0..4)
            .flat_map(|m| (0..4).map(move |j| (m, j)))
            .filter(|(m, j)| {
                store
                    .peek("data", &format!("part/{:05}/{:05}", m, j))
                    .is_some()
            })
            .count();
        assert_eq!(count, 16);
    }

    #[test]
    fn zero_workers_rejected() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        store.create_bucket("data").expect("bucket");
        sim.spawn("driver", move |ctx| {
            let cfg = SortConfig {
                workers: 0,
                ..SortConfig::default()
            };
            let err = serverless_sort::<u64>(ctx, &faas, &store, &cfg).expect_err("bad cfg");
            assert!(matches!(err, ShuffleError::BadConfig { .. }));
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn missing_inputs_rejected() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        store.create_bucket("data").expect("bucket");
        sim.spawn("driver", move |ctx| {
            let err = serverless_sort::<u64>(ctx, &faas, &store, &SortConfig::default())
                .expect_err("no inputs");
            assert!(matches!(err, ShuffleError::BadConfig { .. }));
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn survives_injected_store_faults_with_retries() {
        use faaspipe_store::FailurePolicy;
        let mut sim = Sim::new();
        let cfg = StoreConfig::default().with_failure(FailurePolicy::with_error_rate(0.05));
        let store = ObjectStore::install(&mut sim, cfg);
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        let values: Vec<u64> = (0..3_000u64).rev().collect();
        upload_chunks(&mut sim, &store, &values, 4);
        let ok = Arc::new(Mutex::new(false));
        let ok2 = Arc::clone(&ok);
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(300));
            let cfg = SortConfig {
                workers: 4,
                retries: 12,
                ..SortConfig::default()
            };
            let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg)
                .expect("sort survives 5% faults with retries");
            assert_eq!(stats.output_bytes, 3_000 * 8);
            *ok2.lock() = true;
        });
        sim.run().expect("sim ok");
        assert!(*ok.lock());
    }

    #[test]
    fn spans_cover_everything_exactly_once_and_balance() {
        use faaspipe_des::{ByteSize, SimTime};
        use faaspipe_store::ObjectSummary;
        let inputs: Vec<ObjectSummary> = [800u64, 160, 2_400, 8]
            .iter()
            .enumerate()
            .map(|(i, &len)| ObjectSummary {
                key: format!("in/{}", i),
                len: ByteSize::new(len),
                etag: 0,
                created: SimTime::ZERO,
            })
            .collect();
        let w = 7;
        let spans = assign_spans(&inputs, w, 8);
        // Coverage: per key, spans are contiguous from 0 and record-aligned.
        let mut covered = std::collections::HashMap::new();
        for mapper in &spans {
            for (key, off, len) in mapper {
                assert_eq!(off % 8, 0);
                assert_eq!(len % 8, 0);
                assert!(*len > 0);
                covered
                    .entry(key.clone())
                    .or_insert_with(Vec::new)
                    .push((*off, *len));
            }
        }
        for obj in &inputs {
            let mut ranges = covered.remove(&obj.key).unwrap_or_default();
            ranges.sort_unstable();
            let mut cursor = 0u64;
            for (off, len) in ranges {
                assert_eq!(off, cursor, "no gaps/overlaps in {}", obj.key);
                cursor += len;
            }
            assert_eq!(cursor, obj.len.as_u64(), "full coverage of {}", obj.key);
        }
        // Balance: no mapper holds more than ceil(total/w) + one record.
        let total: u64 = inputs.iter().map(|o| o.len.as_u64()).sum();
        let per = (total / 8).div_ceil(w as u64) * 8;
        for mapper in &spans {
            let bytes: u64 = mapper.iter().map(|(_, _, l)| l).sum();
            assert!(bytes <= per, "mapper holds {} > {}", bytes, per);
        }
    }

    #[test]
    fn map_parallelism_exceeds_chunk_count() {
        // 16 workers over 2 chunks: byte-range assignment must give every
        // mapper work (the old chunk-granular assignment gave 2).
        let values: Vec<u64> = (0..4_000u64).rev().collect();
        let (sorted, stats, store) = run_sort(values, 2, 16);
        assert_eq!(sorted, (0..4_000u64).collect::<Vec<_>>());
        assert_eq!(stats.workers, 16);
        // Every mapper wrote a partition row (scatter mode).
        for m in 0..16 {
            assert!(
                store
                    .peek("data", &format!("part/{:05}/{:05}", m, 0))
                    .is_some(),
                "mapper {} must have participated",
                m
            );
        }
    }

    #[test]
    fn manifest_describes_the_runs() {
        let values: Vec<u64> = (0..2_000u64).rev().collect();
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        upload_chunks(&mut sim, &store, &values, 4);
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(120));
            let cfg = SortConfig {
                workers: 4,
                manifest_key: Some("out/_manifest.json".to_string()),
                ..SortConfig::default()
            };
            serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort");
            let client = store2.connect(ctx, "verify");
            let manifest = SortManifest::read(ctx, &client, "data", "out/_manifest.json")
                .expect("manifest readable");
            assert_eq!(manifest.operator, "serverless");
            assert_eq!(manifest.workers, 4);
            assert_eq!(manifest.total_records(), 2_000);
            assert_eq!(manifest.runs.len(), 4);
            assert_eq!(manifest.output_bytes, 2_000 * 8);
            // Every run the manifest names exists with the declared size.
            for run in &manifest.runs {
                let data = client.get(ctx, "data", &run.key).expect("run exists");
                assert_eq!(data.len() as u64, run.bytes);
            }
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn survives_injected_function_crashes_with_task_retries() {
        // 40% of invocations crash before user code; task-level
        // re-invocation must still complete the sort correctly.
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas =
            FunctionPlatform::install(&mut sim, FaasConfig::default().with_failure_rate(0.4));
        let values: Vec<u64> = (0..3_000u64).rev().collect();
        upload_chunks(&mut sim, &store, &values, 4);
        let ok = Arc::new(Mutex::new(false));
        let ok2 = Arc::clone(&ok);
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(300));
            let cfg = SortConfig {
                workers: 4,
                task_attempts: 12,
                ..SortConfig::default()
            };
            let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg)
                .expect("sort survives crashing functions");
            let client = store2.connect(ctx, "verify");
            let mut all = Vec::new();
            for run in &stats.runs {
                let data = client.get(ctx, "data", run).expect("run exists");
                let mut records: Vec<u64> = SortRecord::read_all(&data).expect("decode");
                all.append(&mut records);
            }
            assert_eq!(all, (0..3_000u64).collect::<Vec<_>>());
            *ok2.lock() = true;
        });
        sim.run().expect("sim ok");
        assert!(*ok.lock());
    }

    #[test]
    fn exhausted_task_attempts_surface_as_task_failed() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas = FunctionPlatform::install(
            &mut sim,
            FaasConfig::default().with_failure_rate(1.0), // always crash
        );
        let values: Vec<u64> = (0..500u64).collect();
        upload_chunks(&mut sim, &store, &values, 2);
        let saw = Arc::new(Mutex::new(false));
        let saw2 = Arc::clone(&saw);
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(60));
            let cfg = SortConfig {
                workers: 2,
                task_attempts: 3,
                ..SortConfig::default()
            };
            let err = serverless_sort::<u64>(ctx, &faas, &store2, &cfg)
                .expect_err("certain crashes must exhaust retries");
            assert!(matches!(
                err,
                ShuffleError::TaskFailed {
                    phase: "sample",
                    ..
                }
            ));
            *saw2.lock() = true;
        });
        sim.run().expect("sim ok");
        assert!(*saw.lock());
    }

    #[test]
    fn kway_merge_correctness() {
        let runs: Vec<Vec<u64>> = vec![vec![1, 4, 7], vec![2, 5, 8], vec![0, 3, 6, 9, 10]];
        assert_eq!(kway_merge(runs), (0..=10).collect::<Vec<_>>());
        assert_eq!(kway_merge::<u64>(vec![]), Vec::<u64>::new());
        assert_eq!(kway_merge(vec![vec![], vec![5u64], vec![]]), vec![5]);
    }

    #[test]
    fn streaming_merge_matches_naive_on_edge_cases() {
        // No runs, all-empty runs, single run, duplicate keys.
        assert_eq!(
            streaming_merge::<u64>(&[]).expect("empty"),
            Vec::<u8>::new()
        );
        let empty = [Bytes::new(), Bytes::new()];
        assert_eq!(
            streaming_merge::<u64>(&empty).expect("empties"),
            Vec::<u8>::new()
        );
        let runs = vec![vec![1u64, 1, 3], vec![1u64, 2, 2], vec![]];
        let encoded: Vec<Bytes> = runs
            .iter()
            .map(|r| Bytes::from(SortRecord::write_all(r)))
            .collect();
        let merged = streaming_merge::<u64>(&encoded).expect("merge");
        let expect = SortRecord::write_all(&kway_merge(runs));
        assert_eq!(merged, expect);
    }

    #[test]
    fn streaming_merge_rejects_torn_records() {
        let torn = [Bytes::from_static(&[0u8; 7])];
        assert!(matches!(
            streaming_merge::<u64>(&torn),
            Err(ShuffleError::Corrupt { .. })
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The byte-streaming merge must agree with the naive
        /// decode-everything merge on arbitrary pre-sorted runs,
        /// including the tie-break order between runs.
        #[test]
        fn streaming_merge_equals_naive_merge(
            runs in proptest::collection::vec(
                proptest::collection::vec(0u64..50, 0..40),
                0..6,
            )
        ) {
            let runs: Vec<Vec<u64>> = runs
                .into_iter()
                .map(|mut r| { r.sort_unstable(); r })
                .collect();
            let encoded: Vec<Bytes> = runs
                .iter()
                .map(|r| Bytes::from(SortRecord::write_all(r)))
                .collect();
            let merged = streaming_merge::<u64>(&encoded).expect("merge");
            let expect = SortRecord::write_all(&kway_merge(runs));
            proptest::prop_assert_eq!(merged, expect);
        }
    }

    #[test]
    fn coalesced_exchange_sorts_identically() {
        let values: Vec<u64> = (0..4_000u64)
            .map(|i| (i * 2_654_435_761) % 1_000_000)
            .collect();
        let mut expect = values.clone();
        expect.sort_unstable();
        // Run with the coalesced strategy through the same harness.
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        upload_chunks(&mut sim, &store, &values, 4);
        let result: Arc<Mutex<Option<(Vec<u64>, SortStats)>>> = Arc::new(Mutex::new(None));
        let store2 = Arc::clone(&store);
        let result2 = Arc::clone(&result);
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(120));
            let cfg = SortConfig {
                workers: 4,
                exchange: ExchangeStrategy::Coalesced,
                ..SortConfig::default()
            };
            let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort");
            let client = store2.connect(ctx, "verify");
            let mut all = Vec::new();
            for run in &stats.runs {
                let data = client.get(ctx, "data", run).expect("run exists");
                let mut records: Vec<u64> = SortRecord::read_all(&data).expect("decode");
                all.append(&mut records);
            }
            *result2.lock() = Some((all, stats));
        });
        sim.run().expect("sim ok");
        let (sorted, _) = result.lock().take().expect("driver ran");
        assert_eq!(sorted, expect);
        // One coalesced object per mapper, not W^2 scatter objects.
        assert!(store.peek("data", "part/00000").is_some());
        assert!(store.peek("data", "part/00000/00000").is_none());
    }

    #[test]
    fn coalesced_exchange_issues_fewer_class_a_requests() {
        fn class_a(exchange: ExchangeStrategy) -> u64 {
            let values: Vec<u64> = (0..2_000u64).rev().collect();
            let mut sim = Sim::new();
            let store = ObjectStore::install(&mut sim, StoreConfig::default());
            let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
            upload_chunks(&mut sim, &store, &values, 4);
            let store2 = Arc::clone(&store);
            sim.spawn("driver", move |ctx| {
                ctx.sleep(SimDuration::from_secs(120));
                let cfg = SortConfig {
                    workers: 8,
                    exchange,
                    ..SortConfig::default()
                };
                serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort");
            });
            sim.run().expect("sim ok");
            store.metrics().total().class_a
        }
        let scatter = class_a(ExchangeStrategy::Scatter);
        let coalesced = class_a(ExchangeStrategy::Coalesced);
        // Scatter: 64 partition PUTs; coalesced: 8. The other class-A
        // requests (runs, lists) are identical.
        assert_eq!(scatter - coalesced, 8 * 8 - 8);
    }
}
