//! Zero-copy shuffle kernels: sort, partition, and key-scan over wire
//! buffers.
//!
//! The historical data path decoded every downloaded chunk into a
//! `Vec<R>`, sorted the records, and re-encoded them partition by
//! partition — three full passes of allocation and copying per mapper.
//! These kernels operate on the wire bytes directly: each record is
//! represented by a *view* `(key, chunk, offset)` into the downloaded
//! [`Bytes`] chunks, the views are sorted with `sort_unstable`, and
//! record bytes are copied exactly once, from the source chunk into the
//! output buffer. Keys are decoded once per record through
//! [`SortRecord::key_from_wire`], which validates the wire form exactly
//! as [`SortRecord::read_from`] would.
//!
//! # Ordering contract
//!
//! The views sort by the tuple `(key, chunk index, offset)`. For records
//! with equal keys the `(chunk, offset)` tie-break is their global
//! position in the concatenated input, so the unstable tuple sort
//! reproduces, byte for byte, what a *stable* sort by key over the
//! decoded records produced — the property the workspace's golden
//! determinism digests pin.

use bytes::Bytes;

use crate::error::ShuffleError;
use crate::record::SortRecord;

/// One record's position in a chunk set: the sort key, the index of the
/// chunk holding it, and its byte offset inside that chunk.
type View<K> = (K, u32, u32);

/// Builds the sorted view list over `chunks`, validating every record.
///
/// # Errors
/// [`ShuffleError::Corrupt`] if any chunk is not a whole number of valid
/// records.
fn sorted_views<R: SortRecord>(chunks: &[Bytes]) -> Result<Vec<View<R::Key>>, ShuffleError> {
    let rec = R::WIRE_SIZE;
    let mut total = 0usize;
    for chunk in chunks {
        if !chunk.len().is_multiple_of(rec) {
            return Err(ShuffleError::Corrupt {
                what: "record buffer length",
            });
        }
        total += chunk.len() / rec;
    }
    let mut views: Vec<View<R::Key>> = Vec::with_capacity(total);
    for (ci, chunk) in chunks.iter().enumerate() {
        assert!(
            chunk.len() <= u32::MAX as usize,
            "chunk exceeds the kernel's 4 GiB view-offset range"
        );
        for (off, wire) in chunk.chunks_exact(rec).enumerate() {
            views.push((R::key_from_wire(wire)?, ci as u32, (off * rec) as u32));
        }
    }
    views.sort_unstable();
    Ok(views)
}

/// Sorts every record in `chunks` and scatters the wire bytes into
/// `parts` output buffers according to `part_of` (clamped to the last
/// partition, like the map phase always has). Each bucket receives its
/// records in global sorted order; record bytes are copied exactly once.
///
/// # Panics
/// Panics if `parts` is zero.
///
/// # Errors
/// [`ShuffleError::Corrupt`] if any chunk is not a whole number of valid
/// records.
pub fn partition_sorted<R: SortRecord>(
    chunks: &[Bytes],
    parts: usize,
    mut part_of: impl FnMut(&R::Key) -> usize,
) -> Result<Vec<Vec<u8>>, ShuffleError> {
    assert!(parts > 0, "cannot partition into zero parts");
    let views = sorted_views::<R>(chunks)?;
    let mut buckets: Vec<Vec<u8>> = (0..parts).map(|_| Vec::new()).collect();
    for (key, ci, off) in &views {
        let p = part_of(key).min(parts - 1);
        let off = *off as usize;
        buckets[p].extend_from_slice(&chunks[*ci as usize][off..off + R::WIRE_SIZE]);
    }
    Ok(buckets)
}

/// The sparse cut list [`partition_sorted_run`] returns alongside the
/// sorted run: one `(partition, byte offset, byte len)` entry per
/// *non-empty* partition, partition-ascending and tiling the run
/// contiguously. The same triple shape feeds
/// `DataExchange::write_run` and the coalesced offset index.
pub type RunCuts = Vec<(u32, u64, u64)>;

/// [`partition_sorted`] without the W-length bucket vector: returns the
/// records as **one** sorted wire buffer plus the sparse `(part,
/// offset, len)` cut list of its non-empty partitions.
///
/// Because `part_of` must be monotone over the sort order (a range
/// partitioner is — equal keys share a partition, and partition ids
/// never decrease as keys grow), each partition's records form one
/// contiguous slice of the sorted run, and the run is byte-identical to
/// concatenating [`partition_sorted`]'s buckets in partition order. At
/// W-wide shuffles this turns the mapper's per-task memory from O(W)
/// bucket headers (W² across a stage) into O(non-empty partitions).
///
/// # Panics
/// Panics if `parts` is zero or `part_of` assigns a smaller partition
/// to a later sorted key (a non-monotone partitioner cannot produce
/// contiguous partitions).
///
/// # Errors
/// [`ShuffleError::Corrupt`] if any chunk is not a whole number of valid
/// records.
pub fn partition_sorted_run<R: SortRecord>(
    chunks: &[Bytes],
    parts: usize,
    mut part_of: impl FnMut(&R::Key) -> usize,
) -> Result<(Vec<u8>, RunCuts), ShuffleError> {
    assert!(parts > 0, "cannot partition into zero parts");
    let views = sorted_views::<R>(chunks)?;
    let mut run = Vec::with_capacity(views.len() * R::WIRE_SIZE);
    let mut cuts: RunCuts = Vec::new();
    for (key, ci, off) in &views {
        let p = part_of(key).min(parts - 1) as u32;
        match cuts.last_mut() {
            Some(cut) if cut.0 == p => cut.2 += R::WIRE_SIZE as u64,
            Some(cut) => {
                assert!(
                    cut.0 < p,
                    "partitioner must be monotone over sorted keys \
                     (partition {} follows {})",
                    p,
                    cut.0
                );
                cuts.push((p, run.len() as u64, R::WIRE_SIZE as u64));
            }
            None => cuts.push((p, run.len() as u64, R::WIRE_SIZE as u64)),
        }
        let off = *off as usize;
        run.extend_from_slice(&chunks[*ci as usize][off..off + R::WIRE_SIZE]);
    }
    Ok((run, cuts))
}

/// Sorts every record in `chunks` into one contiguous wire buffer — the
/// VM baseline's whole-dataset in-memory sort, without ever decoding the
/// records.
///
/// # Errors
/// [`ShuffleError::Corrupt`] if any chunk is not a whole number of valid
/// records.
pub fn sort_concat<R: SortRecord>(chunks: &[Bytes]) -> Result<Vec<u8>, ShuffleError> {
    let views = sorted_views::<R>(chunks)?;
    let mut out = Vec::with_capacity(views.len() * R::WIRE_SIZE);
    for (_, ci, off) in &views {
        let off = *off as usize;
        out.extend_from_slice(&chunks[*ci as usize][off..off + R::WIRE_SIZE]);
    }
    Ok(out)
}

/// Calls `f` with each record's key, decoded straight from the wire in
/// buffer order — the sample phase's reservoir feed, minus the decoded
/// record vector it used to materialize.
///
/// # Errors
/// [`ShuffleError::Corrupt`] if the buffer is not a whole number of
/// valid records.
pub fn scan_keys<R: SortRecord>(
    data: &[u8],
    mut f: impl FnMut(R::Key),
) -> Result<(), ShuffleError> {
    if !data.len().is_multiple_of(R::WIRE_SIZE) {
        return Err(ShuffleError::Corrupt {
            what: "record buffer length",
        });
    }
    for wire in data.chunks_exact(R::WIRE_SIZE) {
        f(R::key_from_wire(wire)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::RangePartitioner;
    use faaspipe_methcomp::synth::Synthesizer;
    use faaspipe_methcomp::MethRecord;

    /// The decode-sort-encode reference the kernels replace.
    fn reference_partition<R: SortRecord>(
        chunks: &[Bytes],
        parts: usize,
        part_of: impl Fn(&R::Key) -> usize,
    ) -> Vec<Vec<u8>> {
        let mut records: Vec<R> = Vec::new();
        for chunk in chunks {
            records.append(&mut SortRecord::read_all(chunk).expect("decode"));
        }
        records.sort_by_key(R::key);
        let mut buckets: Vec<Vec<u8>> = (0..parts).map(|_| Vec::new()).collect();
        for r in &records {
            let p = part_of(&r.key()).min(parts - 1);
            r.write_to(&mut buckets[p]);
        }
        buckets
    }

    fn meth_chunks(seed: u64, n: usize, pieces: usize) -> Vec<Bytes> {
        let ds = Synthesizer::new(seed).generate_shuffled(n);
        let per = n.div_ceil(pieces);
        ds.records
            .chunks(per)
            .map(|c| Bytes::from(SortRecord::write_all(c)))
            .collect()
    }

    #[test]
    fn partition_matches_decode_sort_encode_for_meth_records() {
        let chunks = meth_chunks(31, 2_000, 5);
        let sample: Vec<_> = chunks
            .iter()
            .flat_map(|c| {
                c.chunks_exact(MethRecord::WIRE_SIZE)
                    .step_by(7)
                    .map(|w| MethRecord::key_from_wire(w).expect("valid"))
            })
            .collect();
        let parts = 4;
        let partitioner = RangePartitioner::from_sample(sample, parts);
        let got = partition_sorted::<MethRecord>(&chunks, parts, |k| partitioner.part(k))
            .expect("kernel");
        let want = reference_partition::<MethRecord>(&chunks, parts, |k| partitioner.part(k));
        assert_eq!(got, want);
    }

    /// Equal keys with *different payload bytes* are the case where an
    /// unstable sort could diverge from the stable reference; the
    /// (chunk, offset) tie-break must keep them in global input order.
    #[test]
    fn equal_keys_keep_global_input_order() {
        let ds = Synthesizer::new(32).generate_records(50);
        let mut dupes = Vec::new();
        for (i, r) in ds.records.iter().enumerate() {
            for cov in 0..4u32 {
                let mut d = *r;
                d.coverage = cov * 100 + i as u32; // same key, distinct bytes
                dupes.push(d);
            }
        }
        let chunks: Vec<Bytes> = dupes
            .chunks(17)
            .map(|c| Bytes::from(SortRecord::write_all(c)))
            .collect();
        let got = partition_sorted::<MethRecord>(&chunks, 1, |_| 0).expect("kernel");
        let want = reference_partition::<MethRecord>(&chunks, 1, |_| 0);
        assert_eq!(got, want);
        let concat = sort_concat::<MethRecord>(&chunks).expect("kernel");
        assert_eq!(concat, want[0]);
    }

    /// Reconstructs the dense bucket vector from a run + sparse cuts.
    fn dense_from_run(run: &[u8], cuts: &[(u32, u64, u64)], parts: usize) -> Vec<Vec<u8>> {
        let mut buckets = vec![Vec::new(); parts];
        for &(p, off, len) in cuts {
            buckets[p as usize] = run[off as usize..(off + len) as usize].to_vec();
        }
        buckets
    }

    #[test]
    fn run_is_bucket_concat_and_cuts_reconstruct_buckets() {
        let chunks = meth_chunks(34, 2_000, 5);
        let sample: Vec<_> = chunks
            .iter()
            .flat_map(|c| {
                c.chunks_exact(MethRecord::WIRE_SIZE)
                    .step_by(7)
                    .map(|w| MethRecord::key_from_wire(w).expect("valid"))
            })
            .collect();
        let parts = 4;
        let partitioner = RangePartitioner::from_sample(sample, parts);
        let buckets = partition_sorted::<MethRecord>(&chunks, parts, |k| partitioner.part(k))
            .expect("kernel");
        let (run, cuts) =
            partition_sorted_run::<MethRecord>(&chunks, parts, |k| partitioner.part(k))
                .expect("kernel");
        assert_eq!(
            run,
            buckets.concat(),
            "run must equal the blob the dense write built"
        );
        assert_eq!(dense_from_run(&run, &cuts, parts), buckets);
        assert!(
            cuts.windows(2).all(|w| w[0].0 < w[1].0),
            "cuts part-ascending"
        );
        assert!(
            cuts.windows(2).all(|w| w[0].1 + w[0].2 == w[1].1),
            "cuts tile the run contiguously"
        );
        assert!(
            cuts.iter().all(|c| c.2 > 0),
            "cuts only for non-empty partitions"
        );
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_partitioner_panics() {
        let values: Vec<u64> = (0..10).collect();
        let chunks = [Bytes::from(SortRecord::write_all(&values))];
        let _ = partition_sorted_run::<u64>(&chunks, 2, |k| (*k as usize + 1) % 2);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let (run, cuts) = partition_sorted_run::<u64>(&[], 3, |_| 0).expect("empty run");
        assert!(run.is_empty() && cuts.is_empty());
        assert_eq!(sort_concat::<u64>(&[]).expect("empty"), Vec::<u8>::new());
        let empties = [Bytes::new(), Bytes::new()];
        assert_eq!(
            partition_sorted::<u64>(&empties, 3, |_| 9).expect("empties"),
            vec![Vec::<u8>::new(); 3]
        );
    }

    #[test]
    fn corrupt_chunks_rejected() {
        let torn = [Bytes::from_static(&[0u8; 7])];
        assert!(matches!(
            sort_concat::<u64>(&torn),
            Err(ShuffleError::Corrupt { .. })
        ));
        assert!(matches!(
            partition_sorted::<u64>(&torn, 2, |_| 0),
            Err(ShuffleError::Corrupt { .. })
        ));
        let ds = Synthesizer::new(33).generate_records(3);
        let mut bytes = SortRecord::write_all(&ds.records);
        bytes[17] = 9; // bad strand in record 0
        assert!(matches!(
            sort_concat::<MethRecord>(&[Bytes::from(bytes)]),
            Err(ShuffleError::Corrupt {
                what: "meth record strand"
            })
        ));
    }

    #[test]
    fn scan_keys_visits_in_buffer_order() {
        let values: Vec<u64> = vec![9, 2, 7, 2];
        let data = SortRecord::write_all(&values);
        let mut seen = Vec::new();
        scan_keys::<u64>(&data, |k| seen.push(k)).expect("scan");
        assert_eq!(seen, values);
        assert!(scan_keys::<u64>(&data[..7], |_| {}).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Kernel output equals the decode-sort-encode reference on
        /// arbitrary chunkings of arbitrary u64 data (heavy duplicates
        /// included via the narrow value range).
        #[test]
        fn kernel_equals_reference_on_arbitrary_u64_chunks(
            chunks in proptest::collection::vec(
                proptest::collection::vec(0u64..30, 0..50),
                0..6,
            ),
            parts in 1usize..5,
        ) {
            let encoded: Vec<Bytes> = chunks
                .iter()
                .map(|c| Bytes::from(SortRecord::write_all(c)))
                .collect();
            let part_of = |k: &u64| (*k as usize) % (parts + 1); // sometimes out of range
            let got = partition_sorted::<u64>(&encoded, parts, part_of).expect("kernel");
            let want = reference_partition::<u64>(&encoded, parts, part_of);
            proptest::prop_assert_eq!(got, want);
        }

        /// The run kernel agrees with the bucket kernel under any
        /// *monotone* partitioner (the clamp to the last partition
        /// keeps out-of-range ids monotone too).
        #[test]
        fn run_kernel_equals_bucket_kernel_on_arbitrary_u64_chunks(
            chunks in proptest::collection::vec(
                proptest::collection::vec(0u64..30, 0..50),
                0..6,
            ),
            parts in 1usize..5,
            div in 1u64..9,
        ) {
            let encoded: Vec<Bytes> = chunks
                .iter()
                .map(|c| Bytes::from(SortRecord::write_all(c)))
                .collect();
            let part_of = |k: &u64| (k / div) as usize; // monotone, sometimes out of range
            let buckets = partition_sorted::<u64>(&encoded, parts, part_of).expect("kernel");
            let (run, cuts) =
                partition_sorted_run::<u64>(&encoded, parts, part_of).expect("kernel");
            proptest::prop_assert_eq!(&run, &buckets.concat());
            proptest::prop_assert_eq!(dense_from_run(&run, &cuts, parts), buckets);
        }
    }
}
