//! Reservoir sampling of sort keys.

use rand::Rng;

/// A fixed-capacity uniform reservoir sample.
///
/// Mappers feed every key they see; the reservoir keeps a uniform sample
/// of bounded size regardless of stream length (Vitter's algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<K> {
    capacity: usize,
    seen: u64,
    items: Vec<K>,
}

impl<K> Reservoir<K> {
    /// Creates a reservoir keeping at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Reservoir<K> {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one key.
    pub fn offer(&mut self, key: K, rng: &mut impl Rng) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(key);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = key;
            }
        }
    }

    /// Keys seen so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<K> {
        self.items
    }

    /// Current sample size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut r = Reservoir::new(100);
        for k in 0..50u64 {
            r.offer(k, &mut rng);
        }
        let mut items = r.into_items();
        items.sort_unstable();
        assert_eq!(items, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn caps_at_capacity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut r = Reservoir::new(64);
        for k in 0..10_000u64 {
            r.offer(k, &mut rng);
        }
        assert_eq!(r.len(), 64);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample over 0..n should be near n/2.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut means = Vec::new();
        for trial in 0..20 {
            let mut r = Reservoir::new(200);
            for k in 0..100_000u64 {
                r.offer(k, &mut rng);
            }
            let items = r.into_items();
            let mean: f64 = items.iter().map(|&k| k as f64).sum::<f64>() / items.len() as f64;
            means.push(mean);
            let _ = trial;
        }
        let grand: f64 = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (grand - 50_000.0).abs() < 5_000.0,
            "grand mean {} far from 50000",
            grand
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Reservoir::<u64>::new(0);
    }
}
