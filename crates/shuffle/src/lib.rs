//! # faaspipe-shuffle — a Primula-like serverless shuffle/sort operator
//!
//! Reproduces the mechanism of *Primula: A Practical Shuffle/Sort Operator
//! for Serverless Computing* (Sánchez-Artigas et al., Middleware'20), the
//! operator the paper's "purely serverless" pipeline uses for its
//! all-to-all sort stage:
//!
//! * **sample → range-partition → map → reduce** through object storage:
//!   mappers locally sort their chunk and scatter `W` partition objects;
//!   reducers gather `W` objects each and k-way merge them into globally
//!   ordered runs ([`sort`]);
//! * **worker-count autotuning** ([`autotune`]): an analytic makespan
//!   model over the measured storage parameters picks "the optimal number
//!   of functions for a given shuffle data size on the fly" — the paper's
//!   central claim is that object storage performs well *iff* this number
//!   is chosen appropriately;
//! * a **VM-driven baseline** ([`vmsort`]): download everything into one
//!   big instance, sort with all cores, upload — the hybrid pipeline's
//!   shuffle stage;
//! * **zero-copy kernels** ([`kernel`]): the mappers' sort + range
//!   partition and the VM baseline's whole-dataset sort run straight
//!   over the records' wire bytes — keys are decoded once per record,
//!   record payloads are copied once and never materialized as decoded
//!   vectors.
//!
//! The operator is generic over [`SortRecord`]; an implementation for
//! methylation BED records is provided (the paper's workload).

pub mod autotune;
pub mod error;
pub mod kernel;
pub mod partitioner;
pub mod plan;
pub mod record;
pub mod sampler;
pub mod sort;
pub mod vmsort;
pub mod work;

pub use autotune::{Autotuner, CostBreakdown, TuningModel, TuningPrices};
pub use error::ShuffleError;
// Re-exported so downstream callers keep their `faaspipe_shuffle::{...}`
// paths after the exchange machinery moved into its own crate.
pub use faaspipe_exchange::{
    with_retry, DataExchange, ExchangeEnv, ExchangeError, ExchangeKind, ExchangeStrategy,
};
pub use kernel::{partition_sorted, scan_keys, sort_concat};
pub use partitioner::RangePartitioner;
pub use plan::{RunInfo, SortManifest};
pub use record::SortRecord;
pub use sort::{serverless_sort, serverless_sort_async, streaming_merge, SortConfig, SortStats};
pub use vmsort::{vm_sort, vm_sort_async, VmSortConfig, VmSortStats};
pub use work::WorkModel;
