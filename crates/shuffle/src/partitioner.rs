//! Range partitioning from sampled keys.

/// Routes keys to `n` contiguous ranges split by `n - 1` boundary keys.
///
/// Partition `i` receives keys in `[boundaries[i-1], boundaries[i])`
/// (first partition unbounded below, last unbounded above), so
/// concatenating sorted partitions in index order yields a globally
/// sorted sequence.
#[derive(Debug, Clone)]
pub struct RangePartitioner<K> {
    boundaries: Vec<K>,
}

impl<K: Ord + Clone> RangePartitioner<K> {
    /// Builds a partitioner for `parts` partitions from a *sample* of
    /// keys, by picking evenly spaced quantiles.
    ///
    /// Works with any sample size (including empty — everything then
    /// routes to partition 0).
    ///
    /// # Panics
    /// Panics if `parts` is zero.
    pub fn from_sample(mut sample: Vec<K>, parts: usize) -> RangePartitioner<K> {
        assert!(parts > 0, "cannot partition into zero parts");
        sample.sort_unstable();
        let mut boundaries = Vec::with_capacity(parts.saturating_sub(1));
        if !sample.is_empty() {
            for i in 1..parts {
                let idx = (i * sample.len()) / parts;
                boundaries.push(sample[idx.min(sample.len() - 1)].clone());
            }
        }
        boundaries.dedup();
        RangePartitioner { boundaries }
    }

    /// Number of partitions this partitioner routes to (may be fewer than
    /// requested if the sample had few distinct keys).
    pub fn parts(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The partition index for `key`.
    pub fn part(&self, key: &K) -> usize {
        // First boundary strictly greater than key = partition index.
        self.boundaries.partition_point(|b| b <= key)
    }

    /// The boundary keys (exclusive upper bounds of each partition but the
    /// last).
    pub fn boundaries(&self) -> &[K] {
        &self.boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_keys_in_order() {
        let p = RangePartitioner::from_sample((0..100u64).collect(), 4);
        assert_eq!(p.parts(), 4);
        // Partition indices are monotone in the key.
        let mut last = 0;
        for k in 0..100u64 {
            let part = p.part(&k);
            assert!(part >= last);
            last = part;
        }
        assert_eq!(p.part(&0), 0);
        assert_eq!(p.part(&99), 3);
    }

    #[test]
    fn quantiles_balance_uniform_keys() {
        let sample: Vec<u64> = (0..10_000).collect();
        let p = RangePartitioner::from_sample(sample, 8);
        let mut counts = vec![0usize; p.parts()];
        for k in 0..10_000u64 {
            counts[p.part(&k)] += 1;
        }
        let min = *counts.iter().min().expect("non-empty");
        let max = *counts.iter().max().expect("non-empty");
        assert!(max - min <= 10_000 / 8 / 4, "imbalance: {:?}", counts);
    }

    #[test]
    fn empty_sample_routes_everything_to_zero() {
        let p = RangePartitioner::from_sample(Vec::<u64>::new(), 5);
        assert_eq!(p.parts(), 1);
        assert_eq!(p.part(&123), 0);
    }

    #[test]
    fn single_partition() {
        let p = RangePartitioner::from_sample(vec![5u64, 1, 9], 1);
        assert_eq!(p.parts(), 1);
        for k in [0u64, 5, 100] {
            assert_eq!(p.part(&k), 0);
        }
    }

    #[test]
    fn duplicate_heavy_sample_dedups_boundaries() {
        let sample = vec![7u64; 1000];
        let p = RangePartitioner::from_sample(sample, 8);
        assert_eq!(p.parts(), 2, "one distinct boundary survives");
        assert_eq!(p.part(&3), 0);
        assert_eq!(p.part(&7), 1);
        assert_eq!(p.part(&9), 1);
    }

    #[test]
    fn boundary_key_goes_right() {
        let p = RangePartitioner::from_sample(vec![10u64, 20, 30, 40], 2);
        let b = p.boundaries()[0];
        assert_eq!(p.part(&(b - 1)), 0);
        assert_eq!(p.part(&b), 1);
    }

    #[test]
    fn tuple_keys_work() {
        let sample: Vec<(u8, u64)> = (0..100).map(|i| (i as u8 % 4, i as u64)).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert!(p.part(&(0, 0)) <= p.part(&(3, 99)));
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        RangePartitioner::from_sample(vec![1u64], 0);
    }

    #[test]
    fn skewed_sample_still_monotone() {
        // 90% of keys identical: partitioner must stay consistent.
        let mut sample: Vec<u64> = vec![50; 900];
        sample.extend(0..100u64);
        let p = RangePartitioner::from_sample(sample, 10);
        let mut last = 0;
        for k in 0..200u64 {
            let part = p.part(&k);
            assert!(part >= last, "monotonicity at {}", k);
            last = part;
        }
    }
}
