//! Sort-output manifests.
//!
//! A manifest is a small JSON object written next to the sorted runs that
//! records what the operator produced — run keys in global order, record
//! counts, and byte sizes — so downstream stages can discover their
//! inputs without relying on key-format conventions (the same role
//! Lithops' result objects play for the paper's pipeline).

use bytes::Bytes;
use faaspipe_des::Ctx;
use faaspipe_store::StoreClient;

use crate::error::ShuffleError;

/// One sorted run in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunInfo {
    /// Object key of the run.
    pub key: String,
    /// Records in the run.
    pub records: u64,
    /// Real (unscaled) bytes of the run object.
    pub bytes: u64,
}

/// The manifest of one sort execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortManifest {
    /// Operator that produced the runs (`"serverless"` or `"vm"`).
    pub operator: String,
    /// Workers used.
    pub workers: usize,
    /// Total input bytes.
    pub input_bytes: u64,
    /// Total output bytes.
    pub output_bytes: u64,
    /// The runs, in global key order (their concatenation is the sorted
    /// dataset).
    pub runs: Vec<RunInfo>,
}

faaspipe_json::json_object! { RunInfo { req key, req records, req bytes } }
faaspipe_json::json_object! {
    SortManifest { req operator, req workers, req input_bytes, req output_bytes, req runs }
}

impl SortManifest {
    /// Total records across all runs.
    pub fn total_records(&self) -> u64 {
        self.runs.iter().map(|r| r.records).sum()
    }

    /// Serializes to JSON bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        faaspipe_json::to_vec_pretty(self)
    }

    /// Parses from JSON bytes.
    ///
    /// # Errors
    /// [`ShuffleError::Corrupt`] if the JSON is not a manifest.
    pub fn from_bytes(data: &[u8]) -> Result<SortManifest, ShuffleError> {
        faaspipe_json::from_slice(data).map_err(|_| ShuffleError::Corrupt { what: "manifest" })
    }

    /// Writes the manifest through a store client (one timed PUT).
    ///
    /// # Errors
    /// Propagates the store failure.
    pub fn write(
        &self,
        ctx: &mut Ctx,
        client: &StoreClient,
        bucket: &str,
        key: &str,
    ) -> Result<(), ShuffleError> {
        client.put(ctx, bucket, key, Bytes::from(self.to_bytes()))?;
        Ok(())
    }

    /// Async form of [`SortManifest::write`] for stackless processes.
    ///
    /// # Errors
    /// Store failures surfaced by the PUT.
    pub async fn write_async(
        &self,
        ctx: &mut Ctx,
        client: &StoreClient,
        bucket: &str,
        key: &str,
    ) -> Result<(), ShuffleError> {
        client
            .put_async(ctx, bucket, key, Bytes::from(self.to_bytes()))
            .await?;
        Ok(())
    }

    /// Reads a manifest through a store client (one timed GET).
    ///
    /// # Errors
    /// Store failures, or [`ShuffleError::Corrupt`] for non-manifest data.
    pub fn read(
        ctx: &mut Ctx,
        client: &StoreClient,
        bucket: &str,
        key: &str,
    ) -> Result<SortManifest, ShuffleError> {
        let data = client.get(ctx, bucket, key)?;
        SortManifest::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SortManifest {
        SortManifest {
            operator: "serverless".into(),
            workers: 4,
            input_bytes: 1000,
            output_bytes: 1000,
            runs: (0..4)
                .map(|j| RunInfo {
                    key: format!("out/{:05}", j),
                    records: 25,
                    bytes: 250,
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = SortManifest::from_bytes(&bytes).expect("parse");
        assert_eq!(back, m);
        assert_eq!(back.total_records(), 100);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(
            SortManifest::from_bytes(b"not json at all"),
            Err(ShuffleError::Corrupt { what: "manifest" })
        ));
        assert!(SortManifest::from_bytes(b"{\"workers\": 3}").is_err());
    }

    #[test]
    fn store_round_trip() {
        use faaspipe_des::Sim;
        use faaspipe_store::{ObjectStore, StoreConfig};
        use parking_lot::Mutex;
        use std::sync::Arc;

        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let got: Arc<Mutex<Option<SortManifest>>> = Arc::new(Mutex::new(None));
        let got2 = Arc::clone(&got);
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            let client = store2.connect(ctx, "manifest");
            let m = sample();
            m.write(ctx, &client, "data", "out/_manifest.json")
                .expect("write");
            *got2.lock() =
                Some(SortManifest::read(ctx, &client, "data", "out/_manifest.json").expect("read"));
        });
        sim.run().expect("sim ok");
        assert_eq!(got.lock().take().expect("read back"), sample());
    }
}
