//! The record abstraction the shuffle operator sorts, and its
//! implementations.

use faaspipe_methcomp::{MethRecord, Strand};

use crate::error::ShuffleError;

/// A fixed-size binary record with a totally ordered key.
///
/// Implementations define how records serialize into the intermediate
/// partition objects exchanged through the store.
pub trait SortRecord: Clone + Send + Sync + 'static {
    /// The sort key.
    type Key: Ord + Clone + Send + Sync + 'static;

    /// Extracts the sort key.
    fn key(&self) -> Self::Key;

    /// Serialized size in bytes (fixed per type).
    const WIRE_SIZE: usize;

    /// Appends the wire form to `out`.
    fn write_to(&self, out: &mut Vec<u8>);

    /// Parses one record from exactly [`SortRecord::WIRE_SIZE`] bytes.
    ///
    /// # Errors
    /// [`ShuffleError::Corrupt`] if the bytes are not a valid record.
    fn read_from(bytes: &[u8]) -> Result<Self, ShuffleError>;

    /// Extracts the sort key straight from one record's wire form,
    /// validating the record exactly as [`SortRecord::read_from`] would
    /// (same [`ShuffleError::Corrupt`] variants for the same inputs) but
    /// without materializing the record. The zero-copy shuffle kernels
    /// ([`crate::kernel`]) sort and merge wire buffers through this.
    ///
    /// # Errors
    /// [`ShuffleError::Corrupt`] if the bytes are not a valid record.
    fn key_from_wire(bytes: &[u8]) -> Result<Self::Key, ShuffleError> {
        Ok(Self::read_from(bytes)?.key())
    }

    /// Parses a whole buffer of concatenated records.
    ///
    /// # Errors
    /// [`ShuffleError::Corrupt`] if the length is not a multiple of the
    /// wire size or any record is invalid.
    fn read_all(data: &[u8]) -> Result<Vec<Self>, ShuffleError> {
        if !data.len().is_multiple_of(Self::WIRE_SIZE) {
            return Err(ShuffleError::Corrupt {
                what: "record buffer length",
            });
        }
        data.chunks_exact(Self::WIRE_SIZE)
            .map(Self::read_from)
            .collect()
    }

    /// Serializes a whole slice of records.
    fn write_all(records: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(records.len() * Self::WIRE_SIZE);
        for r in records {
            r.write_to(&mut out);
        }
        out
    }
}

/// Test/bench record: a plain `u64` sorted by value (8-byte LE).
impl SortRecord for u64 {
    type Key = u64;
    const WIRE_SIZE: usize = 8;

    fn key(&self) -> u64 {
        *self
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(bytes: &[u8]) -> Result<Self, ShuffleError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| ShuffleError::Corrupt { what: "u64 record" })?;
        Ok(u64::from_le_bytes(arr))
    }

    fn key_from_wire(bytes: &[u8]) -> Result<u64, ShuffleError> {
        Self::read_from(bytes)
    }
}

/// Methylation records sort by `(chrom, start, end, strand)` — the
/// pipeline's canonical genome order. Wire form: 23 bytes LE.
impl SortRecord for MethRecord {
    type Key = (u8, u64, u64, u8);
    const WIRE_SIZE: usize = 23;

    fn key(&self) -> Self::Key {
        (
            self.chrom,
            self.start,
            self.end,
            matches!(self.strand, Strand::Minus) as u8,
        )
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        out.push(self.chrom);
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.push(matches!(self.strand, Strand::Minus) as u8);
        out.extend_from_slice(&self.coverage.to_le_bytes());
        out.push(self.meth_pct);
    }

    fn read_from(bytes: &[u8]) -> Result<Self, ShuffleError> {
        if bytes.len() != Self::WIRE_SIZE {
            return Err(ShuffleError::Corrupt {
                what: "meth record size",
            });
        }
        let chrom = bytes[0];
        let start = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
        let end = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
        let strand = match bytes[17] {
            0 => Strand::Plus,
            1 => Strand::Minus,
            _ => {
                return Err(ShuffleError::Corrupt {
                    what: "meth record strand",
                })
            }
        };
        let coverage = u32::from_le_bytes(bytes[18..22].try_into().expect("4 bytes"));
        let meth_pct = bytes[22];
        if meth_pct > 100 || end <= start {
            return Err(ShuffleError::Corrupt {
                what: "meth record fields",
            });
        }
        Ok(MethRecord {
            chrom,
            start,
            end,
            strand,
            coverage,
            meth_pct,
        })
    }

    /// Validating fast path: decodes only the key fields, applying the
    /// same checks in the same order as `read_from` (size, strand,
    /// value ranges) so corrupt wire data reports identically.
    fn key_from_wire(bytes: &[u8]) -> Result<Self::Key, ShuffleError> {
        if bytes.len() != Self::WIRE_SIZE {
            return Err(ShuffleError::Corrupt {
                what: "meth record size",
            });
        }
        let chrom = bytes[0];
        let start = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
        let end = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
        let strand = bytes[17];
        if strand > 1 {
            return Err(ShuffleError::Corrupt {
                what: "meth record strand",
            });
        }
        if bytes[22] > 100 || end <= start {
            return Err(ShuffleError::Corrupt {
                what: "meth record fields",
            });
        }
        Ok((chrom, start, end, strand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_methcomp::synth::Synthesizer;

    #[test]
    fn u64_round_trip() {
        let records: Vec<u64> = vec![0, 1, u64::MAX, 42];
        let bytes = SortRecord::write_all(&records);
        assert_eq!(bytes.len(), 32);
        let got: Vec<u64> = SortRecord::read_all(&bytes).expect("round trip");
        assert_eq!(got, records);
    }

    #[test]
    fn meth_record_round_trip() {
        let ds = Synthesizer::new(21).generate_records(2_000);
        let bytes = SortRecord::write_all(&ds.records);
        assert_eq!(bytes.len(), 2_000 * MethRecord::WIRE_SIZE);
        let got: Vec<MethRecord> = SortRecord::read_all(&bytes).expect("round trip");
        assert_eq!(got, ds.records);
    }

    #[test]
    fn meth_key_matches_dataset_order() {
        let mut ds = Synthesizer::new(22).generate_shuffled(1_000);
        let mut by_trait = ds.records.clone();
        by_trait.sort_by_key(SortRecord::key);
        ds.sort();
        assert_eq!(by_trait, ds.records);
    }

    #[test]
    fn ragged_buffer_rejected() {
        let err = <u64 as SortRecord>::read_all(&[1, 2, 3]).expect_err("ragged");
        assert!(matches!(err, ShuffleError::Corrupt { .. }));
    }

    #[test]
    fn corrupt_strand_rejected() {
        let ds = Synthesizer::new(23).generate_records(1);
        let mut bytes = SortRecord::write_all(&ds.records);
        bytes[17] = 9;
        assert!(<MethRecord as SortRecord>::read_all(&bytes).is_err());
    }

    #[test]
    fn wire_keys_match_decoded_keys() {
        let ds = Synthesizer::new(24).generate_shuffled(1_000);
        let bytes = SortRecord::write_all(&ds.records);
        for (rec, wire) in ds
            .records
            .iter()
            .zip(bytes.chunks_exact(MethRecord::WIRE_SIZE))
        {
            assert_eq!(MethRecord::key_from_wire(wire).expect("valid"), rec.key());
        }
        let nums: Vec<u64> = vec![0, 1, u64::MAX, 0x0123_4567_89AB_CDEF];
        let bytes = SortRecord::write_all(&nums);
        for (n, wire) in nums.iter().zip(bytes.chunks_exact(8)) {
            assert_eq!(u64::key_from_wire(wire).expect("valid"), *n);
        }
    }

    /// `key_from_wire` must reject exactly what `read_from` rejects,
    /// with the same error description.
    #[test]
    fn wire_keys_reject_what_read_from_rejects() {
        fn corrupt_what(err: ShuffleError) -> &'static str {
            match err {
                ShuffleError::Corrupt { what } => what,
                other => panic!("expected Corrupt, got {other:?}"),
            }
        }
        let ds = Synthesizer::new(25).generate_records(1);
        let good = SortRecord::write_all(&ds.records);
        for mutate in [
            |b: &mut Vec<u8>| b.truncate(10), // wrong size
            |b: &mut Vec<u8>| b[17] = 7,      // bad strand
            |b: &mut Vec<u8>| b[22] = 101,    // meth_pct out of range
            |b: &mut Vec<u8>| {
                // end <= start
                let start = b[1..9].to_vec();
                b[9..17].copy_from_slice(&start);
            },
        ] {
            let mut bad = good.clone();
            mutate(&mut bad);
            let via_read = corrupt_what(MethRecord::read_from(&bad).expect_err("read_from"));
            let via_key = corrupt_what(MethRecord::key_from_wire(&bad).expect_err("key_from_wire"));
            assert_eq!(via_read, via_key);
        }
        assert!(u64::key_from_wire(&[1, 2, 3]).is_err());
    }
}
