//! Objects, buckets, and related value types.

use std::collections::BTreeMap;

use bytes::Bytes;
use faaspipe_des::{ByteSize, SimTime};

/// FNV-1a 64-bit hash used for ETags (stable, dependency-free).
pub(crate) fn etag_of(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A stored object.
#[derive(Debug, Clone)]
pub(crate) struct Object {
    pub data: Bytes,
    pub etag: u64,
    pub created: SimTime,
}

/// A bucket: an ordered key → object map plus in-flight multipart uploads.
#[derive(Debug, Default)]
pub(crate) struct Bucket {
    pub objects: BTreeMap<String, Object>,
    pub uploads: BTreeMap<u64, PartialUpload>,
}

/// An in-progress multipart upload.
#[derive(Debug, Default)]
pub(crate) struct PartialUpload {
    pub key: String,
    pub parts: BTreeMap<u32, Bytes>,
}

/// Result of a successful PUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutResult {
    /// Content hash of the stored object.
    pub etag: u64,
    /// Real (unscaled) stored size.
    pub len: ByteSize,
}

/// Listing entry returned by `list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectSummary {
    /// Object key.
    pub key: String,
    /// Real (unscaled) stored size.
    pub len: ByteSize,
    /// Content hash.
    pub etag: u64,
    /// Virtual time the object was written.
    pub created: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etag_distinguishes_content() {
        assert_ne!(etag_of(b"abc"), etag_of(b"abd"));
        assert_eq!(etag_of(b"abc"), etag_of(b"abc"));
        assert_ne!(etag_of(b""), etag_of(b"\0"));
    }

    #[test]
    fn etag_known_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(etag_of(b""), 0xcbf2_9ce4_8422_2325);
    }
}
