//! Request accounting, grouped by billing class and by client tag.
//!
//! Cost models (in `faaspipe-core`) turn these counters into dollars; the
//! per-tag breakdown is what powers the paper's per-stage cost display
//! (§2.4, the IPython job tracker).

use std::collections::BTreeMap;

use faaspipe_des::ByteSize;

/// Billing class of a request, mirroring COS/S3 pricing tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestClass {
    /// Mutating/listing requests: PUT, COPY, LIST, multipart operations.
    ClassA,
    /// Read requests: GET, HEAD.
    ClassB,
    /// Deletes (free on most providers, tracked anyway).
    Delete,
}

/// Counters for one client tag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagMetrics {
    /// Class-A (write/list) request count.
    pub class_a: u64,
    /// Class-B (read) request count.
    pub class_b: u64,
    /// Delete request count.
    pub deletes: u64,
    /// Modelled bytes uploaded.
    pub bytes_in: ByteSize,
    /// Modelled bytes downloaded.
    pub bytes_out: ByteSize,
    /// Requests that failed (including injected faults).
    pub errors: u64,
}

impl TagMetrics {
    /// Total request count across classes.
    pub fn total_requests(&self) -> u64 {
        self.class_a + self.class_b + self.deletes
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &TagMetrics) {
        self.class_a += other.class_a;
        self.class_b += other.class_b;
        self.deletes += other.deletes;
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.bytes_out = self.bytes_out.saturating_add(other.bytes_out);
        self.errors += other.errors;
    }
}

/// Store-wide metrics: a per-tag breakdown plus helpers for totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    per_tag: BTreeMap<String, TagMetrics>,
}

impl StoreMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        StoreMetrics::default()
    }

    /// Records a request for `tag`.
    pub fn record(
        &mut self,
        tag: &str,
        class: RequestClass,
        bytes_in: u64,
        bytes_out: u64,
        failed: bool,
    ) {
        let m = self.per_tag.entry(tag.to_string()).or_default();
        match class {
            RequestClass::ClassA => m.class_a += 1,
            RequestClass::ClassB => m.class_b += 1,
            RequestClass::Delete => m.deletes += 1,
        }
        m.bytes_in = m.bytes_in.saturating_add(ByteSize::new(bytes_in));
        m.bytes_out = m.bytes_out.saturating_add(ByteSize::new(bytes_out));
        if failed {
            m.errors += 1;
        }
    }

    /// Metrics for one tag, if it issued any request.
    pub fn tag(&self, tag: &str) -> Option<&TagMetrics> {
        self.per_tag.get(tag)
    }

    /// Iterates over `(tag, metrics)` in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TagMetrics)> {
        self.per_tag.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of all tags.
    pub fn total(&self) -> TagMetrics {
        let mut t = TagMetrics::default();
        for m in self.per_tag.values() {
            t.merge(m);
        }
        t
    }

    /// Sum of all tags belonging to `scope`: the tag equals `scope` or
    /// starts with `scope/`. With the cluster's `tenant/run/stage` tag
    /// convention this is one tenant's store traffic.
    pub fn total_for_scope(&self, scope: &str) -> TagMetrics {
        let mut t = TagMetrics::default();
        for (tag, m) in &self.per_tag {
            if tag == scope || (tag.starts_with(scope) && tag[scope.len()..].starts_with('/')) {
                t.merge(m);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_class_and_tag() {
        let mut m = StoreMetrics::new();
        m.record("sort", RequestClass::ClassA, 100, 0, false);
        m.record("sort", RequestClass::ClassB, 0, 50, false);
        m.record("encode", RequestClass::ClassB, 0, 70, true);
        let sort = m.tag("sort").expect("sort recorded");
        assert_eq!(sort.class_a, 1);
        assert_eq!(sort.class_b, 1);
        assert_eq!(sort.bytes_in.as_u64(), 100);
        assert_eq!(sort.bytes_out.as_u64(), 50);
        assert_eq!(sort.errors, 0);
        let enc = m.tag("encode").expect("encode recorded");
        assert_eq!(enc.errors, 1);
        assert_eq!(m.total().total_requests(), 3);
        assert_eq!(m.total().bytes_out.as_u64(), 120);
    }

    #[test]
    fn iter_is_sorted_by_tag() {
        let mut m = StoreMetrics::new();
        m.record("z", RequestClass::Delete, 0, 0, false);
        m.record("a", RequestClass::ClassA, 0, 0, false);
        let tags: Vec<&str> = m.iter().map(|(t, _)| t).collect();
        assert_eq!(tags, vec!["a", "z"]);
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = TagMetrics {
            class_a: 1,
            class_b: 2,
            deletes: 3,
            bytes_in: ByteSize::new(10),
            bytes_out: ByteSize::new(20),
            errors: 1,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.class_a, 2);
        assert_eq!(a.total_requests(), 12);
        assert_eq!(a.bytes_in.as_u64(), 20);
    }
}
