//! Fault injection for the object store.

use rand::Rng;

/// Probabilistic fault injection applied to every request.
///
/// Used by failure-injection tests and the resilience experiments: a
/// request may fail outright (the client sees
/// [`StoreError::Injected`](crate::StoreError::Injected)) or be slowed
/// down by a multiplicative factor on its first-byte latency.
#[derive(Debug, Clone)]
pub struct FailurePolicy {
    /// Probability in `[0, 1]` that a request fails.
    pub error_rate: f64,
    /// Probability in `[0, 1]` that a request is slowed down.
    pub slow_rate: f64,
    /// Latency multiplier applied to slowed requests.
    pub slow_factor: f64,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy {
            error_rate: 0.0,
            slow_rate: 0.0,
            slow_factor: 1.0,
        }
    }
}

impl FailurePolicy {
    /// A policy that never injects faults.
    pub fn none() -> Self {
        FailurePolicy::default()
    }

    /// A policy failing requests with probability `rate`.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_error_rate(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "error_rate must be in [0,1]");
        FailurePolicy {
            error_rate: rate,
            ..FailurePolicy::default()
        }
    }

    /// A policy slowing requests with probability `rate` by `factor`.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]` or `factor < 1`.
    pub fn with_slowdown(rate: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "slow_rate must be in [0,1]");
        assert!(factor >= 1.0, "slow_factor must be >= 1");
        FailurePolicy {
            slow_rate: rate,
            slow_factor: factor,
            ..FailurePolicy::default()
        }
    }

    /// Whether any fault can ever fire (fast path check).
    pub fn is_active(&self) -> bool {
        self.error_rate > 0.0 || self.slow_rate > 0.0
    }

    /// Draws the fate of one request.
    pub fn draw(&self, rng: &mut impl Rng) -> Fate {
        if !self.is_active() {
            return Fate::Ok;
        }
        if self.error_rate > 0.0 && rng.gen::<f64>() < self.error_rate {
            return Fate::Fail;
        }
        if self.slow_rate > 0.0 && rng.gen::<f64>() < self.slow_rate {
            return Fate::Slow(self.slow_factor);
        }
        Fate::Ok
    }
}

/// Outcome drawn for a single request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fate {
    /// Proceed normally.
    Ok,
    /// Fail with an injected error.
    Fail,
    /// Proceed with first-byte latency multiplied by the factor.
    Slow(f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn inactive_policy_never_fails() {
        let p = FailurePolicy::none();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(p.draw(&mut rng), Fate::Ok);
        }
    }

    #[test]
    fn full_error_rate_always_fails() {
        let p = FailurePolicy::with_error_rate(1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(p.draw(&mut rng), Fate::Fail);
        }
    }

    #[test]
    fn slowdown_distribution_roughly_matches_rate() {
        let p = FailurePolicy::with_slowdown(0.5, 3.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let slow = (0..10_000)
            .filter(|_| matches!(p.draw(&mut rng), Fate::Slow(_)))
            .count();
        assert!((4_000..6_000).contains(&slow), "got {}", slow);
    }

    #[test]
    #[should_panic(expected = "error_rate")]
    fn rejects_bad_rate() {
        FailurePolicy::with_error_rate(1.5);
    }

    #[test]
    #[should_panic(expected = "slow_factor")]
    fn rejects_bad_factor() {
        FailurePolicy::with_slowdown(0.5, 0.5);
    }
}
