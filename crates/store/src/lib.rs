//! # faaspipe-store — simulated cloud object storage
//!
//! An in-memory object store with an S3/IBM-COS-shaped API, wired into the
//! [`faaspipe-des`](faaspipe_des) virtual-time kernel. The **data plane is
//! real** — objects hold actual bytes, so pipelines built on top can be
//! checked end-to-end — while the **control plane is modelled**: every
//! request pays a first-byte latency, occupies a slot of the store's
//! operations/s budget (the paper's "IBM COS only supports a few thousand
//! operations/s"), and moves its payload through bandwidth-constrained
//! links shared max-min fairly with all concurrent requests.
//!
//! ## Example
//!
//! ```
//! use faaspipe_des::Sim;
//! use faaspipe_store::{ObjectStore, StoreConfig};
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Sim::new();
//! let store = ObjectStore::install(&mut sim, StoreConfig::default());
//! store.create_bucket("data")?;
//! let handle = store.clone();
//! sim.spawn("writer", move |ctx| {
//!     let client = handle.connect(ctx, "example");
//!     client.put(ctx, "data", "greeting", Bytes::from("hello")).unwrap();
//!     let body = client.get(ctx, "data", "greeting").unwrap();
//!     assert_eq!(&body[..], b"hello");
//! });
//! sim.run()?;
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod error;
pub mod failure;
pub mod metrics;
pub mod object;
pub mod service;

pub use config::StoreConfig;
pub use error::StoreError;
pub use failure::FailurePolicy;
pub use metrics::{RequestClass, StoreMetrics, TagMetrics};
pub use object::{ObjectSummary, PutResult};
pub use service::{MultipartUpload, ObjectStore, StoreClient};
