//! The object-store service and its per-connection client.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe_des::{run_blocking, ByteSize, Ctx, LimiterId, LinkId, Sim, SimTime};
use faaspipe_trace::{Category, SpanId, TraceSink};

use crate::config::StoreConfig;
use crate::error::StoreError;
use crate::failure::Fate;
use crate::metrics::{RequestClass, StoreMetrics};
use crate::object::{etag_of, Bucket, Object, ObjectSummary, PartialUpload, PutResult};

use std::collections::BTreeMap;

/// The simulated object-storage service.
///
/// Install one per simulation with [`ObjectStore::install`], then create
/// per-task [`StoreClient`]s inside processes with
/// [`ObjectStore::connect`]. Administrative helpers (bucket creation,
/// content inspection, metrics) do not consume virtual time and may be
/// called from outside the simulation.
pub struct ObjectStore {
    cfg: StoreConfig,
    buckets: Mutex<BTreeMap<String, Bucket>>,
    metrics: Mutex<StoreMetrics>,
    aggregate: LinkId,
    ops: LimiterId,
    /// Per-tenant ops/s token buckets (admission control), keyed by the
    /// client tag's first `/`-segment. Empty unless a cluster installs
    /// scope limits; requests then pay the scope's bucket *after* the
    /// global one.
    scope_ops: Mutex<BTreeMap<String, LimiterId>>,
    next_upload: AtomicU64,
    trace: Mutex<TraceSink>,
    inflight: AtomicU64,
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("buckets", &self.buckets.lock().len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl ObjectStore {
    /// Creates the service and registers its shared resources (aggregate
    /// backbone link, operations/s limiter) with the simulation.
    pub fn install(sim: &mut Sim, cfg: StoreConfig) -> Arc<ObjectStore> {
        let aggregate = sim.create_link(cfg.aggregate_bw);
        let ops = sim.create_limiter(cfg.ops_per_sec, cfg.ops_burst);
        Arc::new(ObjectStore {
            cfg,
            buckets: Mutex::new(BTreeMap::new()),
            metrics: Mutex::new(StoreMetrics::new()),
            aggregate,
            ops,
            scope_ops: Mutex::new(BTreeMap::new()),
            next_upload: AtomicU64::new(1),
            trace: Mutex::new(TraceSink::disabled()),
            inflight: AtomicU64::new(0),
        })
    }

    /// Routes per-request spans and counters to `sink`. Clients created
    /// after this call record; the default sink is disabled.
    pub fn set_trace_sink(&self, sink: TraceSink) {
        *self.trace.lock() = sink;
    }

    /// A clone of the store's current trace sink (disabled by default).
    pub fn trace_sink(&self) -> TraceSink {
        self.trace.lock().clone()
    }

    /// The service configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Creates a bucket.
    ///
    /// # Errors
    /// Returns [`StoreError::BucketAlreadyExists`] on name collision.
    pub fn create_bucket(&self, name: impl Into<String>) -> Result<(), StoreError> {
        let name = name.into();
        let mut buckets = self.buckets.lock();
        if buckets.contains_key(&name) {
            return Err(StoreError::BucketAlreadyExists { bucket: name });
        }
        buckets.insert(name, Bucket::default());
        Ok(())
    }

    /// Opens a connection from the calling process, tagged for metrics
    /// attribution. The connection gets its own per-connection bandwidth
    /// link.
    pub fn connect(self: &Arc<Self>, ctx: &Ctx, tag: impl Into<String>) -> StoreClient {
        run_blocking(self.connect_async(ctx, tag))
    }

    /// Async form of [`ObjectStore::connect`] for stackless processes.
    pub async fn connect_async(self: &Arc<Self>, ctx: &Ctx, tag: impl Into<String>) -> StoreClient {
        self.connect_via_async(ctx, tag, &[]).await
    }

    /// Like [`ObjectStore::connect`], but transfers additionally traverse
    /// `host_links` (e.g. the NIC of the function container or VM issuing
    /// the requests).
    pub fn connect_via(
        self: &Arc<Self>,
        ctx: &Ctx,
        tag: impl Into<String>,
        host_links: &[LinkId],
    ) -> StoreClient {
        run_blocking(self.connect_via_async(ctx, tag, host_links))
    }

    /// Async form of [`ObjectStore::connect_via`] for stackless processes.
    pub async fn connect_via_async(
        self: &Arc<Self>,
        ctx: &Ctx,
        tag: impl Into<String>,
        host_links: &[LinkId],
    ) -> StoreClient {
        let conn = ctx.link_create_async(self.cfg.per_connection_bw).await;
        let mut links = vec![conn, self.aggregate];
        links.extend_from_slice(host_links);
        let tag = tag.into();
        let scope_ops = {
            let scopes = self.scope_ops.lock();
            if scopes.is_empty() {
                None
            } else {
                tag.split('/')
                    .next()
                    .and_then(|scope| scopes.get(scope).copied())
            }
        };
        StoreClient {
            store: Arc::clone(self),
            links,
            tag,
            scope_ops,
            trace: self.trace.lock().clone(),
        }
    }

    /// Installs a per-tenant ops/s token bucket: every request from a
    /// client whose tag's first `/`-segment equals `scope` additionally
    /// acquires from this bucket (on top of the store-wide limiter).
    /// Call before spawning the tenant's processes — existing clients
    /// are not re-resolved.
    pub fn set_scope_ops_limit(
        &self,
        sim: &mut Sim,
        scope: impl Into<String>,
        ops_per_sec: f64,
        burst: f64,
    ) {
        let limiter = sim.create_limiter(ops_per_sec, burst);
        self.scope_ops.lock().insert(scope.into(), limiter);
    }

    /// Snapshot of the request metrics.
    pub fn metrics(&self) -> StoreMetrics {
        self.metrics.lock().clone()
    }

    /// Writes an object **outside virtual time and billing** — an
    /// administrative backdoor for staging input datasets that, in the
    /// paper's setup, already live in COS before the pipeline starts.
    /// Never call this from code whose performance is being measured.
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] if the bucket is unknown.
    pub fn put_untimed(
        &self,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        let mut buckets = self.buckets.lock();
        let b = buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket {
                bucket: bucket.to_string(),
            })?;
        let etag = etag_of(&data);
        let len = ByteSize::new(data.len() as u64);
        b.objects.insert(
            key.to_string(),
            Object {
                data,
                etag,
                created: SimTime::ZERO,
            },
        );
        Ok(PutResult { etag, len })
    }

    /// Lists keys under a prefix **outside virtual time** (verification
    /// and test use).
    pub fn keys_untimed(&self, bucket: &str, prefix: &str) -> Vec<String> {
        self.buckets
            .lock()
            .get(bucket)
            .map(|b| {
                b.objects
                    .range(prefix.to_string()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Peeks at an object's bytes without timing (test/verification use).
    pub fn peek(&self, bucket: &str, key: &str) -> Option<Bytes> {
        self.buckets
            .lock()
            .get(bucket)
            .and_then(|b| b.objects.get(key))
            .map(|o| o.data.clone())
    }

    /// Number of objects in a bucket (0 for unknown buckets).
    pub fn object_count(&self, bucket: &str) -> usize {
        self.buckets
            .lock()
            .get(bucket)
            .map_or(0, |b| b.objects.len())
    }

    /// Total real bytes stored across all buckets.
    pub fn stored_bytes(&self) -> ByteSize {
        let buckets = self.buckets.lock();
        ByteSize::new(
            buckets
                .values()
                .flat_map(|b| b.objects.values())
                .map(|o| o.data.len() as u64)
                .sum(),
        )
    }

    fn record(&self, tag: &str, class: RequestClass, bin: u64, bout: u64, failed: bool) {
        self.metrics.lock().record(tag, class, bin, bout, failed);
    }
}

/// A per-connection handle used by simulation processes to issue requests.
///
/// Every operation blocks the calling process in virtual time for the
/// request's modelled duration: an operations/s slot, the first-byte
/// latency, and a fair-share payload transfer.
pub struct StoreClient {
    store: Arc<ObjectStore>,
    links: Vec<LinkId>,
    tag: String,
    /// The tenant's ops bucket, resolved from the tag at connect time.
    scope_ops: Option<LimiterId>,
    trace: TraceSink,
}

impl std::fmt::Debug for StoreClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreClient")
            .field("tag", &self.tag)
            .finish()
    }
}

/// Identifier of a multipart upload in progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultipartUpload {
    /// Opaque upload id.
    pub id: u64,
}

impl StoreClient {
    /// The metrics tag this client reports under.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// A reference to the owning store.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// Charges the fixed request overhead: an ops/s slot plus first-byte
    /// latency (possibly inflated by fault injection). Returns an injected
    /// error without touching state when the failure policy says so.
    async fn request_overhead(&self, ctx: &mut Ctx, op: &'static str) -> Result<(), StoreError> {
        let cfg = &self.store.cfg;
        ctx.limiter_acquire_async(self.store.ops, 1.0).await;
        if let Some(scope_ops) = self.scope_ops {
            ctx.limiter_acquire_async(scope_ops, 1.0).await;
        }
        let fate = cfg.failure.draw(ctx.rng());
        let latency = match fate {
            Fate::Slow(factor) => cfg.first_byte_latency.mul_f64(factor),
            _ => cfg.first_byte_latency,
        };
        ctx.sleep_async(latency).await;
        if matches!(fate, Fate::Fail) {
            return Err(StoreError::Injected { op });
        }
        Ok(())
    }

    /// Opens a [`Category::StoreRequest`] span for one operation,
    /// parented to the calling process's innermost open span (the
    /// invocation or stage issuing the request). Free when disabled.
    fn trace_begin(&self, ctx: &Ctx, op: &'static str, key: &str) -> SpanId {
        if !self.trace.is_enabled() {
            return SpanId::NONE;
        }
        let parent = self.trace.current(ctx.pid());
        let span = self.trace.span_start(
            Category::StoreRequest,
            op,
            "store",
            &self.tag,
            parent,
            ctx.now(),
        );
        if !key.is_empty() {
            self.trace.attr(span, "key", key);
        }
        span
    }

    /// Books the operation in the metrics AND closes its span with the
    /// billing class and wire byte counts.
    fn finish(
        &self,
        ctx: &Ctx,
        span: SpanId,
        class: RequestClass,
        bytes_in: u64,
        bytes_out: u64,
        failed: bool,
    ) {
        self.store
            .record(&self.tag, class, bytes_in, bytes_out, failed);
        if span.is_none() {
            return;
        }
        let class_name = match class {
            RequestClass::ClassA => "class-a",
            RequestClass::ClassB => "class-b",
            RequestClass::Delete => "delete",
        };
        self.trace.attr(span, "class", class_name);
        if bytes_in > 0 {
            self.trace.attr(span, "bytes_in", bytes_in);
        }
        if bytes_out > 0 {
            self.trace.attr(span, "bytes_out", bytes_out);
        }
        if failed {
            self.trace.attr(span, "failed", true);
        }
        self.trace.span_end(span, ctx.now());
    }

    /// Estimated aggregate bandwidth in use with `flows` concurrent
    /// transfers: each flow is capped by its connection, the total by
    /// the backbone.
    fn bandwidth_estimate(&self, flows: u64) -> f64 {
        let per_conn = self.store.cfg.per_connection_bw.as_bytes_per_sec();
        (flows as f64 * per_conn).min(self.store.cfg.aggregate_bw.as_bytes_per_sec())
    }

    async fn transfer_scaled(&self, ctx: &Ctx, real_len: usize, parent: SpanId) {
        let wire = self.store.cfg.scaled_len(real_len);
        let flow = if self.trace.is_enabled() {
            let flows = self.store.inflight.fetch_add(1, Ordering::SeqCst) + 1;
            let now = ctx.now();
            self.trace.gauge("store.inflight_flows", now, flows as f64);
            self.trace.gauge(
                "store.bandwidth_in_use",
                now,
                self.bandwidth_estimate(flows),
            );
            let flow =
                self.trace
                    .span_start(Category::Flow, "xfer", "store", &self.tag, parent, now);
            self.trace.attr(flow, "wire_bytes", wire);
            flow
        } else {
            SpanId::NONE
        };
        ctx.transfer_async(ByteSize::new(wire), &self.links).await;
        if !flow.is_none() {
            let flows = self.store.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
            let now = ctx.now();
            self.trace.gauge("store.inflight_flows", now, flows as f64);
            self.trace.gauge(
                "store.bandwidth_in_use",
                now,
                self.bandwidth_estimate(flows),
            );
            self.trace.span_end(flow, now);
        }
    }

    /// Uploads an object, replacing any existing value at the key.
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] if the bucket is unknown;
    /// [`StoreError::Injected`] under fault injection.
    pub fn put(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        run_blocking(self.put_async(ctx, bucket, key, data))
    }

    /// Async form of [`StoreClient::put`] for stackless processes.
    pub async fn put_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        let wire = self.store.cfg.scaled_len(data.len());
        let span = self.trace_begin(ctx, "PUT", key);
        if let Err(e) = self.request_overhead(ctx, "PUT").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        self.transfer_scaled(ctx, data.len(), span).await;
        let result = self.commit_put(ctx, bucket, key, data);
        self.finish(ctx, span, RequestClass::ClassA, wire, 0, result.is_err());
        result
    }

    fn commit_put(
        &self,
        ctx: &Ctx,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        let mut buckets = self.store.buckets.lock();
        let b = buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket {
                bucket: bucket.to_string(),
            })?;
        let etag = etag_of(&data);
        let len = ByteSize::new(data.len() as u64);
        b.objects.insert(
            key.to_string(),
            Object {
                data,
                etag,
                created: ctx.now(),
            },
        );
        Ok(PutResult { etag, len })
    }

    /// Uploads an object only if the key does not exist yet (atomic
    /// create, the moral equivalent of `If-None-Match: *`).
    ///
    /// # Errors
    /// [`StoreError::PreconditionFailed`] if the key already exists.
    pub fn put_if_absent(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        run_blocking(self.put_if_absent_async(ctx, bucket, key, data))
    }

    /// Async form of [`StoreClient::put_if_absent`] for stackless processes.
    pub async fn put_if_absent_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        let span = self.trace_begin(ctx, "PUT", key);
        if let Err(e) = self.request_overhead(ctx, "PUT").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        let wire = self.store.cfg.scaled_len(data.len());
        self.transfer_scaled(ctx, data.len(), span).await;
        // Validated atomically at commit (see put_if_match): checking
        // before the blocking transfer would let two creators race.
        let result = {
            let mut buckets = self.store.buckets.lock();
            match buckets.get_mut(bucket) {
                None => Err(StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                }),
                Some(b) => {
                    if b.objects.contains_key(key) {
                        Err(StoreError::PreconditionFailed {
                            key: key.to_string(),
                        })
                    } else {
                        let etag = etag_of(&data);
                        let len = ByteSize::new(data.len() as u64);
                        b.objects.insert(
                            key.to_string(),
                            Object {
                                data,
                                etag,
                                created: ctx.now(),
                            },
                        );
                        Ok(PutResult { etag, len })
                    }
                }
            }
        };
        self.finish(ctx, span, RequestClass::ClassA, wire, 0, result.is_err());
        result
    }

    /// Replaces an object only if its current content hash equals
    /// `expected_etag` (compare-and-swap, the moral equivalent of
    /// `If-Match`). The building block for optimistic coordination
    /// between functions.
    ///
    /// # Errors
    /// [`StoreError::PreconditionFailed`] when the stored ETag differs or
    /// the key is missing; the usual lookup and injection errors
    /// otherwise.
    pub fn put_if_match(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        expected_etag: u64,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        run_blocking(self.put_if_match_async(ctx, bucket, key, expected_etag, data))
    }

    /// Async form of [`StoreClient::put_if_match`] for stackless processes.
    pub async fn put_if_match_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        expected_etag: u64,
        data: Bytes,
    ) -> Result<PutResult, StoreError> {
        let span = self.trace_begin(ctx, "PUT", key);
        if let Err(e) = self.request_overhead(ctx, "PUT").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        let wire = self.store.cfg.scaled_len(data.len());
        self.transfer_scaled(ctx, data.len(), span).await;
        // The condition is validated atomically at commit time — checking
        // before the (blocking, virtual-time) transfer would be a TOCTOU
        // hole letting two writers race past each other.
        let result = {
            let mut buckets = self.store.buckets.lock();
            match buckets.get_mut(bucket) {
                None => Err(StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                }),
                Some(b) => match b.objects.get(key) {
                    Some(o) if o.etag == expected_etag => {
                        let etag = etag_of(&data);
                        let len = ByteSize::new(data.len() as u64);
                        b.objects.insert(
                            key.to_string(),
                            Object {
                                data,
                                etag,
                                created: ctx.now(),
                            },
                        );
                        Ok(PutResult { etag, len })
                    }
                    _ => Err(StoreError::PreconditionFailed {
                        key: key.to_string(),
                    }),
                },
            }
        };
        self.finish(ctx, span, RequestClass::ClassA, wire, 0, result.is_err());
        result
    }

    /// Downloads a whole object.
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] / [`StoreError::NoSuchKey`] when
    /// missing; [`StoreError::Injected`] under fault injection.
    pub fn get(&self, ctx: &mut Ctx, bucket: &str, key: &str) -> Result<Bytes, StoreError> {
        run_blocking(self.get_async(ctx, bucket, key))
    }

    /// Async form of [`StoreClient::get`] for stackless processes.
    pub async fn get_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
    ) -> Result<Bytes, StoreError> {
        let span = self.trace_begin(ctx, "GET", key);
        if let Err(e) = self.request_overhead(ctx, "GET").await {
            self.finish(ctx, span, RequestClass::ClassB, 0, 0, true);
            return Err(e);
        }
        let data = self.lookup(bucket, key);
        match data {
            Err(e) => {
                self.finish(ctx, span, RequestClass::ClassB, 0, 0, true);
                Err(e)
            }
            Ok(data) => {
                let wire = self.store.cfg.scaled_len(data.len());
                self.transfer_scaled(ctx, data.len(), span).await;
                self.finish(ctx, span, RequestClass::ClassB, 0, wire, false);
                Ok(data)
            }
        }
    }

    /// Downloads `len` bytes starting at `offset`.
    ///
    /// # Errors
    /// [`StoreError::InvalidRange`] if the range exceeds the object.
    pub fn get_range(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        offset: u64,
        len: u64,
    ) -> Result<Bytes, StoreError> {
        run_blocking(self.get_range_async(ctx, bucket, key, offset, len))
    }

    /// Async form of [`StoreClient::get_range`] for stackless processes.
    pub async fn get_range_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
        offset: u64,
        len: u64,
    ) -> Result<Bytes, StoreError> {
        let span = self.trace_begin(ctx, "GET", key);
        if let Err(e) = self.request_overhead(ctx, "GET").await {
            self.finish(ctx, span, RequestClass::ClassB, 0, 0, true);
            return Err(e);
        }
        let result = self.lookup(bucket, key).and_then(|data| {
            let end = offset.checked_add(len);
            match end {
                Some(end) if end <= data.len() as u64 => {
                    Ok(data.slice(offset as usize..end as usize))
                }
                _ => Err(StoreError::InvalidRange {
                    offset,
                    len,
                    object_len: data.len() as u64,
                }),
            }
        });
        match result {
            Err(e) => {
                self.finish(ctx, span, RequestClass::ClassB, 0, 0, true);
                Err(e)
            }
            Ok(slice) => {
                let wire = self.store.cfg.scaled_len(slice.len());
                self.transfer_scaled(ctx, slice.len(), span).await;
                self.finish(ctx, span, RequestClass::ClassB, 0, wire, false);
                Ok(slice)
            }
        }
    }

    fn lookup(&self, bucket: &str, key: &str) -> Result<Bytes, StoreError> {
        let buckets = self.store.buckets.lock();
        let b = buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket {
                bucket: bucket.to_string(),
            })?;
        b.objects
            .get(key)
            .map(|o| o.data.clone())
            .ok_or_else(|| StoreError::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            })
    }

    /// Fetches object metadata without the payload.
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] / [`StoreError::NoSuchKey`] when missing.
    pub fn head(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
    ) -> Result<ObjectSummary, StoreError> {
        run_blocking(self.head_async(ctx, bucket, key))
    }

    /// Async form of [`StoreClient::head`] for stackless processes.
    pub async fn head_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
    ) -> Result<ObjectSummary, StoreError> {
        let span = self.trace_begin(ctx, "HEAD", key);
        if let Err(e) = self.request_overhead(ctx, "HEAD").await {
            self.finish(ctx, span, RequestClass::ClassB, 0, 0, true);
            return Err(e);
        }
        let result = {
            let buckets = self.store.buckets.lock();
            buckets
                .get(bucket)
                .ok_or_else(|| StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                })
                .and_then(|b| {
                    b.objects
                        .get(key)
                        .map(|o| ObjectSummary {
                            key: key.to_string(),
                            len: ByteSize::new(o.data.len() as u64),
                            etag: o.etag,
                            created: o.created,
                        })
                        .ok_or_else(|| StoreError::NoSuchKey {
                            bucket: bucket.to_string(),
                            key: key.to_string(),
                        })
                })
        };
        self.finish(ctx, span, RequestClass::ClassB, 0, 0, result.is_err());
        result
    }

    /// Whether an object exists (a HEAD that maps "missing" to `false`).
    ///
    /// # Errors
    /// Only infrastructure errors ([`StoreError::Injected`],
    /// [`StoreError::NoSuchBucket`]) are returned.
    pub fn exists(&self, ctx: &mut Ctx, bucket: &str, key: &str) -> Result<bool, StoreError> {
        run_blocking(self.exists_async(ctx, bucket, key))
    }

    /// Async form of [`StoreClient::exists`] for stackless processes.
    pub async fn exists_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
    ) -> Result<bool, StoreError> {
        match self.head_async(ctx, bucket, key).await {
            Ok(_) => Ok(true),
            Err(StoreError::NoSuchKey { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Lists objects whose key starts with `prefix`, in key order.
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] if the bucket is unknown.
    pub fn list(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        prefix: &str,
    ) -> Result<Vec<ObjectSummary>, StoreError> {
        run_blocking(self.list_async(ctx, bucket, prefix))
    }

    /// Async form of [`StoreClient::list`] for stackless processes.
    pub async fn list_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        prefix: &str,
    ) -> Result<Vec<ObjectSummary>, StoreError> {
        let span = self.trace_begin(ctx, "LIST", prefix);
        if let Err(e) = self.request_overhead(ctx, "LIST").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        let result = {
            let buckets = self.store.buckets.lock();
            buckets
                .get(bucket)
                .ok_or_else(|| StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                })
                .map(|b| {
                    b.objects
                        .range(prefix.to_string()..)
                        .take_while(|(k, _)| k.starts_with(prefix))
                        .map(|(k, o)| ObjectSummary {
                            key: k.clone(),
                            len: ByteSize::new(o.data.len() as u64),
                            etag: o.etag,
                            created: o.created,
                        })
                        .collect::<Vec<_>>()
                })
        };
        self.finish(ctx, span, RequestClass::ClassA, 0, 0, result.is_err());
        result
    }

    /// Paginated listing: returns up to `max_keys` objects with keys
    /// strictly greater than `start_after` (pass `""` for the first
    /// page), plus the last key to continue from when more remain.
    ///
    /// Each page is one class-A request, like S3's `ListObjectsV2`
    /// continuation protocol.
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] if the bucket is unknown.
    pub fn list_page(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        prefix: &str,
        start_after: &str,
        max_keys: usize,
    ) -> Result<(Vec<ObjectSummary>, Option<String>), StoreError> {
        run_blocking(self.list_page_async(ctx, bucket, prefix, start_after, max_keys))
    }

    /// Async form of [`StoreClient::list_page`] for stackless processes.
    pub async fn list_page_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        prefix: &str,
        start_after: &str,
        max_keys: usize,
    ) -> Result<(Vec<ObjectSummary>, Option<String>), StoreError> {
        let span = self.trace_begin(ctx, "LIST", prefix);
        if let Err(e) = self.request_overhead(ctx, "LIST").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        let result = {
            let buckets = self.store.buckets.lock();
            buckets
                .get(bucket)
                .ok_or_else(|| StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                })
                .map(|b| {
                    let lower = if start_after.is_empty() {
                        prefix.to_string()
                    } else {
                        start_after.to_string()
                    };
                    let mut page: Vec<ObjectSummary> = b
                        .objects
                        .range(lower..)
                        .filter(|(k, _)| k.as_str() > start_after)
                        .take_while(|(k, _)| k.starts_with(prefix))
                        .take(max_keys + 1)
                        .map(|(k, o)| ObjectSummary {
                            key: k.clone(),
                            len: ByteSize::new(o.data.len() as u64),
                            etag: o.etag,
                            created: o.created,
                        })
                        .collect();
                    let more = page.len() > max_keys;
                    page.truncate(max_keys);
                    let token = if more {
                        page.last().map(|o| o.key.clone())
                    } else {
                        None
                    };
                    (page, token)
                })
        };
        self.finish(ctx, span, RequestClass::ClassA, 0, 0, result.is_err());
        result
    }

    /// Deletes an object. Deleting a missing key succeeds (like S3).
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] if the bucket is unknown.
    pub fn delete(&self, ctx: &mut Ctx, bucket: &str, key: &str) -> Result<(), StoreError> {
        run_blocking(self.delete_async(ctx, bucket, key))
    }

    /// Async form of [`StoreClient::delete`] for stackless processes.
    pub async fn delete_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
    ) -> Result<(), StoreError> {
        let span = self.trace_begin(ctx, "DELETE", key);
        if let Err(e) = self.request_overhead(ctx, "DELETE").await {
            self.finish(ctx, span, RequestClass::Delete, 0, 0, true);
            return Err(e);
        }
        let result = {
            let mut buckets = self.store.buckets.lock();
            match buckets.get_mut(bucket) {
                None => Err(StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                }),
                Some(b) => {
                    b.objects.remove(key);
                    Ok(())
                }
            }
        };
        self.finish(ctx, span, RequestClass::Delete, 0, 0, result.is_err());
        result
    }

    /// Server-side copy. The payload moves over the store backbone only,
    /// not over this client's connection.
    ///
    /// # Errors
    /// Standard lookup errors for the source; [`StoreError::NoSuchBucket`]
    /// for the destination.
    pub fn copy(
        &self,
        ctx: &mut Ctx,
        src_bucket: &str,
        src_key: &str,
        dst_bucket: &str,
        dst_key: &str,
    ) -> Result<PutResult, StoreError> {
        run_blocking(self.copy_async(ctx, src_bucket, src_key, dst_bucket, dst_key))
    }

    /// Async form of [`StoreClient::copy`] for stackless processes.
    pub async fn copy_async(
        &self,
        ctx: &mut Ctx,
        src_bucket: &str,
        src_key: &str,
        dst_bucket: &str,
        dst_key: &str,
    ) -> Result<PutResult, StoreError> {
        let span = self.trace_begin(ctx, "COPY", src_key);
        if let Err(e) = self.request_overhead(ctx, "COPY").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        let data = match self.lookup(src_bucket, src_key) {
            Ok(d) => d,
            Err(e) => {
                self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
                return Err(e);
            }
        };
        // Internal move: backbone only.
        let wire = self.store.cfg.scaled_len(data.len());
        let flow = if self.trace.is_enabled() {
            let flow =
                self.trace
                    .span_start(Category::Flow, "copy", "store", &self.tag, span, ctx.now());
            self.trace.attr(flow, "wire_bytes", wire);
            flow
        } else {
            SpanId::NONE
        };
        ctx.transfer_async(ByteSize::new(wire), &self.links[1..2])
            .await;
        self.trace.span_end(flow, ctx.now());
        let result = self.commit_put(ctx, dst_bucket, dst_key, data);
        self.finish(ctx, span, RequestClass::ClassA, 0, 0, result.is_err());
        result
    }

    /// Starts a multipart upload for `key`.
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] if the bucket is unknown.
    pub fn create_multipart(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
    ) -> Result<MultipartUpload, StoreError> {
        run_blocking(self.create_multipart_async(ctx, bucket, key))
    }

    /// Async form of [`StoreClient::create_multipart`] for stackless processes.
    pub async fn create_multipart_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        key: &str,
    ) -> Result<MultipartUpload, StoreError> {
        let span = self.trace_begin(ctx, "POST", key);
        if let Err(e) = self.request_overhead(ctx, "POST").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        let result = {
            let mut buckets = self.store.buckets.lock();
            match buckets.get_mut(bucket) {
                None => Err(StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                }),
                Some(b) => {
                    let id = self.store.next_upload.fetch_add(1, Ordering::SeqCst);
                    b.uploads.insert(
                        id,
                        PartialUpload {
                            key: key.to_string(),
                            parts: BTreeMap::new(),
                        },
                    );
                    Ok(MultipartUpload { id })
                }
            }
        };
        self.finish(ctx, span, RequestClass::ClassA, 0, 0, result.is_err());
        result
    }

    /// Uploads one part (parts are keyed by number; re-uploading a number
    /// replaces it).
    ///
    /// # Errors
    /// [`StoreError::NoSuchUpload`] if the upload id is unknown.
    pub fn upload_part(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        upload: MultipartUpload,
        part_number: u32,
        data: Bytes,
    ) -> Result<(), StoreError> {
        run_blocking(self.upload_part_async(ctx, bucket, upload, part_number, data))
    }

    /// Async form of [`StoreClient::upload_part`] for stackless processes.
    pub async fn upload_part_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        upload: MultipartUpload,
        part_number: u32,
        data: Bytes,
    ) -> Result<(), StoreError> {
        let wire = self.store.cfg.scaled_len(data.len());
        let span = self.trace_begin(ctx, "PUT", "");
        self.trace.attr(span, "upload_id", upload.id);
        self.trace.attr(span, "part", part_number);
        if let Err(e) = self.request_overhead(ctx, "PUT").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        self.transfer_scaled(ctx, data.len(), span).await;
        let result = {
            let mut buckets = self.store.buckets.lock();
            match buckets.get_mut(bucket) {
                None => Err(StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                }),
                Some(b) => match b.uploads.get_mut(&upload.id) {
                    None => Err(StoreError::NoSuchUpload {
                        upload_id: upload.id,
                    }),
                    Some(u) => {
                        u.parts.insert(part_number, data);
                        Ok(())
                    }
                },
            }
        };
        self.finish(ctx, span, RequestClass::ClassA, wire, 0, result.is_err());
        result
    }

    /// Completes a multipart upload, concatenating parts in part-number
    /// order into the final object.
    ///
    /// # Errors
    /// [`StoreError::NoSuchUpload`] if the upload id is unknown.
    pub fn complete_multipart(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        upload: MultipartUpload,
    ) -> Result<PutResult, StoreError> {
        run_blocking(self.complete_multipart_async(ctx, bucket, upload))
    }

    /// Async form of [`StoreClient::complete_multipart`] for stackless processes.
    pub async fn complete_multipart_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        upload: MultipartUpload,
    ) -> Result<PutResult, StoreError> {
        let span = self.trace_begin(ctx, "POST", "");
        self.trace.attr(span, "upload_id", upload.id);
        if let Err(e) = self.request_overhead(ctx, "POST").await {
            self.finish(ctx, span, RequestClass::ClassA, 0, 0, true);
            return Err(e);
        }
        let assembled = {
            let mut buckets = self.store.buckets.lock();
            match buckets.get_mut(bucket) {
                None => Err(StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                }),
                Some(b) => match b.uploads.remove(&upload.id) {
                    None => Err(StoreError::NoSuchUpload {
                        upload_id: upload.id,
                    }),
                    Some(u) => {
                        let total: usize = u.parts.values().map(|p| p.len()).sum();
                        let mut buf = Vec::with_capacity(total);
                        for part in u.parts.values() {
                            buf.extend_from_slice(part);
                        }
                        Ok((u.key, Bytes::from(buf)))
                    }
                },
            }
        };
        let result = match assembled {
            Err(e) => Err(e),
            Ok((key, data)) => self.commit_put(ctx, bucket, &key, data),
        };
        self.finish(ctx, span, RequestClass::ClassA, 0, 0, result.is_err());
        result
    }

    /// Abandons a multipart upload, discarding its parts. Unknown ids are
    /// ignored (idempotent, like S3 abort).
    ///
    /// # Errors
    /// [`StoreError::NoSuchBucket`] if the bucket is unknown.
    pub fn abort_multipart(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        upload: MultipartUpload,
    ) -> Result<(), StoreError> {
        run_blocking(self.abort_multipart_async(ctx, bucket, upload))
    }

    /// Async form of [`StoreClient::abort_multipart`] for stackless processes.
    pub async fn abort_multipart_async(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        upload: MultipartUpload,
    ) -> Result<(), StoreError> {
        let span = self.trace_begin(ctx, "DELETE", "");
        self.trace.attr(span, "upload_id", upload.id);
        if let Err(e) = self.request_overhead(ctx, "DELETE").await {
            self.finish(ctx, span, RequestClass::Delete, 0, 0, true);
            return Err(e);
        }
        let result = {
            let mut buckets = self.store.buckets.lock();
            match buckets.get_mut(bucket) {
                None => Err(StoreError::NoSuchBucket {
                    bucket: bucket.to_string(),
                }),
                Some(b) => {
                    b.uploads.remove(&upload.id);
                    Ok(())
                }
            }
        };
        self.finish(ctx, span, RequestClass::Delete, 0, 0, result.is_err());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailurePolicy;
    use faaspipe_des::{Bandwidth, SimDuration, SimTime};
    use std::sync::Mutex as StdMutex;

    fn quiet_config() -> StoreConfig {
        // Zero latency / unlimited bandwidth for pure data-plane tests.
        StoreConfig {
            first_byte_latency: SimDuration::ZERO,
            per_connection_bw: Bandwidth::UNLIMITED,
            aggregate_bw: Bandwidth::UNLIMITED,
            ops_per_sec: 1e9,
            ops_burst: 1e9,
            size_scale: 1.0,
            failure: FailurePolicy::none(),
        }
    }

    /// Runs `f` inside a fresh sim with a store using `cfg`, returning the
    /// store and the end time.
    fn run_with<F>(cfg: StoreConfig, f: F) -> (Arc<ObjectStore>, SimTime)
    where
        F: FnOnce(&mut Ctx, &StoreClient) + Send + 'static,
    {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, cfg);
        store.create_bucket("b").expect("fresh bucket");
        let handle = Arc::clone(&store);
        sim.spawn("test", move |ctx| {
            let client = handle.connect(ctx, "test");
            f(ctx, &client);
        });
        let report = sim.run().expect("sim ok");
        (store, report.end_time)
    }

    #[test]
    fn put_get_round_trip() {
        let (store, _) = run_with(quiet_config(), |ctx, c| {
            let put = c.put(ctx, "b", "k", Bytes::from("payload")).expect("put");
            assert_eq!(put.len.as_u64(), 7);
            let got = c.get(ctx, "b", "k").expect("get");
            assert_eq!(&got[..], b"payload");
        });
        assert_eq!(store.object_count("b"), 1);
    }

    #[test]
    fn get_missing_key_fails() {
        run_with(quiet_config(), |ctx, c| {
            let err = c.get(ctx, "b", "nope").expect_err("missing");
            assert!(matches!(err, StoreError::NoSuchKey { .. }));
            let err = c.get(ctx, "nobucket", "k").expect_err("missing bucket");
            assert!(matches!(err, StoreError::NoSuchBucket { .. }));
        });
    }

    #[test]
    fn put_overwrites() {
        let (store, _) = run_with(quiet_config(), |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from("one")).expect("put");
            c.put(ctx, "b", "k", Bytes::from("two")).expect("put");
            assert_eq!(&c.get(ctx, "b", "k").expect("get")[..], b"two");
        });
        assert_eq!(store.object_count("b"), 1);
    }

    #[test]
    fn put_if_absent_enforces_precondition() {
        run_with(quiet_config(), |ctx, c| {
            c.put_if_absent(ctx, "b", "k", Bytes::from("x"))
                .expect("first");
            let err = c
                .put_if_absent(ctx, "b", "k", Bytes::from("y"))
                .expect_err("second");
            assert!(matches!(err, StoreError::PreconditionFailed { .. }));
            assert_eq!(&c.get(ctx, "b", "k").expect("get")[..], b"x");
        });
    }

    #[test]
    fn concurrent_put_if_absent_has_exactly_one_winner() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("b").expect("bucket");
        let wins = Arc::new(StdMutex::new(0usize));
        for i in 0..4 {
            let store = Arc::clone(&store);
            let wins = Arc::clone(&wins);
            sim.spawn(format!("creator{}", i), move |ctx| {
                let c = store.connect(ctx, "race");
                match c.put_if_absent(ctx, "b", "lock", Bytes::from(format!("{}", i))) {
                    Ok(_) => *wins.lock().unwrap() += 1,
                    Err(StoreError::PreconditionFailed { .. }) => {}
                    Err(e) => panic!("unexpected: {}", e),
                }
            });
        }
        sim.run().expect("sim ok");
        assert_eq!(*wins.lock().unwrap(), 1, "exactly one creator wins");
        assert_eq!(store.object_count("b"), 1);
    }

    #[test]
    fn put_if_match_is_a_cas() {
        run_with(quiet_config(), |ctx, c| {
            let v1 = c.put(ctx, "b", "k", Bytes::from("one")).expect("put");
            // Matching etag swaps.
            let v2 = c
                .put_if_match(ctx, "b", "k", v1.etag, Bytes::from("two"))
                .expect("cas");
            assert_ne!(v1.etag, v2.etag);
            // Stale etag fails and leaves the value intact.
            let err = c
                .put_if_match(ctx, "b", "k", v1.etag, Bytes::from("three"))
                .expect_err("stale");
            assert!(matches!(err, StoreError::PreconditionFailed { .. }));
            assert_eq!(&c.get(ctx, "b", "k").expect("get")[..], b"two");
            // Missing key fails too.
            let err = c
                .put_if_match(ctx, "b", "nope", 0, Bytes::from("x"))
                .expect_err("missing");
            assert!(matches!(err, StoreError::PreconditionFailed { .. }));
        });
    }

    #[test]
    fn cas_serializes_concurrent_incrementers() {
        // Two processes CAS-increment a counter; retries resolve the race
        // and no update is lost.
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("b").expect("bucket");
        store
            .put_untimed("b", "counter", Bytes::from("0"))
            .expect("init");
        for i in 0..2 {
            let store = Arc::clone(&store);
            sim.spawn(format!("inc{}", i), move |ctx| {
                let c = store.connect(ctx, "cas");
                for _ in 0..5 {
                    loop {
                        let meta = c.head(ctx, "b", "counter").expect("head");
                        let cur: u64 =
                            String::from_utf8_lossy(&c.get(ctx, "b", "counter").expect("get"))
                                .parse()
                                .expect("number");
                        let next = Bytes::from((cur + 1).to_string());
                        match c.put_if_match(ctx, "b", "counter", meta.etag, next) {
                            Ok(_) => break,
                            Err(StoreError::PreconditionFailed { .. }) => continue,
                            Err(e) => panic!("unexpected: {}", e),
                        }
                    }
                }
            });
        }
        sim.run().expect("sim ok");
        let final_value = store.peek("b", "counter").expect("counter");
        assert_eq!(&final_value[..], b"10", "no lost updates");
    }

    #[test]
    fn range_get_slices_and_validates() {
        run_with(quiet_config(), |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from("0123456789"))
                .expect("put");
            let part = c.get_range(ctx, "b", "k", 2, 3).expect("range");
            assert_eq!(&part[..], b"234");
            let whole = c.get_range(ctx, "b", "k", 0, 10).expect("full range");
            assert_eq!(whole.len(), 10);
            let err = c.get_range(ctx, "b", "k", 8, 5).expect_err("overrun");
            assert!(matches!(
                err,
                StoreError::InvalidRange { object_len: 10, .. }
            ));
        });
    }

    #[test]
    fn list_filters_by_prefix_in_order() {
        run_with(quiet_config(), |ctx, c| {
            for key in ["a/1", "a/2", "b/1", "a10"] {
                c.put(ctx, "b", key, Bytes::from("x")).expect("put");
            }
            let got = c.list(ctx, "b", "a/").expect("list");
            let keys: Vec<&str> = got.iter().map(|o| o.key.as_str()).collect();
            assert_eq!(keys, vec!["a/1", "a/2"]);
            let all = c.list(ctx, "b", "").expect("list all");
            assert_eq!(all.len(), 4);
        });
    }

    #[test]
    fn paginated_listing_walks_all_keys() {
        run_with(quiet_config(), |ctx, c| {
            for i in 0..23 {
                c.put(ctx, "b", &format!("p/{:03}", i), Bytes::from("x"))
                    .expect("put");
            }
            c.put(ctx, "b", "q/other", Bytes::from("x")).expect("put");
            let mut seen = Vec::new();
            let mut after = String::new();
            let mut pages = 0;
            loop {
                let (page, token) = c.list_page(ctx, "b", "p/", &after, 10).expect("page");
                assert!(page.len() <= 10);
                seen.extend(page.iter().map(|o| o.key.clone()));
                pages += 1;
                match token {
                    Some(t) => after = t,
                    None => break,
                }
            }
            assert_eq!(pages, 3, "23 keys at 10/page");
            assert_eq!(seen.len(), 23);
            assert!(seen.windows(2).all(|w| w[0] < w[1]), "sorted, no dupes");
            assert!(seen.iter().all(|k| k.starts_with("p/")));
        });
    }

    #[test]
    fn pagination_exact_page_boundary_has_no_extra_page() {
        run_with(quiet_config(), |ctx, c| {
            for i in 0..10 {
                c.put(ctx, "b", &format!("p/{:03}", i), Bytes::from("x"))
                    .expect("put");
            }
            let (page, token) = c.list_page(ctx, "b", "p/", "", 10).expect("page");
            assert_eq!(page.len(), 10);
            assert!(token.is_none(), "exactly one page");
        });
    }

    #[test]
    fn pagination_counts_class_a_per_page() {
        let (store, _) = run_with(quiet_config(), |ctx, c| {
            for i in 0..5 {
                c.put(ctx, "b", &format!("p/{}", i), Bytes::from("x"))
                    .expect("put");
            }
            let (_, t) = c.list_page(ctx, "b", "p/", "", 2).expect("p1");
            let (_, t) = c
                .list_page(ctx, "b", "p/", &t.expect("more"), 2)
                .expect("p2");
            let (_, t) = c
                .list_page(ctx, "b", "p/", &t.expect("more"), 2)
                .expect("p3");
            assert!(t.is_none());
        });
        // 5 puts + 3 list pages.
        assert_eq!(store.metrics().total().class_a, 8);
    }

    #[test]
    fn delete_is_idempotent() {
        let (store, _) = run_with(quiet_config(), |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from("x")).expect("put");
            c.delete(ctx, "b", "k").expect("delete");
            c.delete(ctx, "b", "k").expect("delete again");
            assert!(!c.exists(ctx, "b", "k").expect("exists"));
        });
        assert_eq!(store.object_count("b"), 0);
    }

    #[test]
    fn head_reports_metadata() {
        run_with(quiet_config(), |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from("abcd")).expect("put");
            let meta = c.head(ctx, "b", "k").expect("head");
            assert_eq!(meta.len.as_u64(), 4);
            assert_eq!(meta.key, "k");
        });
    }

    #[test]
    fn copy_duplicates_server_side() {
        run_with(quiet_config(), |ctx, c| {
            c.put(ctx, "b", "src", Bytes::from("data")).expect("put");
            c.copy(ctx, "b", "src", "b", "dst").expect("copy");
            assert_eq!(&c.get(ctx, "b", "dst").expect("get")[..], b"data");
        });
    }

    #[test]
    fn multipart_concatenates_in_part_order() {
        run_with(quiet_config(), |ctx, c| {
            let up = c.create_multipart(ctx, "b", "big").expect("create");
            // Upload out of order.
            c.upload_part(ctx, "b", up, 2, Bytes::from("world"))
                .expect("p2");
            c.upload_part(ctx, "b", up, 1, Bytes::from("hello "))
                .expect("p1");
            let done = c.complete_multipart(ctx, "b", up).expect("complete");
            assert_eq!(done.len.as_u64(), 11);
            assert_eq!(&c.get(ctx, "b", "big").expect("get")[..], b"hello world");
        });
    }

    #[test]
    fn multipart_abort_discards() {
        let (store, _) = run_with(quiet_config(), |ctx, c| {
            let up = c.create_multipart(ctx, "b", "gone").expect("create");
            c.upload_part(ctx, "b", up, 1, Bytes::from("x"))
                .expect("p1");
            c.abort_multipart(ctx, "b", up).expect("abort");
            let err = c.complete_multipart(ctx, "b", up).expect_err("aborted");
            assert!(matches!(err, StoreError::NoSuchUpload { .. }));
        });
        assert_eq!(store.object_count("b"), 0);
    }

    #[test]
    fn request_latency_is_charged() {
        let cfg = StoreConfig {
            first_byte_latency: SimDuration::from_millis(30),
            ..quiet_config()
        };
        let (_, end) = run_with(cfg, |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from("x")).expect("put");
            c.get(ctx, "b", "k").expect("get");
        });
        assert_eq!(end, SimTime::from_nanos(60_000_000));
    }

    #[test]
    fn transfer_time_follows_connection_bandwidth() {
        let cfg = StoreConfig {
            per_connection_bw: Bandwidth::bytes_per_sec(1000.0),
            ..quiet_config()
        };
        let (_, end) = run_with(cfg, |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from(vec![0u8; 2000]))
                .expect("put");
        });
        assert!((end.as_secs_f64() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn ops_limiter_throttles_small_requests() {
        let cfg = StoreConfig {
            ops_per_sec: 10.0,
            ops_burst: 1.0,
            ..quiet_config()
        };
        let (_, end) = run_with(cfg, |ctx, c| {
            for i in 0..11 {
                c.put(ctx, "b", &format!("k{}", i), Bytes::new())
                    .expect("put");
            }
        });
        // First request rides the burst; the next 10 wait 0.1 s each.
        assert!((end.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn size_scale_inflates_wire_size_not_content() {
        let cfg = StoreConfig {
            per_connection_bw: Bandwidth::bytes_per_sec(1000.0),
            ..quiet_config()
        }
        .with_size_scale(10.0);
        let (store, end) = run_with(cfg, |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from(vec![7u8; 100]))
                .expect("put");
            let data = c.get(ctx, "b", "k").expect("get");
            assert_eq!(data.len(), 100, "real content is unscaled");
        });
        // 100 real bytes modelled as 1000 wire bytes, twice (put+get) at
        // 1000 B/s => 2 s.
        assert!((end.as_secs_f64() - 2.0).abs() < 1e-7);
        assert_eq!(store.stored_bytes().as_u64(), 100);
        let total = store.metrics().total();
        assert_eq!(total.bytes_in.as_u64(), 1000);
        assert_eq!(total.bytes_out.as_u64(), 1000);
    }

    #[test]
    fn metrics_attribute_by_tag_and_class() {
        let (store, _) = run_with(quiet_config(), |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from("x")).expect("put");
            c.get(ctx, "b", "k").expect("get");
            c.list(ctx, "b", "").expect("list");
            c.delete(ctx, "b", "k").expect("delete");
        });
        let m = store.metrics();
        let t = m.tag("test").expect("tag recorded");
        assert_eq!(t.class_a, 2); // put + list
        assert_eq!(t.class_b, 1); // get
        assert_eq!(t.deletes, 1);
        assert_eq!(t.errors, 0);
    }

    #[test]
    fn injected_failures_surface_and_count() {
        let cfg = quiet_config().with_failure(FailurePolicy::with_error_rate(1.0));
        let (store, _) = run_with(cfg, |ctx, c| {
            let err = c
                .put(ctx, "b", "k", Bytes::from("x"))
                .expect_err("injected");
            assert!(matches!(err, StoreError::Injected { op: "PUT" }));
        });
        assert_eq!(store.object_count("b"), 0, "failed put must not commit");
        assert_eq!(store.metrics().total().errors, 1);
    }

    #[test]
    fn slowdown_injection_inflates_latency() {
        let cfg = StoreConfig {
            first_byte_latency: SimDuration::from_millis(10),
            ..quiet_config()
        }
        .with_failure(FailurePolicy::with_slowdown(1.0, 5.0));
        let (_, end) = run_with(cfg, |ctx, c| {
            c.put(ctx, "b", "k", Bytes::from("x")).expect("put");
        });
        assert_eq!(end, SimTime::from_nanos(50_000_000));
    }

    #[test]
    fn concurrent_writers_share_aggregate_bandwidth() {
        let mut sim = Sim::new();
        let cfg = StoreConfig {
            first_byte_latency: SimDuration::ZERO,
            per_connection_bw: Bandwidth::bytes_per_sec(1000.0),
            aggregate_bw: Bandwidth::bytes_per_sec(1000.0),
            ops_per_sec: 1e9,
            ops_burst: 1e9,
            size_scale: 1.0,
            failure: FailurePolicy::none(),
        };
        let store = ObjectStore::install(&mut sim, cfg);
        store.create_bucket("b").expect("bucket");
        let finish = Arc::new(StdMutex::new(Vec::new()));
        for i in 0..2 {
            let handle = Arc::clone(&store);
            let finish = Arc::clone(&finish);
            sim.spawn(format!("w{}", i), move |ctx| {
                let c = handle.connect(ctx, format!("w{}", i));
                c.put(ctx, "b", &format!("k{}", i), Bytes::from(vec![0u8; 1000]))
                    .expect("put");
                finish.lock().unwrap().push(ctx.now().as_secs_f64());
            });
        }
        sim.run().expect("run");
        // Two 1000-byte puts share a 1000 B/s backbone: both take 2 s.
        for t in finish.lock().unwrap().iter() {
            assert!((t - 2.0).abs() < 1e-6, "got {}", t);
        }
    }

    #[test]
    fn bucket_create_conflict() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, quiet_config());
        store.create_bucket("b").expect("first");
        let err = store.create_bucket("b").expect_err("duplicate");
        assert!(matches!(err, StoreError::BucketAlreadyExists { .. }));
    }

    #[test]
    fn scope_ops_limit_throttles_only_that_tenant() {
        let mut sim = Sim::new();
        let cfg = StoreConfig {
            first_byte_latency: SimDuration::ZERO,
            ..quiet_config()
        };
        let store = ObjectStore::install(&mut sim, cfg);
        store.create_bucket("b").expect("bucket");
        // t0 gets 1 op/s with a single-token burst; t1 is unlimited.
        store.set_scope_ops_limit(&mut sim, "t0", 1.0, 1.0);
        let finish = Arc::new(StdMutex::new(BTreeMap::new()));
        for tenant in ["t0", "t1"] {
            let handle = Arc::clone(&store);
            let finish = Arc::clone(&finish);
            sim.spawn(format!("{}-driver", tenant), move |ctx| {
                let c = handle.connect(ctx, format!("{}/r0/sort", tenant));
                for i in 0..3 {
                    c.put(ctx, "b", &format!("{}/{}", tenant, i), Bytes::from("x"))
                        .expect("put");
                }
                finish
                    .lock()
                    .unwrap()
                    .insert(tenant, ctx.now().as_secs_f64());
            });
        }
        sim.run().expect("run");
        let finish = finish.lock().unwrap();
        // Three ops at 1 op/s, first from the burst: t0 finishes at 2 s.
        assert!((finish["t0"] - 2.0).abs() < 1e-6, "got {}", finish["t0"]);
        assert!(finish["t1"] < 1e-6, "got {}", finish["t1"]);
    }

    #[test]
    fn scoped_metrics_aggregate_by_tag_prefix() {
        let mut m = StoreMetrics::new();
        m.record("t0/r0/sort", RequestClass::ClassA, 10, 0, false);
        m.record("t0/r1/sort", RequestClass::ClassB, 0, 5, false);
        m.record("t1/r0/sort", RequestClass::ClassA, 7, 0, false);
        m.record("t10/r0/sort", RequestClass::ClassA, 9, 0, false);
        let t0 = m.total_for_scope("t0");
        assert_eq!(t0.total_requests(), 2);
        assert_eq!(t0.bytes_in.as_u64(), 10);
        assert_eq!(t0.bytes_out.as_u64(), 5);
        // "t10/..." must not leak into scope "t1".
        assert_eq!(m.total_for_scope("t1").bytes_in.as_u64(), 7);
    }
}
