//! Object-store performance model configuration.

use faaspipe_des::{Bandwidth, SimDuration};

use crate::failure::FailurePolicy;

/// Performance and scaling model for the object store.
///
/// Defaults are calibrated to public IBM COS / S3 measurements circa 2021:
/// tens of milliseconds to first byte, on the order of 100 MB/s per
/// connection, a backbone measured in tens of GB/s (the "huge aggregated
/// bandwidth" the paper leans on), and a few thousand requests per second
/// of sustained operation throughput.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Time from issuing a request to the first payload byte.
    pub first_byte_latency: SimDuration,
    /// Per-connection (per-client) bandwidth cap.
    pub per_connection_bw: Bandwidth,
    /// Aggregate backbone bandwidth across all connections.
    pub aggregate_bw: Bandwidth,
    /// Sustained operations per second before requests queue.
    pub ops_per_sec: f64,
    /// Burst capacity of the operations budget, in operations.
    pub ops_burst: f64,
    /// Multiplier applied to payload sizes when charging transfer time and
    /// byte metrics. Lets experiments run a physically smaller dataset
    /// while *modelling* the paper's full 3.5 GB (see DESIGN.md); `1.0`
    /// means real scale.
    pub size_scale: f64,
    /// Fault-injection policy.
    pub failure: FailurePolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            first_byte_latency: SimDuration::from_millis(28),
            per_connection_bw: Bandwidth::mib_per_sec(95.0),
            aggregate_bw: Bandwidth::gbit_per_sec(200.0),
            ops_per_sec: 3_000.0,
            ops_burst: 3_000.0,
            size_scale: 1.0,
            failure: FailurePolicy::default(),
        }
    }
}

impl StoreConfig {
    /// Returns the config with a different ops/s budget (burst follows).
    pub fn with_ops_per_sec(mut self, ops: f64) -> Self {
        self.ops_per_sec = ops;
        self.ops_burst = ops;
        self
    }

    /// Returns the config with a different size scale.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite.
    pub fn with_size_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "size_scale must be positive and finite"
        );
        self.size_scale = scale;
        self
    }

    /// Returns the config with the given failure policy.
    pub fn with_failure(mut self, failure: FailurePolicy) -> Self {
        self.failure = failure;
        self
    }

    /// The modelled wire size for a payload of `real_len` bytes.
    pub fn scaled_len(&self, real_len: usize) -> u64 {
        (real_len as f64 * self.size_scale).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = StoreConfig::default();
        assert!(c.ops_per_sec >= 1_000.0, "paper: a few thousand ops/s");
        assert!(c.per_connection_bw.as_bytes_per_sec() < c.aggregate_bw.as_bytes_per_sec());
        assert_eq!(c.size_scale, 1.0);
    }

    #[test]
    fn scaled_len_rounds() {
        let c = StoreConfig::default().with_size_scale(10.0);
        assert_eq!(c.scaled_len(100), 1000);
        let c = StoreConfig::default().with_size_scale(0.25);
        assert_eq!(c.scaled_len(10), 3); // 2.5 rounds up
    }

    #[test]
    #[should_panic(expected = "size_scale")]
    fn rejects_zero_scale() {
        StoreConfig::default().with_size_scale(0.0);
    }
}
