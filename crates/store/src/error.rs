//! Object-store error types.

use std::fmt;

/// Errors returned by object-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The referenced bucket does not exist.
    NoSuchBucket {
        /// The missing bucket name.
        bucket: String,
    },
    /// The referenced key does not exist in the bucket.
    NoSuchKey {
        /// The bucket that was queried.
        bucket: String,
        /// The missing key.
        key: String,
    },
    /// A bucket with this name already exists.
    BucketAlreadyExists {
        /// The conflicting bucket name.
        bucket: String,
    },
    /// A byte range fell outside the object.
    InvalidRange {
        /// Requested start offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual object size.
        object_len: u64,
    },
    /// The referenced multipart upload does not exist.
    NoSuchUpload {
        /// The unknown upload id.
        upload_id: u64,
    },
    /// A conditional operation's precondition did not hold.
    PreconditionFailed {
        /// The key the condition applied to.
        key: String,
    },
    /// A fault injected by the configured [`FailurePolicy`](crate::FailurePolicy).
    Injected {
        /// The operation that failed (e.g. `"GET"`).
        op: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchBucket { bucket } => write!(f, "no such bucket '{}'", bucket),
            StoreError::NoSuchKey { bucket, key } => {
                write!(f, "no such key '{}/{}'", bucket, key)
            }
            StoreError::BucketAlreadyExists { bucket } => {
                write!(f, "bucket '{}' already exists", bucket)
            }
            StoreError::InvalidRange {
                offset,
                len,
                object_len,
            } => write!(
                f,
                "invalid range [{}, {}) for object of {} bytes",
                offset,
                offset + len,
                object_len
            ),
            StoreError::NoSuchUpload { upload_id } => {
                write!(f, "no such multipart upload {}", upload_id)
            }
            StoreError::PreconditionFailed { key } => {
                write!(f, "precondition failed for key '{}'", key)
            }
            StoreError::Injected { op } => write!(f, "injected {} failure", op),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StoreError::NoSuchBucket { bucket: "b".into() }.to_string(),
            "no such bucket 'b'"
        );
        assert_eq!(
            StoreError::NoSuchKey {
                bucket: "b".into(),
                key: "k".into()
            }
            .to_string(),
            "no such key 'b/k'"
        );
        assert_eq!(
            StoreError::InvalidRange {
                offset: 10,
                len: 5,
                object_len: 12
            }
            .to_string(),
            "invalid range [10, 15) for object of 12 bytes"
        );
        assert_eq!(
            StoreError::Injected { op: "GET" }.to_string(),
            "injected GET failure"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
