//! Critical-path analysis over the span DAG.
//!
//! Attributes the pipeline makespan to cost buckets (compute,
//! store-I/O, cold-start, queueing, other) by walking backwards from the
//! run span's end: at every instant the walk follows the *attributable
//! leaf span* (a span whose [`Category::bucket`] is `Some`) that covers
//! that instant and reaches furthest back, charging the covered interval
//! to the span's bucket; instants covered by no attributable span are
//! charged to [`CostBucket::Other`]. The buckets therefore tile the
//! makespan exactly — their sum equals the makespan to the nanosecond.

use faaspipe_des::{SimDuration, SimTime};

use crate::sink::TraceData;
use crate::span::CostBucket;

/// Makespan attribution produced by [`critical_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown {
    /// Total run-span duration being attributed.
    pub makespan: SimDuration,
    /// Time charged to CPU work.
    pub compute: SimDuration,
    /// Time charged to object-storage requests / transfers.
    pub store_io: SimDuration,
    /// Time charged to cold starts / VM provisioning.
    pub cold_start: SimDuration,
    /// Time charged to waiting for invocation capacity.
    pub queueing: SimDuration,
    /// Orchestration gaps and uncovered time.
    pub other: SimDuration,
}

impl Breakdown {
    /// Sum of all buckets (equals [`Breakdown::makespan`] exactly).
    pub fn total(&self) -> SimDuration {
        self.compute + self.store_io + self.cold_start + self.queueing + self.other
    }

    /// The bucket durations in a stable order, paired with their names.
    pub fn buckets(&self) -> [(CostBucket, SimDuration); 5] {
        [
            (CostBucket::Compute, self.compute),
            (CostBucket::StoreIo, self.store_io),
            (CostBucket::ColdStart, self.cold_start),
            (CostBucket::Queueing, self.queueing),
            (CostBucket::Other, self.other),
        ]
    }

    /// One-line human-readable rendering with percentages.
    pub fn render(&self) -> String {
        let total = self.makespan.as_secs_f64().max(1e-12);
        let mut parts = Vec::new();
        for (bucket, d) in self.buckets() {
            parts.push(format!(
                "{} {:.2}s ({:.0}%)",
                bucket.as_str(),
                d.as_secs_f64(),
                100.0 * d.as_secs_f64() / total
            ));
        }
        format!("critical path: {}", parts.join(", "))
    }
}

fn bucket_slot(b: &mut Breakdown, bucket: CostBucket) -> &mut SimDuration {
    match bucket {
        CostBucket::Compute => &mut b.compute,
        CostBucket::StoreIo => &mut b.store_io,
        CostBucket::ColdStart => &mut b.cold_start,
        CostBucket::Queueing => &mut b.queueing,
        CostBucket::Other => &mut b.other,
    }
}

/// Computes the makespan attribution for the recorded trace.
///
/// The attributed window is the run span if one exists, otherwise the
/// extent `[earliest start, latest end]` of all finished spans. Returns
/// `None` when the trace holds no finished spans.
pub fn critical_path(data: &TraceData) -> Option<Breakdown> {
    let (t0, t1) = match data.run_span() {
        Some(run) => (run.start, run.end?),
        None => {
            let t0 = data.spans.iter().map(|s| s.start).min()?;
            let t1 = data.spans.iter().filter_map(|s| s.end).max()?;
            (t0, t1)
        }
    };

    // Attributable leaves, clipped to the window, sorted so the
    // backward walk can binary-search by end time.
    struct Leaf {
        start: SimTime,
        end: SimTime,
        bucket: CostBucket,
    }
    let mut leaves: Vec<Leaf> = data
        .spans
        .iter()
        .filter_map(|s| {
            let bucket = s.category.bucket()?;
            let end = s.end?.min(t1);
            let start = s.start.max(t0);
            if start >= end {
                return None;
            }
            Some(Leaf { start, end, bucket })
        })
        .collect();
    leaves.sort_by_key(|l| (l.start, l.end));

    let mut breakdown = Breakdown {
        makespan: t1.saturating_duration_since(t0),
        compute: SimDuration::ZERO,
        store_io: SimDuration::ZERO,
        cold_start: SimDuration::ZERO,
        queueing: SimDuration::ZERO,
        other: SimDuration::ZERO,
    };

    let mut cur = t1;
    while cur > t0 {
        // Among leaves covering `cur` (start < cur <= end), follow the
        // one reaching furthest back; order in `leaves` makes the
        // earliest-started (then earliest-ending) one win ties.
        let covering = leaves
            .iter()
            .filter(|l| l.start < cur && l.end >= cur)
            .min_by_key(|l| (l.start, l.end));
        match covering {
            Some(leaf) => {
                *bucket_slot(&mut breakdown, leaf.bucket) +=
                    cur.saturating_duration_since(leaf.start);
                cur = leaf.start;
            }
            None => {
                // Gap: charge up to the latest end below `cur` to Other.
                let gap_floor = leaves
                    .iter()
                    .map(|l| l.end)
                    .filter(|&e| e < cur)
                    .max()
                    .unwrap_or(t0)
                    .max(t0);
                breakdown.other += cur.saturating_duration_since(gap_floor);
                cur = gap_floor;
            }
        }
    }

    Some(breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::span::{Category, SpanId};

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    fn span(sink: &TraceSink, cat: Category, name: &str, a: u64, b: u64, parent: SpanId) -> SpanId {
        let id = sink.span_start(cat, name, "x", "y", parent, t(a));
        sink.span_end(id, t(b));
        id
    }

    #[test]
    fn buckets_tile_the_makespan() {
        let sink = TraceSink::recording();
        let run = sink.span_start(Category::Run, "run", "d", "d", SpanId::NONE, t(0));
        span(&sink, Category::ColdStart, "cold", 0, 2, run);
        span(&sink, Category::StoreRequest, "get", 2, 5, run);
        span(&sink, Category::Compute, "sort", 5, 9, run);
        // Gap 9..10, then a queued wait.
        span(&sink, Category::Queue, "queue", 10, 12, run);
        sink.span_end(run, t(12));

        let b = critical_path(&sink.snapshot()).expect("breakdown");
        assert_eq!(b.makespan.as_secs_f64(), 12.0);
        assert_eq!(b.cold_start.as_secs_f64(), 2.0);
        assert_eq!(b.store_io.as_secs_f64(), 3.0);
        assert_eq!(b.compute.as_secs_f64(), 4.0);
        assert_eq!(b.queueing.as_secs_f64(), 2.0);
        assert_eq!(b.other.as_secs_f64(), 1.0);
        assert_eq!(b.total(), b.makespan);
    }

    #[test]
    fn overlapping_leaves_still_tile_exactly() {
        let sink = TraceSink::recording();
        let run = sink.span_start(Category::Run, "run", "d", "d", SpanId::NONE, t(0));
        // Eight overlapping store requests and an overlapping compute.
        for i in 0..8u64 {
            span(&sink, Category::StoreRequest, "get", i, i + 3, run);
        }
        span(&sink, Category::Compute, "sort", 2, 9, run);
        sink.span_end(run, t(11));

        let b = critical_path(&sink.snapshot()).expect("breakdown");
        assert_eq!(b.total(), b.makespan);
        assert_eq!(b.makespan.as_secs_f64(), 11.0);
        // Covered interval is 0..10; tail 10..11 is a gap.
        assert_eq!(b.other.as_secs_f64(), 1.0);
        assert!(b.store_io > SimDuration::ZERO);
    }

    #[test]
    fn spans_outside_the_run_window_are_clipped() {
        let sink = TraceSink::recording();
        let run = sink.span_start(Category::Run, "run", "d", "d", SpanId::NONE, t(5));
        span(&sink, Category::Compute, "early", 0, 7, run);
        span(&sink, Category::StoreRequest, "late", 8, 20, run);
        sink.span_end(run, t(10));

        let b = critical_path(&sink.snapshot()).expect("breakdown");
        assert_eq!(b.makespan.as_secs_f64(), 5.0);
        assert_eq!(b.compute.as_secs_f64(), 2.0);
        assert_eq!(b.store_io.as_secs_f64(), 2.0);
        assert_eq!(b.other.as_secs_f64(), 1.0);
        assert_eq!(b.total(), b.makespan);
    }

    #[test]
    fn empty_trace_has_no_breakdown() {
        assert!(critical_path(&TraceSink::recording().snapshot()).is_none());
        assert!(critical_path(&TraceSink::disabled().snapshot()).is_none());
    }
}
