//! # faaspipe-trace — virtual-time tracing for the simulator
//!
//! Records what a simulated pipeline *did* — spans nesting
//! `run → stage → invocation / vm-task → store-request / flow` plus
//! counter timeseries — all timestamped in virtual time, and turns the
//! recording into artifacts:
//!
//! * [`chrome_trace_json`] — Chrome trace-event / Perfetto JSON
//!   (`trace.json`), tracks mapped to processes, lanes to threads;
//! * [`render_timeline`] — per-stage ASCII timeline;
//! * [`counters_csv`] — counter dump (bandwidth in use, in-flight flows,
//!   warm/cold pool sizes, queued invocations);
//! * [`critical_path`] — makespan attribution to compute / store-I/O /
//!   cold-start / queueing buckets that sums exactly to the makespan.
//!
//! Everything is recorded through a cheaply-clonable [`TraceSink`]. The
//! default [`TraceSink::disabled`] handle drops every call after a
//! single branch, so instrumented code pays nothing when tracing is off;
//! with [`TraceSink::recording`], identical simulations (same seed)
//! produce byte-identical exports.

mod counter;
mod critical;
mod export;
mod sink;
mod span;

pub use counter::{CounterKind, CounterSeries};
pub use critical::{critical_path, Breakdown};
pub use export::{
    chrome_trace_json, counters_csv, flame_rows, render_flame, render_timeline, FlameRow,
};
pub use sink::{TraceData, TraceSink};
pub use span::{Category, CostBucket, Span, SpanId, Value};

/// Converts a span attribute into a JSON value for exporters.
pub(crate) fn value_to_json(v: &Value) -> faaspipe_json::Json {
    use faaspipe_json::Json;
    match v {
        Value::Str(s) => Json::Str(s.clone()),
        Value::U64(u) => Json::UInt(*u),
        Value::I64(i) => Json::Int(*i),
        Value::F64(x) => Json::Float(*x),
        Value::Bool(b) => Json::Bool(*b),
    }
}
