//! The span model: ids, parent links, categories, and attributes.
//!
//! Spans nest `run → stage → invocation / vm-task → store-request / flow`
//! (plus fine-grained leaves like compute bursts and cold starts), all
//! timestamped in **virtual** simulation time.

use faaspipe_des::SimTime;

/// Identifier of a recorded span.
///
/// `SpanId::NONE` (the zero id) is what a disabled sink hands out; it is
/// accepted and ignored everywhere, which is what makes instrumentation
/// free to call unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The null id produced by a disabled sink.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw numeric value (1-based for real spans).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value — for tooling that constructs
    /// or rewrites span data outside a sink (`0` yields [`SpanId::NONE`]).
    pub const fn from_u64(v: u64) -> SpanId {
        SpanId(v)
    }
}

/// What kind of activity a span covers. Determines the Chrome-trace
/// category string and how the critical-path analyzer buckets the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Whole pipeline run (the root).
    Run,
    /// One DAG stage.
    Stage,
    /// One execution phase within a stage (sample/map/reduce rounds,
    /// VM download/sort/upload). Structural, like [`Category::Stage`].
    Phase,
    /// One serverless function invocation (request to completion).
    Invocation,
    /// One VM task (provision to release).
    VmTask,
    /// One object-storage request (PUT/GET/DELETE/LIST).
    StoreRequest,
    /// One modelled network flow / transfer.
    Flow,
    /// Container cold-start delay before a function runs.
    ColdStart,
    /// Warm-container pickup (duration is the reuse latency, usually 0).
    WarmStart,
    /// Time an invocation spent queued for platform capacity.
    Queue,
    /// A compute burst (sorting, encoding, merging, VM compute).
    Compute,
    /// Driver orchestration (phase gaps, polling cadence).
    Orchestration,
    /// A planner decision (`--exchange auto`): zero-width in virtual
    /// time, carries the chosen (W, K, backend, shards) and the model's
    /// predicted makespan/cost as attributes.
    Planner,
}

impl Category {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Run => "run",
            Category::Stage => "stage",
            Category::Phase => "phase",
            Category::Invocation => "invocation",
            Category::VmTask => "vm-task",
            Category::StoreRequest => "store-request",
            Category::Flow => "flow",
            Category::ColdStart => "cold-start",
            Category::WarmStart => "warm-start",
            Category::Queue => "queue",
            Category::Compute => "compute",
            Category::Orchestration => "orchestration",
            Category::Planner => "planner",
        }
    }

    /// The cost bucket this category contributes to on the critical
    /// path, or `None` for structural spans (run/stage/invocation/…)
    /// whose time is explained by their children.
    pub fn bucket(self) -> Option<CostBucket> {
        match self {
            Category::Compute => Some(CostBucket::Compute),
            Category::StoreRequest | Category::Flow => Some(CostBucket::StoreIo),
            Category::ColdStart => Some(CostBucket::ColdStart),
            Category::Queue => Some(CostBucket::Queueing),
            Category::Orchestration => Some(CostBucket::Other),
            _ => None,
        }
    }
}

/// Where makespan time is attributed by the critical-path analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostBucket {
    /// CPU work (sort, partition, merge, encode, VM compute).
    Compute,
    /// Object-storage requests and modelled transfers.
    StoreIo,
    /// Container cold starts and VM provisioning.
    ColdStart,
    /// Waiting for platform invocation capacity.
    Queueing,
    /// Orchestration gaps and everything else.
    Other,
}

impl CostBucket {
    /// Stable name used in report columns.
    pub fn as_str(self) -> &'static str {
        match self {
            CostBucket::Compute => "compute",
            CostBucket::StoreIo => "store-io",
            CostBucket::ColdStart => "cold-start",
            CostBucket::Queueing => "queueing",
            CostBucket::Other => "other",
        }
    }
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text.
    Str(String),
    /// Unsigned integer (byte counts, worker ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct Span {
    /// This span's id (1-based creation order).
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Activity kind.
    pub category: Category,
    /// Display name (e.g. `"sort/map"`, `"GET data/in/0003"`).
    pub name: String,
    /// Coarse grouping — exported as the Chrome-trace *process*
    /// (e.g. `"driver"`, `"faas"`, `"store"`, `"vm-fleet"`).
    pub track: String,
    /// Fine grouping within the track — exported as the Chrome-trace
    /// *thread* (e.g. `"fn-3"`, `"vm-1"`, `"driver"`).
    pub lane: String,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time; `None` while open (or if never closed).
    pub end: Option<SimTime>,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(String, Value)>,
}

impl Span {
    /// Duration, if the span was closed.
    pub fn duration(&self) -> Option<faaspipe_des::SimDuration> {
        self.end.map(|e| e.saturating_duration_since(self.start))
    }
}
