//! Exporters: Chrome-trace JSON, per-stage text timeline, counter CSV,
//! and span-level flame aggregation.
//!
//! All exporters are deterministic functions of the recorded
//! [`TraceData`]: identical simulations produce byte-identical output.

use std::collections::BTreeMap;

use faaspipe_des::SimDuration;
use faaspipe_json::Json;

use crate::sink::TraceData;
use crate::span::Category;

/// Renders the trace in Chrome trace-event JSON (the format understood
/// by `chrome://tracing` and Perfetto).
///
/// Track names map to Chrome *processes* (pids in first-seen order) and
/// lanes to *threads*; spans become complete (`"ph": "X"`) events with
/// microsecond timestamps, attributes in `args`, and counters become
/// `"ph": "C"` events on a dedicated `counters` process.
pub fn chrome_trace_json(data: &TraceData) -> String {
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut tids: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    let mut events: Vec<Json> = Vec::new();

    // Assign pids/tids in first-seen (creation) order so the mapping is
    // deterministic, then emit naming metadata.
    for span in &data.spans {
        if !pids.contains_key(span.track.as_str()) {
            pids.insert(span.track.as_str(), pids.len() as u64);
        }
        let key = (span.track.as_str(), span.lane.as_str());
        if !tids.contains_key(&key) {
            let tid = tids
                .iter()
                .filter(|((track, _), _)| *track == span.track)
                .count() as u64;
            tids.insert(key, tid);
        }
    }

    let mut meta: Vec<(u64, Option<u64>, String)> = pids
        .iter()
        .map(|(track, &pid)| (pid, None, track.to_string()))
        .collect();
    for ((track, lane), &tid) in &tids {
        meta.push((pids[track], Some(tid), lane.to_string()));
    }
    meta.sort_by_key(|m| (m.0, m.1));
    for (pid, tid, name) in meta {
        let mut fields = vec![
            (
                "name".to_string(),
                Json::Str(
                    if tid.is_some() {
                        "thread_name"
                    } else {
                        "process_name"
                    }
                    .into(),
                ),
            ),
            ("ph".to_string(), Json::Str("M".into())),
            ("pid".to_string(), Json::UInt(pid)),
        ];
        if let Some(tid) = tid {
            fields.push(("tid".to_string(), Json::UInt(tid)));
        }
        fields.push((
            "args".to_string(),
            Json::Object(vec![("name".to_string(), Json::Str(name))]),
        ));
        events.push(Json::Object(fields));
    }

    let counter_pid = pids.len() as u64;
    if !data.counters.is_empty() {
        events.push(Json::Object(vec![
            ("name".to_string(), Json::Str("process_name".into())),
            ("ph".to_string(), Json::Str("M".into())),
            ("pid".to_string(), Json::UInt(counter_pid)),
            (
                "args".to_string(),
                Json::Object(vec![("name".to_string(), Json::Str("counters".into()))]),
            ),
        ]));
    }

    for span in &data.spans {
        let pid = pids[span.track.as_str()];
        let tid = tids[&(span.track.as_str(), span.lane.as_str())];
        let ts_us = span.start.as_nanos() as f64 / 1_000.0;
        let dur_us = span
            .end
            .map(|e| e.saturating_duration_since(span.start).as_nanos() as f64 / 1_000.0)
            .unwrap_or(0.0);
        let mut args: Vec<(String, Json)> =
            vec![("span_id".to_string(), Json::UInt(span.id.as_u64()))];
        if let Some(parent) = span.parent {
            args.push(("parent_id".to_string(), Json::UInt(parent.as_u64())));
        }
        if span.end.is_none() {
            args.push(("unfinished".to_string(), Json::Bool(true)));
        }
        for (k, v) in &span.attrs {
            args.push((k.clone(), crate::value_to_json(v)));
        }
        events.push(Json::Object(vec![
            ("name".to_string(), Json::Str(span.name.clone())),
            ("cat".to_string(), Json::Str(span.category.as_str().into())),
            ("ph".to_string(), Json::Str("X".into())),
            ("ts".to_string(), Json::Float(ts_us)),
            ("dur".to_string(), Json::Float(dur_us)),
            ("pid".to_string(), Json::UInt(pid)),
            ("tid".to_string(), Json::UInt(tid)),
            ("args".to_string(), Json::Object(args)),
        ]));
    }

    for series in &data.counters {
        for &(t, v) in &series.points {
            events.push(Json::Object(vec![
                ("name".to_string(), Json::Str(series.name.clone())),
                ("cat".to_string(), Json::Str(series.kind.as_str().into())),
                ("ph".to_string(), Json::Str("C".into())),
                ("ts".to_string(), Json::Float(t.as_nanos() as f64 / 1_000.0)),
                ("pid".to_string(), Json::UInt(counter_pid)),
                (
                    "args".to_string(),
                    Json::Object(vec![("value".to_string(), Json::Float(v))]),
                ),
            ]));
        }
    }

    Json::Object(vec![
        ("traceEvents".to_string(), Json::Array(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".into())),
    ])
    .to_compact()
}

/// Renders stage spans as an ASCII timeline, one bar per stage span,
/// grouped under the enclosing run span (or the data's time extent).
pub fn render_timeline(data: &TraceData) -> String {
    const WIDTH: usize = 56;
    let stages: Vec<_> = data
        .spans
        .iter()
        .filter(|s| s.category == Category::Stage && s.end.is_some())
        .collect();
    if stages.is_empty() {
        return String::from("(no stage spans recorded)\n");
    }
    let t0 = data
        .run_span()
        .map(|r| r.start)
        .unwrap_or_else(|| stages.iter().map(|s| s.start).min().unwrap());
    let t1 = data
        .run_span()
        .and_then(|r| r.end)
        .unwrap_or_else(|| stages.iter().filter_map(|s| s.end).max().unwrap());
    let total = t1.saturating_duration_since(t0).as_secs_f64().max(1e-9);

    let mut out = String::new();
    for span in stages {
        let start = span.start.saturating_duration_since(t0).as_secs_f64();
        let end = span
            .end
            .unwrap()
            .saturating_duration_since(t0)
            .as_secs_f64();
        let a = ((start / total) * WIDTH as f64).round() as usize;
        let b = (((end / total) * WIDTH as f64).round() as usize).clamp(a + 1, WIDTH);
        let mut bar = String::with_capacity(WIDTH);
        for i in 0..WIDTH {
            bar.push(if i >= a && i < b { '#' } else { '.' });
        }
        out.push_str(&format!(
            "{:<18} |{}| {:>7.2}s – {:>7.2}s\n",
            span.name, bar, start, end
        ));
    }
    out
}

/// One row of the flame aggregation: every closed span sharing a
/// `(category, name)` pair, folded together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameRow {
    /// Activity kind the spans share.
    pub category: Category,
    /// Span name the group folds on (function name, request class, ...).
    pub name: String,
    /// Number of spans folded into this row.
    pub count: u64,
    /// Summed wall durations of the folded spans.
    pub total: SimDuration,
    /// Summed *self* time: each span's duration minus the durations of
    /// its direct closed children. Children that overlap each other (a
    /// gang of parallel invocations under one phase) can cover more than
    /// their parent's wall clock; such spans contribute zero self time
    /// rather than underflowing.
    pub self_time: SimDuration,
}

/// Folds all closed spans by `(category, name)` — a flame-graph-style
/// aggregation answering "where did the simulated time go, by activity".
///
/// Rows are sorted by descending total time, then category, then name,
/// so the output is deterministic for identical traces.
pub fn flame_rows(data: &TraceData) -> Vec<FlameRow> {
    // Direct-child wall time per parent, for self-time attribution.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for span in &data.spans {
        if let (Some(parent), Some(d)) = (span.parent, span.duration()) {
            *child_ns.entry(parent.as_u64()).or_default() += d.as_nanos();
        }
    }
    let mut groups: BTreeMap<(&'static str, &str), (Category, u64, u64, u64)> = BTreeMap::new();
    for span in &data.spans {
        let Some(dur) = span.duration() else { continue };
        let covered = child_ns.get(&span.id.as_u64()).copied().unwrap_or(0);
        let self_ns = dur.as_nanos().saturating_sub(covered);
        let entry = groups
            .entry((span.category.as_str(), span.name.as_str()))
            .or_insert((span.category, 0, 0, 0));
        entry.1 += 1;
        entry.2 += dur.as_nanos();
        entry.3 += self_ns;
    }
    let mut rows: Vec<FlameRow> = groups
        .into_iter()
        .map(|((_, name), (category, count, total, self_ns))| FlameRow {
            category,
            name: name.to_string(),
            count,
            total: SimDuration::from_nanos(total),
            self_time: SimDuration::from_nanos(self_ns),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total
            .cmp(&a.total)
            .then_with(|| a.category.as_str().cmp(b.category.as_str()))
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

/// Renders [`flame_rows`] as an aligned text table
/// (`category  name  count  total_s  self_s`).
pub fn render_flame(data: &TraceData) -> String {
    let rows = flame_rows(data);
    if rows.is_empty() {
        return String::from("(no closed spans recorded)\n");
    }
    let mut out =
        String::from("category      name                      count   total_s    self_s\n");
    for r in &rows {
        out.push_str(&format!(
            "{:<12}  {:<24}  {:>5}  {:>8.3}  {:>8.3}\n",
            r.category.as_str(),
            r.name,
            r.count,
            r.total.as_secs_f64(),
            r.self_time.as_secs_f64()
        ));
    }
    out
}

/// Dumps every counter series as CSV:
/// `counter,kind,t_s,value` rows ordered by name then time.
pub fn counters_csv(data: &TraceData) -> String {
    let mut out = String::from("counter,kind,t_s,value\n");
    for series in &data.counters {
        for &(t, v) in &series.points {
            out.push_str(&format!(
                "{},{},{:.9},{}\n",
                series.name,
                series.kind.as_str(),
                t.as_secs_f64(),
                v
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::span::SpanId;
    use faaspipe_des::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    fn sample() -> TraceData {
        let sink = TraceSink::recording();
        let run = sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
        let stage = sink.span_start(Category::Stage, "sort", "driver", "driver", run, t(0));
        let inv = sink.span_start(Category::Invocation, "map-0", "faas", "fn-0", stage, t(1));
        sink.attr(inv, "bytes", 1024u64);
        sink.span_end(inv, t(3));
        sink.span_end(stage, t(4));
        let enc = sink.span_start(Category::Stage, "encode", "driver", "driver", run, t(4));
        sink.span_end(enc, t(5));
        sink.span_end(run, t(5));
        sink.gauge("store.flows", t(1), 1.0);
        sink.gauge("store.flows", t(3), 0.0);
        sink.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_pid_mapping() {
        let text = chrome_trace_json(&sample());
        let v: Json = text.parse().expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("events");
        // 2 tracks + 2 lanes named + counters process = 5 metadata events.
        let metas = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        assert_eq!(metas, 5);
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 4);
        // The invocation should be on the second process (pid 1).
        let inv = xs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("map-0"))
            .expect("invocation event");
        assert_eq!(inv.get("pid"), Some(&Json::UInt(1)));
        assert_eq!(inv.get("dur"), Some(&Json::Float(2_000_000.0)));
        let counters = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .count();
        assert_eq!(counters, 2);
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(chrome_trace_json(&a), chrome_trace_json(&b));
        assert_eq!(render_timeline(&a), render_timeline(&b));
        assert_eq!(counters_csv(&a), counters_csv(&b));
    }

    #[test]
    fn timeline_covers_stages() {
        let text = render_timeline(&sample());
        assert!(text.contains("sort"));
        assert!(text.contains("encode"));
        assert!(text.lines().count() == 2);
    }

    #[test]
    fn flame_rows_fold_totals_and_self_time() {
        let rows = flame_rows(&sample());
        // run(5s), sort(4s), encode(1s), map-0(2s) — 4 groups.
        assert_eq!(rows.len(), 4);
        let find = |name: &str| rows.iter().find(|r| r.name == name).expect("row");
        let run = find("run");
        assert_eq!(run.count, 1);
        assert_eq!(run.total, SimDuration::from_secs(5));
        // run covers sort(4)+encode(1) entirely: zero self time.
        assert_eq!(run.self_time, SimDuration::ZERO);
        let sort = find("sort");
        assert_eq!(sort.total, SimDuration::from_secs(4));
        assert_eq!(sort.self_time, SimDuration::from_secs(2), "minus map-0");
        let inv = find("map-0");
        assert_eq!(inv.category, Category::Invocation);
        assert_eq!(inv.total, inv.self_time, "leaf spans keep everything");
        // Descending by total: the run span leads.
        assert_eq!(rows[0].name, "run");
    }

    #[test]
    fn flame_self_time_saturates_on_overlapping_children() {
        // Two parallel 10 s children under a 10 s parent: covered time
        // (20 s) exceeds the parent's wall clock; self time clamps to 0.
        let sink = TraceSink::recording();
        let p = sink.span_start(
            Category::Phase,
            "map",
            "driver",
            "driver",
            SpanId::NONE,
            t(0),
        );
        let a = sink.span_start(Category::Invocation, "fn", "faas", "fn-0", p, t(0));
        let b = sink.span_start(Category::Invocation, "fn", "faas", "fn-1", p, t(0));
        sink.span_end(a, t(10));
        sink.span_end(b, t(10));
        sink.span_end(p, t(10));
        let rows = flame_rows(&sink.snapshot());
        let fold = rows.iter().find(|r| r.name == "fn").expect("folded");
        assert_eq!(fold.count, 2);
        assert_eq!(fold.total, SimDuration::from_secs(20));
        let parent = rows.iter().find(|r| r.name == "map").expect("parent");
        assert_eq!(parent.self_time, SimDuration::ZERO);
        // Open spans are excluded entirely.
        let open = sink.span_start(
            Category::Phase,
            "open",
            "driver",
            "driver",
            SpanId::NONE,
            t(0),
        );
        assert!(!open.is_none());
        assert!(!flame_rows(&sink.snapshot())
            .iter()
            .any(|r| r.name == "open"));
    }

    #[test]
    fn render_flame_is_deterministic_and_aligned() {
        let a = render_flame(&sample());
        let b = render_flame(&sample());
        assert_eq!(a, b);
        assert!(a.starts_with("category"));
        assert!(a.contains("map-0"));
        assert_eq!(
            render_flame(&TraceData::default()),
            "(no closed spans recorded)\n"
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let text = counters_csv(&sample());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("counter,kind,t_s,value"));
        assert_eq!(lines.count(), 2);
        assert!(text.contains("store.flows,gauge"));
    }
}
