//! Counter timeseries sampled on change.
//!
//! Counters capture scalar state over virtual time — aggregate store
//! bandwidth in use, in-flight flows, warm/cold container pool sizes,
//! queued invocations. A point is recorded only when the value actually
//! changes; several updates at the same instant coalesce into the final
//! value, so a series is a minimal step function.

use faaspipe_des::SimTime;

/// How a counter's updates combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// `set` semantics: each sample replaces the value.
    Gauge,
    /// `add` semantics: deltas accumulate (starting from zero).
    Cumulative,
}

impl CounterKind {
    /// Stable name used in the CSV dump.
    pub fn as_str(self) -> &'static str {
        match self {
            CounterKind::Gauge => "gauge",
            CounterKind::Cumulative => "cumulative",
        }
    }
}

/// One counter's recorded step function.
#[derive(Debug, Clone)]
pub struct CounterSeries {
    /// Counter name (e.g. `"store.bandwidth_in_use"`).
    pub name: String,
    /// Gauge or cumulative.
    pub kind: CounterKind,
    /// `(time, value)` points; strictly increasing times, no two
    /// consecutive points share a value.
    pub points: Vec<(SimTime, f64)>,
}

impl CounterSeries {
    pub(crate) fn new(name: &str, kind: CounterKind) -> CounterSeries {
        CounterSeries {
            name: name.to_string(),
            kind,
            points: Vec::new(),
        }
    }

    /// Latest recorded value (0.0 before the first sample).
    pub fn last_value(&self) -> f64 {
        self.points.last().map(|&(_, v)| v).unwrap_or(0.0)
    }

    /// The value in effect at `t` (0.0 before the first sample).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => 0.0,
            n => self.points[n - 1].1,
        }
    }

    /// The maximum value the counter ever held.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    pub(crate) fn record(&mut self, at: SimTime, value: f64) {
        match self.points.last_mut() {
            Some((t, v)) if *t == at => {
                // Same-instant updates coalesce to the final value.
                *v = value;
                // Collapse if this made the point redundant.
                if self.points.len() >= 2 && self.points[self.points.len() - 2].1 == value {
                    self.points.pop();
                }
            }
            Some((_, v)) if *v == value => {} // unchanged: skip
            _ => self.points.push((at, value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn samples_only_on_change() {
        let mut c = CounterSeries::new("x", CounterKind::Gauge);
        c.record(t(1), 1.0);
        c.record(t(2), 1.0);
        c.record(t(3), 2.0);
        assert_eq!(c.points.len(), 2);
        assert_eq!(c.value_at(t(2)), 1.0);
        assert_eq!(c.value_at(t(3)), 2.0);
        assert_eq!(c.value_at(t(0)), 0.0);
        assert_eq!(c.max_value(), 2.0);
    }

    #[test]
    fn same_instant_updates_coalesce() {
        let mut c = CounterSeries::new("x", CounterKind::Gauge);
        c.record(t(1), 1.0);
        c.record(t(2), 5.0);
        c.record(t(2), 1.0); // back to previous value at the same instant
        assert_eq!(c.points, vec![(t(1), 1.0)]);
    }
}
