//! The recording handle: [`TraceSink`].
//!
//! A `TraceSink` is cheap to clone (an `Option<Arc<..>>`) and is threaded
//! through every simulated service. The disabled sink is a `None` — each
//! recording call is then a single branch and no allocation, which keeps
//! tracing zero-cost for untraced runs.

use std::collections::BTreeMap;

use faaspipe_des::{ProcessId, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::counter::{CounterKind, CounterSeries};
use crate::span::{Category, Span, SpanId, Value};

#[derive(Default)]
struct State {
    spans: Vec<Span>,
    counters: BTreeMap<String, CounterSeries>,
    /// Per-process stack of open spans, used to parent cross-crate
    /// recordings (a store request made inside a function body parents
    /// to that invocation's span without threading ids through APIs).
    stacks: BTreeMap<usize, Vec<SpanId>>,
}

/// Cheaply-clonable handle through which all trace data is recorded.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<State>>>,
}

impl TraceSink {
    /// A sink that drops everything (the default).
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// A sink that records spans and counters in memory.
    pub fn recording() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(State::default()))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span at virtual time `at`; returns its id
    /// ([`SpanId::NONE`] when disabled).
    pub fn span_start(
        &self,
        category: Category,
        name: impl Into<String>,
        track: &str,
        lane: &str,
        parent: SpanId,
        at: SimTime,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut state = inner.lock();
        let id = SpanId(state.spans.len() as u64 + 1);
        state.spans.push(Span {
            id,
            parent: if parent.is_none() { None } else { Some(parent) },
            category,
            name: name.into(),
            track: track.to_string(),
            lane: lane.to_string(),
            start: at,
            end: None,
            attrs: Vec::new(),
        });
        id
    }

    /// Closes span `id` at virtual time `at`. Ignores the null id and
    /// double-closes.
    pub fn span_end(&self, id: SpanId, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        let mut state = inner.lock();
        if let Some(span) = state.spans.get_mut(id.0 as usize - 1) {
            if span.end.is_none() {
                span.end = Some(at.max(span.start));
            }
        }
    }

    /// Attaches a key/value attribute to span `id` (no-op for the null
    /// id; replaces an existing value for the same key).
    pub fn attr(&self, id: SpanId, key: &str, value: impl Into<Value>) {
        let Some(inner) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        let mut state = inner.lock();
        if let Some(span) = state.spans.get_mut(id.0 as usize - 1) {
            let value = value.into();
            match span.attrs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => span.attrs.push((key.to_string(), value)),
            }
        }
    }

    /// Sets a gauge counter to `value` at time `at` (recorded only when
    /// the value changes).
    pub fn gauge(&self, name: &str, at: SimTime, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock();
        state
            .counters
            .entry(name.to_string())
            .or_insert_with(|| CounterSeries::new(name, CounterKind::Gauge))
            .record(at, value);
    }

    /// Adds `delta` to a cumulative counter at time `at`.
    pub fn add(&self, name: &str, at: SimTime, delta: f64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock();
        let series = state
            .counters
            .entry(name.to_string())
            .or_insert_with(|| CounterSeries::new(name, CounterKind::Cumulative));
        let next = series.last_value() + delta;
        series.record(at, next);
    }

    /// Pushes span `id` onto `pid`'s open-span stack; spans recorded
    /// from that process via [`TraceSink::current`] parent to it.
    pub fn enter(&self, pid: ProcessId, id: SpanId) {
        let Some(inner) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        inner.lock().stacks.entry(pid.index()).or_default().push(id);
    }

    /// Pops the top of `pid`'s open-span stack.
    pub fn exit(&self, pid: ProcessId) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock();
        if let Some(stack) = state.stacks.get_mut(&pid.index()) {
            stack.pop();
            if stack.is_empty() {
                state.stacks.remove(&pid.index());
            }
        }
    }

    /// The innermost open span registered for `pid` via
    /// [`TraceSink::enter`], or [`SpanId::NONE`].
    pub fn current(&self, pid: ProcessId) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        inner
            .lock()
            .stacks
            .get(&pid.index())
            .and_then(|s| s.last().copied())
            .unwrap_or(SpanId::NONE)
    }

    /// Latest value of counter `name` (0.0 if never recorded).
    pub fn counter_value(&self, name: &str) -> f64 {
        let Some(inner) = &self.inner else { return 0.0 };
        inner
            .lock()
            .counters
            .get(name)
            .map_or(0.0, |c| c.last_value())
    }

    /// Copies out everything recorded so far (empty for a disabled
    /// sink). Exporters and the analyzer work on this snapshot.
    pub fn snapshot(&self) -> TraceData {
        match &self.inner {
            None => TraceData::default(),
            Some(inner) => {
                let state = inner.lock();
                TraceData {
                    spans: state.spans.clone(),
                    counters: state.counters.values().cloned().collect(),
                }
            }
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("TraceSink(disabled)"),
            Some(inner) => {
                let state = inner.lock();
                write!(
                    f,
                    "TraceSink({} spans, {} counters)",
                    state.spans.len(),
                    state.counters.len()
                )
            }
        }
    }
}

/// An immutable snapshot of recorded trace data.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// All spans in creation order (id order).
    pub spans: Vec<Span>,
    /// All counter series, sorted by name.
    pub counters: Vec<CounterSeries>,
}

impl TraceData {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Looks up a span by id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        if id.is_none() {
            return None;
        }
        self.spans.get(id.0 as usize - 1)
    }

    /// Looks up a counter series by name.
    pub fn counter(&self, name: &str) -> Option<&CounterSeries> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// The root run span, if one was recorded.
    pub fn run_span(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.category == Category::Run)
    }

    /// Combines several labelled recordings into one trace: span ids are
    /// renumbered, and track and counter names get a `label/` prefix so
    /// the runs land on distinct processes in the Chrome export.
    pub fn merged(runs: &[(&str, &TraceData)]) -> TraceData {
        let mut out = TraceData::default();
        for (label, data) in runs {
            let base = out.spans.len() as u64;
            for span in &data.spans {
                let mut s = span.clone();
                s.id = SpanId(s.id.0 + base);
                s.parent = s.parent.map(|p| SpanId(p.0 + base));
                s.track = format!("{}/{}", label, s.track);
                out.spans.push(s);
            }
            for series in &data.counters {
                let mut c = series.clone();
                c.name = format!("{}/{}", label, c.name);
                out.counters.push(c);
            }
        }
        out.counters.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        let id = sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
        assert!(id.is_none());
        sink.attr(id, "k", 1u64);
        sink.span_end(id, t(1));
        sink.gauge("g", t(0), 1.0);
        sink.add("c", t(0), 2.0);
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn records_spans_with_parents_and_attrs() {
        let sink = TraceSink::recording();
        let run = sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
        let stage = sink.span_start(Category::Stage, "sort", "driver", "driver", run, t(1));
        sink.attr(stage, "workers", 8u64);
        sink.attr(stage, "workers", 9u64); // replaces
        sink.span_end(stage, t(5));
        sink.span_end(run, t(6));

        let data = sink.snapshot();
        assert_eq!(data.spans.len(), 2);
        let s = data.span(stage).unwrap();
        assert_eq!(s.parent, Some(run));
        assert_eq!(s.attrs, vec![("workers".to_string(), Value::U64(9))]);
        assert_eq!(s.duration().unwrap().as_secs_f64(), 4.0);
        assert_eq!(data.run_span().unwrap().id, run);
    }

    #[test]
    fn clones_share_the_recorder() {
        let sink = TraceSink::recording();
        let clone = sink.clone();
        clone.span_start(Category::Compute, "x", "a", "b", SpanId::NONE, t(0));
        assert_eq!(sink.snapshot().spans.len(), 1);
    }

    #[test]
    fn cumulative_counters_accumulate() {
        let sink = TraceSink::recording();
        sink.add("bytes", t(1), 10.0);
        sink.add("bytes", t(2), 5.0);
        let data = sink.snapshot();
        let c = data.counter("bytes").unwrap();
        assert_eq!(c.kind, CounterKind::Cumulative);
        assert_eq!(c.last_value(), 15.0);
    }
}
