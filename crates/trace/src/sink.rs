//! The recording handle: [`TraceSink`].
//!
//! A `TraceSink` is cheap to clone (an `Option<Arc<..>>`) and is threaded
//! through every simulated service. The disabled sink is a `None` — each
//! recording call is then a single branch and no allocation, which keeps
//! tracing zero-cost for untraced runs.
//!
//! Besides the in-memory recorder there is a *streaming* mode
//! ([`TraceSink::streaming`]): completed spans are serialized to a JSONL
//! writer the moment they close and dropped from memory, so a cluster
//! sweep with thousands of runs holds only the currently-open spans. The
//! in-memory path is untouched when streaming is off — same ids, same
//! storage, same snapshots.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use faaspipe_des::{ProcessId, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::counter::{CounterKind, CounterSeries};
use crate::span::{Category, Span, SpanId, Value};

/// Streaming-mode state: the JSONL writer plus the minimal residue kept
/// in memory (open spans, last counter values).
struct Stream {
    out: Box<dyn Write + Send>,
    /// Spans started but not yet ended, keyed by raw id.
    open: BTreeMap<u64, Span>,
    /// Next span id to hand out (ids stay 1-based creation order).
    next_id: u64,
    /// Per-counter pending point, mirroring [`CounterSeries::record`]'s
    /// coalescing without retaining the series: the last point stays
    /// buffered until a strictly later change supersedes it.
    pending: BTreeMap<String, PendingCounter>,
    /// Completed spans flushed to the writer so far.
    written: u64,
    /// First write error, surfaced by [`TraceSink::finish`].
    error: Option<io::Error>,
}

struct PendingCounter {
    kind: CounterKind,
    /// Last value written to the stream, if any point was flushed yet.
    flushed: Option<f64>,
    /// The buffered most-recent point, if any.
    point: Option<(SimTime, f64)>,
}

impl PendingCounter {
    fn last_value(&self) -> f64 {
        self.point.map(|(_, v)| v).or(self.flushed).unwrap_or(0.0)
    }
}

#[derive(Default)]
struct State {
    spans: Vec<Span>,
    counters: BTreeMap<String, CounterSeries>,
    /// Per-process stack of open spans, used to parent cross-crate
    /// recordings (a store request made inside a function body parents
    /// to that invocation's span without threading ids through APIs).
    stacks: BTreeMap<usize, Vec<SpanId>>,
    /// `Some` puts the sink in streaming mode; `spans`/`counters` above
    /// then stay empty.
    stream: Option<Stream>,
}

/// Cheaply-clonable handle through which all trace data is recorded.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<State>>>,
}

impl TraceSink {
    /// A sink that drops everything (the default).
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// A sink that records spans and counters in memory.
    pub fn recording() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(State::default()))),
        }
    }

    /// A sink that streams completed spans and counter points to `out`
    /// as JSON Lines instead of holding them in memory. Only open spans
    /// and last counter values are retained; call [`TraceSink::finish`]
    /// at the end of the run to flush buffered tail state.
    pub fn streaming(out: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(State {
                stream: Some(Stream {
                    out,
                    open: BTreeMap::new(),
                    next_id: 1,
                    pending: BTreeMap::new(),
                    written: 0,
                    error: None,
                }),
                ..State::default()
            }))),
        }
    }

    /// A streaming sink writing to a buffered file at `path`.
    pub fn streaming_file(path: impl AsRef<Path>) -> io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::streaming(Box::new(io::BufWriter::new(file))))
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this sink streams completed spans to a writer.
    pub fn is_streaming(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.lock().stream.is_some())
    }

    /// Opens a span at virtual time `at`; returns its id
    /// ([`SpanId::NONE`] when disabled).
    pub fn span_start(
        &self,
        category: Category,
        name: impl Into<String>,
        track: &str,
        lane: &str,
        parent: SpanId,
        at: SimTime,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut state = inner.lock();
        if let Some(stream) = &mut state.stream {
            let id = SpanId(stream.next_id);
            stream.next_id += 1;
            stream.open.insert(
                id.0,
                Span {
                    id,
                    parent: if parent.is_none() { None } else { Some(parent) },
                    category,
                    name: name.into(),
                    track: track.to_string(),
                    lane: lane.to_string(),
                    start: at,
                    end: None,
                    attrs: Vec::new(),
                },
            );
            return id;
        }
        let id = SpanId(state.spans.len() as u64 + 1);
        state.spans.push(Span {
            id,
            parent: if parent.is_none() { None } else { Some(parent) },
            category,
            name: name.into(),
            track: track.to_string(),
            lane: lane.to_string(),
            start: at,
            end: None,
            attrs: Vec::new(),
        });
        id
    }

    /// Closes span `id` at virtual time `at`. Ignores the null id and
    /// double-closes.
    pub fn span_end(&self, id: SpanId, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        let mut state = inner.lock();
        if let Some(stream) = &mut state.stream {
            if let Some(mut span) = stream.open.remove(&id.0) {
                span.end = Some(at.max(span.start));
                stream.write_span(&span);
            }
            return;
        }
        if let Some(span) = state.spans.get_mut(id.0 as usize - 1) {
            if span.end.is_none() {
                span.end = Some(at.max(span.start));
            }
        }
    }

    /// Attaches a key/value attribute to span `id` (no-op for the null
    /// id; replaces an existing value for the same key). In streaming
    /// mode, attributes attach only while the span is still open.
    pub fn attr(&self, id: SpanId, key: &str, value: impl Into<Value>) {
        let Some(inner) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        let mut state = inner.lock();
        let span = if let Some(stream) = &mut state.stream {
            stream.open.get_mut(&id.0)
        } else {
            state.spans.get_mut(id.0 as usize - 1)
        };
        if let Some(span) = span {
            let value = value.into();
            match span.attrs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => span.attrs.push((key.to_string(), value)),
            }
        }
    }

    /// Sets a gauge counter to `value` at time `at` (recorded only when
    /// the value changes).
    pub fn gauge(&self, name: &str, at: SimTime, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock();
        if let Some(stream) = &mut state.stream {
            stream.record_counter(name, CounterKind::Gauge, at, value);
            return;
        }
        state
            .counters
            .entry(name.to_string())
            .or_insert_with(|| CounterSeries::new(name, CounterKind::Gauge))
            .record(at, value);
    }

    /// Adds `delta` to a cumulative counter at time `at`.
    pub fn add(&self, name: &str, at: SimTime, delta: f64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock();
        if let Some(stream) = &mut state.stream {
            let next = stream
                .pending
                .get(name)
                .map_or(0.0, PendingCounter::last_value)
                + delta;
            stream.record_counter(name, CounterKind::Cumulative, at, next);
            return;
        }
        let series = state
            .counters
            .entry(name.to_string())
            .or_insert_with(|| CounterSeries::new(name, CounterKind::Cumulative));
        let next = series.last_value() + delta;
        series.record(at, next);
    }

    /// Pushes span `id` onto `pid`'s open-span stack; spans recorded
    /// from that process via [`TraceSink::current`] parent to it.
    pub fn enter(&self, pid: ProcessId, id: SpanId) {
        let Some(inner) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        inner.lock().stacks.entry(pid.index()).or_default().push(id);
    }

    /// Pops the top of `pid`'s open-span stack.
    pub fn exit(&self, pid: ProcessId) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock();
        if let Some(stack) = state.stacks.get_mut(&pid.index()) {
            stack.pop();
            if stack.is_empty() {
                state.stacks.remove(&pid.index());
            }
        }
    }

    /// The innermost open span registered for `pid` via
    /// [`TraceSink::enter`], or [`SpanId::NONE`].
    pub fn current(&self, pid: ProcessId) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        inner
            .lock()
            .stacks
            .get(&pid.index())
            .and_then(|s| s.last().copied())
            .unwrap_or(SpanId::NONE)
    }

    /// Latest value of counter `name` (0.0 if never recorded).
    pub fn counter_value(&self, name: &str) -> f64 {
        let Some(inner) = &self.inner else { return 0.0 };
        let state = inner.lock();
        if let Some(stream) = &state.stream {
            return stream
                .pending
                .get(name)
                .map_or(0.0, PendingCounter::last_value);
        }
        state.counters.get(name).map_or(0.0, |c| c.last_value())
    }

    /// Copies out everything recorded so far (empty for a disabled
    /// sink). Exporters and the analyzer work on this snapshot.
    ///
    /// A *streaming* sink snapshots empty: completed spans live in the
    /// JSONL output, not in memory.
    pub fn snapshot(&self) -> TraceData {
        match &self.inner {
            None => TraceData::default(),
            Some(inner) => {
                let state = inner.lock();
                if state.stream.is_some() {
                    return TraceData::default();
                }
                TraceData {
                    spans: state.spans.clone(),
                    counters: state.counters.values().cloned().collect(),
                }
            }
        }
    }

    /// Flushes a streaming sink: writes still-open spans (marked
    /// `"open":true`), flushes buffered counter tails, and flushes the
    /// writer. Returns the first write error encountered over the whole
    /// stream. A no-op (Ok) for disabled and in-memory sinks.
    ///
    /// The sink stays usable afterwards, but flushed open spans are
    /// forgotten — call this once, at the end of the run.
    pub fn finish(&self) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut state = inner.lock();
        let Some(stream) = &mut state.stream else {
            return Ok(());
        };
        let open: Vec<Span> = std::mem::take(&mut stream.open).into_values().collect();
        for span in &open {
            stream.write_span(span);
        }
        let tails: Vec<(String, CounterKind, SimTime, f64)> = stream
            .pending
            .iter_mut()
            .filter_map(|(name, p)| {
                p.point.take().map(|(t, v)| {
                    p.flushed = Some(v);
                    (name.clone(), p.kind, t, v)
                })
            })
            .collect();
        for (name, kind, t, v) in tails {
            stream.write_counter(&name, kind, t, v);
        }
        if stream.error.is_none() {
            if let Err(e) = stream.out.flush() {
                stream.error = Some(e);
            }
        }
        match stream.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Stream {
    /// Applies one counter sample with [`CounterSeries::record`]'s
    /// coalescing semantics, flushing the previously buffered point to
    /// the writer once a strictly later change supersedes it.
    fn record_counter(&mut self, name: &str, kind: CounterKind, at: SimTime, value: f64) {
        let entry = self
            .pending
            .entry(name.to_string())
            .or_insert(PendingCounter {
                kind,
                flushed: None,
                point: None,
            });
        match entry.point {
            Some((t, _)) if t == at => {
                // Same-instant updates coalesce to the final value; the
                // point disappears entirely if that makes it redundant
                // against the last flushed value.
                if entry.flushed == Some(value) {
                    entry.point = None;
                } else {
                    entry.point = Some((at, value));
                }
            }
            Some((_, v)) if v == value => {} // unchanged: skip
            Some((t, v)) => {
                entry.flushed = Some(v);
                entry.point = Some((at, value));
                self.write_counter(name, kind, t, v);
            }
            None if entry.flushed == Some(value) => {} // unchanged: skip
            None => entry.point = Some((at, value)),
        }
    }

    fn write_span(&mut self, span: &Span) {
        use faaspipe_json::Json;
        let mut fields = vec![
            ("type".to_string(), Json::Str("span".to_string())),
            ("id".to_string(), Json::UInt(span.id.as_u64())),
            (
                "parent".to_string(),
                span.parent.map_or(Json::Null, |p| Json::UInt(p.as_u64())),
            ),
            (
                "category".to_string(),
                Json::Str(span.category.as_str().to_string()),
            ),
            ("name".to_string(), Json::Str(span.name.clone())),
            ("track".to_string(), Json::Str(span.track.clone())),
            ("lane".to_string(), Json::Str(span.lane.clone())),
            ("start_ns".to_string(), Json::UInt(span.start.as_nanos())),
            (
                "end_ns".to_string(),
                span.end.map_or(Json::Null, |e| Json::UInt(e.as_nanos())),
            ),
        ];
        if span.end.is_none() {
            fields.push(("open".to_string(), Json::Bool(true)));
        }
        if !span.attrs.is_empty() {
            let attrs = span
                .attrs
                .iter()
                .map(|(k, v)| {
                    let json = match v {
                        Value::Str(s) => Json::Str(s.clone()),
                        Value::U64(n) => Json::UInt(*n),
                        Value::I64(n) => Json::Int(*n),
                        Value::F64(x) => Json::Float(*x),
                        Value::Bool(b) => Json::Bool(*b),
                    };
                    (k.clone(), json)
                })
                .collect();
            fields.push(("attrs".to_string(), Json::Object(attrs)));
        }
        self.write_line(&Json::Object(fields));
        self.written += 1;
    }

    fn write_counter(&mut self, name: &str, kind: CounterKind, at: SimTime, value: f64) {
        use faaspipe_json::Json;
        let line = Json::Object(vec![
            ("type".to_string(), Json::Str("counter".to_string())),
            ("name".to_string(), Json::Str(name.to_string())),
            ("kind".to_string(), Json::Str(kind.as_str().to_string())),
            ("t_ns".to_string(), Json::UInt(at.as_nanos())),
            ("value".to_string(), Json::Float(value)),
        ]);
        self.write_line(&line);
    }

    fn write_line(&mut self, line: &faaspipe_json::Json) {
        if self.error.is_some() {
            return;
        }
        let mut text = faaspipe_json::to_string(line);
        text.push('\n');
        if let Err(e) = self.out.write_all(text.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("TraceSink(disabled)"),
            Some(inner) => {
                let state = inner.lock();
                write!(
                    f,
                    "TraceSink({} spans, {} counters)",
                    state.spans.len(),
                    state.counters.len()
                )
            }
        }
    }
}

/// An immutable snapshot of recorded trace data.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// All spans in creation order (id order).
    pub spans: Vec<Span>,
    /// All counter series, sorted by name.
    pub counters: Vec<CounterSeries>,
}

impl TraceData {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Looks up a span by id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        if id.is_none() {
            return None;
        }
        self.spans.get(id.0 as usize - 1)
    }

    /// Looks up a counter series by name.
    pub fn counter(&self, name: &str) -> Option<&CounterSeries> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// The root run span, if one was recorded.
    pub fn run_span(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.category == Category::Run)
    }

    /// Combines several labelled recordings into one trace: span ids are
    /// renumbered, and track and counter names get a `label/` prefix so
    /// the runs land on distinct processes in the Chrome export.
    pub fn merged(runs: &[(&str, &TraceData)]) -> TraceData {
        let mut out = TraceData::default();
        for (label, data) in runs {
            let base = out.spans.len() as u64;
            for span in &data.spans {
                let mut s = span.clone();
                s.id = SpanId(s.id.0 + base);
                s.parent = s.parent.map(|p| SpanId(p.0 + base));
                s.track = format!("{}/{}", label, s.track);
                out.spans.push(s);
            }
            for series in &data.counters {
                let mut c = series.clone();
                c.name = format!("{}/{}", label, c.name);
                out.counters.push(c);
            }
        }
        out.counters.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        let id = sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
        assert!(id.is_none());
        sink.attr(id, "k", 1u64);
        sink.span_end(id, t(1));
        sink.gauge("g", t(0), 1.0);
        sink.add("c", t(0), 2.0);
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn records_spans_with_parents_and_attrs() {
        let sink = TraceSink::recording();
        let run = sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
        let stage = sink.span_start(Category::Stage, "sort", "driver", "driver", run, t(1));
        sink.attr(stage, "workers", 8u64);
        sink.attr(stage, "workers", 9u64); // replaces
        sink.span_end(stage, t(5));
        sink.span_end(run, t(6));

        let data = sink.snapshot();
        assert_eq!(data.spans.len(), 2);
        let s = data.span(stage).unwrap();
        assert_eq!(s.parent, Some(run));
        assert_eq!(s.attrs, vec![("workers".to_string(), Value::U64(9))]);
        assert_eq!(s.duration().unwrap().as_secs_f64(), 4.0);
        assert_eq!(data.run_span().unwrap().id, run);
    }

    #[test]
    fn clones_share_the_recorder() {
        let sink = TraceSink::recording();
        let clone = sink.clone();
        clone.span_start(Category::Compute, "x", "a", "b", SpanId::NONE, t(0));
        assert_eq!(sink.snapshot().spans.len(), 1);
    }

    #[test]
    fn cumulative_counters_accumulate() {
        let sink = TraceSink::recording();
        sink.add("bytes", t(1), 10.0);
        sink.add("bytes", t(2), 5.0);
        let data = sink.snapshot();
        let c = data.counter("bytes").unwrap();
        assert_eq!(c.kind, CounterKind::Cumulative);
        assert_eq!(c.last_value(), 15.0);
    }

    /// A `Write` handing its bytes to a shared buffer the test can read
    /// after the sink is done with it.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().clone()).expect("utf8")
        }
    }

    #[test]
    fn streaming_sink_spills_completed_spans_as_jsonl() {
        let buf = SharedBuf::default();
        let sink = TraceSink::streaming(Box::new(buf.clone()));
        assert!(sink.is_enabled());
        assert!(sink.is_streaming());
        let run = sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
        let stage = sink.span_start(Category::Stage, "sort", "driver", "driver", run, t(1));
        sink.attr(stage, "workers", 8u64);
        sink.span_end(stage, t(5));
        // The stage span is already on disk; the run span is still open
        // and nothing is retained in a snapshot.
        assert!(sink.snapshot().is_empty());
        let first = buf.text();
        assert_eq!(first.lines().count(), 1);
        sink.span_end(run, t(6));
        sink.finish().expect("finish");
        let lines: Vec<faaspipe_json::Json> = buf
            .text()
            .lines()
            .map(|l| faaspipe_json::from_str(l).expect("valid json line"))
            .collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("name").unwrap().as_str(), Some("sort"));
        assert_eq!(
            lines[0].get("end_ns"),
            Some(&faaspipe_json::Json::UInt(5_000_000_000))
        );
        assert_eq!(
            lines[0].get("attrs").unwrap().get("workers"),
            Some(&faaspipe_json::Json::UInt(8))
        );
        assert_eq!(lines[1].get("name").unwrap().as_str(), Some("run"));
    }

    #[test]
    fn streaming_finish_writes_open_spans_and_counter_tails() {
        let buf = SharedBuf::default();
        let sink = TraceSink::streaming(Box::new(buf.clone()));
        sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
        sink.gauge("g", t(1), 2.0);
        sink.add("c", t(2), 3.0);
        assert_eq!(sink.counter_value("g"), 2.0);
        assert_eq!(sink.counter_value("c"), 3.0);
        sink.finish().expect("finish");
        let text = buf.text();
        let lines: Vec<faaspipe_json::Json> = text
            .lines()
            .map(|l| faaspipe_json::from_str(l).expect("valid json line"))
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].get("open"), Some(&faaspipe_json::Json::Bool(true)));
        assert!(lines
            .iter()
            .any(|l| l.get("name").unwrap().as_str() == Some("g")
                && l.get("kind").unwrap().as_str() == Some("gauge")));
        assert!(lines
            .iter()
            .any(|l| l.get("name").unwrap().as_str() == Some("c")
                && l.get("kind").unwrap().as_str() == Some("cumulative")));
    }

    #[test]
    fn streaming_counters_match_in_memory_coalescing() {
        // Drive the same update sequence through both modes; the JSONL
        // points must equal the in-memory series point-for-point.
        let apply = |sink: &TraceSink| {
            sink.gauge("x", t(1), 1.0);
            sink.gauge("x", t(2), 1.0); // unchanged: skipped
            sink.gauge("x", t(3), 5.0);
            sink.gauge("x", t(3), 1.0); // back to previous at same instant
            sink.gauge("x", t(4), 2.0);
            sink.add("y", t(1), 10.0);
            sink.add("y", t(1), -10.0); // first point coalesces to 0.0, kept
            sink.add("y", t(2), 4.0);
        };
        let mem = TraceSink::recording();
        apply(&mem);
        let buf = SharedBuf::default();
        let streamed = TraceSink::streaming(Box::new(buf.clone()));
        apply(&streamed);
        streamed.finish().expect("finish");
        let data = mem.snapshot();
        let mut streamed_points: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        for line in buf.text().lines() {
            let v: faaspipe_json::Json = faaspipe_json::from_str(line).expect("json");
            let name: String = faaspipe_json::field(&v, "name").expect("name");
            let t_ns: u64 = faaspipe_json::field(&v, "t_ns").expect("t_ns");
            let value: f64 = faaspipe_json::field(&v, "value").expect("value");
            streamed_points.entry(name).or_default().push((t_ns, value));
        }
        for series in &data.counters {
            let expect: Vec<(u64, f64)> = series
                .points
                .iter()
                .map(|&(pt, v)| (pt.as_nanos(), v))
                .collect();
            assert_eq!(
                streamed_points.get(&series.name),
                Some(&expect),
                "series {} diverged",
                series.name
            );
        }
        assert_eq!(streamed_points.len(), data.counters.len());
    }

    #[test]
    fn streaming_same_sequence_is_byte_identical() {
        let run = || {
            let buf = SharedBuf::default();
            let sink = TraceSink::streaming(Box::new(buf.clone()));
            let a = sink.span_start(Category::Run, "run", "driver", "driver", SpanId::NONE, t(0));
            let b = sink.span_start(Category::Invocation, "f", "faas", "fn-0", a, t(1));
            sink.attr(b, "bytes", 123u64);
            sink.gauge("pool", t(1), 1.0);
            sink.span_end(b, t(2));
            sink.gauge("pool", t(2), 0.0);
            sink.span_end(a, t(3));
            sink.finish().expect("finish");
            buf.text()
        };
        assert_eq!(run(), run());
    }
}
