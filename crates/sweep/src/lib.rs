//! # faaspipe-sweep — cross-simulation parallelism
//!
//! Everything that matters for reproducing the paper's tables is a *grid*
//! of independent simulations: E15/E16/E17 sweep W × backend × K, E19
//! validates the planner over a 52-point grid, E18 sweeps offered load,
//! and the calibrator runs a handful of probe sims. A single simulation
//! is strictly single-threaded by design (the DES event loop owns `Rc`
//! internals and is not `Send`), so the only parallelism axis left is
//! *across* simulations — and the grids are embarrassingly parallel.
//!
//! [`Sweep`] is a work-queue engine over a bounded pool of OS threads:
//!
//! * **Shared-nothing by construction.** A cell is an
//!   `FnOnce() -> R + Send` closure that constructs *and* runs its `Sim`
//!   entirely on the worker thread it lands on. Only the closure
//!   (configuration) goes in and only the `Send` result row comes out;
//!   no simulator state ever crosses a thread boundary.
//! * **Deterministic result ordering.** Results are returned in
//!   submission order regardless of completion order, so downstream
//!   printing, JSON archival, and golden comparisons are byte-identical
//!   at every job count. Simulated (virtual) time cannot observe host
//!   scheduling at all: each sim's clock advances only through its own
//!   event queue, seeded from its own config.
//! * **Bounded concurrency.** `run(jobs)` never has more than `jobs`
//!   cells in flight; `jobs == 1` executes the cells inline on the
//!   calling thread in submission order — the historical serial path,
//!   with no threads spawned.
//! * **Panic isolation.** A panicking cell is caught and reported as a
//!   [`CellFailure`] carrying its grid coordinates (label + index) while
//!   sibling cells keep running to completion.
//! * **Live progress.** Each completed cell logs
//!   `sweep: [done/total] label (ms)` to stderr; stdout stays clean for
//!   the experiment tables.
//!
//! The job count is resolved from (highest priority first) a `--jobs N`
//! CLI flag, the `FAASPIPE_JOBS` environment variable, and the host's
//! available cores — see [`jobs_from_args`].
//!
//! ```
//! let mut sweep = faaspipe_sweep::Sweep::new();
//! for w in [4usize, 8, 16] {
//!     sweep.push(format!("W={}", w), move || w * w);
//! }
//! assert_eq!(sweep.run_expect(2), vec![16, 64, 256]);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable consulted by [`default_jobs`] when no `--jobs`
/// flag is given.
pub const JOBS_ENV: &str = "FAASPIPE_JOBS";

/// One grid cell that could not produce a result because its body
/// panicked. Carries enough identity to name the failing configuration
/// without re-running the grid.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Submission index of the cell (position in the result vector).
    pub index: usize,
    /// The label the cell was pushed with — its grid coordinates.
    pub label: String,
    /// The panic payload, stringified.
    pub panic: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell #{} [{}] panicked: {}",
            self.index, self.label, self.panic
        )
    }
}

/// Per-cell outcome: the row, or the panic that replaced it.
pub type CellResult<R> = Result<R, CellFailure>;

/// Timing summary of one [`Sweep::run`] call, for throughput reporting
/// (cells/s rows in `BENCH_host.json`).
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Number of cells executed (including panicked ones).
    pub cells: usize,
    /// Worker threads the run was bounded to.
    pub jobs: usize,
    /// Host wall clock of the whole sweep.
    pub wall: Duration,
}

impl SweepStats {
    /// Completed cells per host second.
    pub fn cells_per_sec(&self) -> f64 {
        self.cells as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Results (in submission order) plus run statistics.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// One entry per pushed cell, in submission order.
    pub results: Vec<CellResult<R>>,
    /// Wall-clock / throughput summary.
    pub stats: SweepStats,
}

impl<R> SweepOutcome<R> {
    /// Unwraps every cell, panicking with an aggregate report if any
    /// cell failed. All cells have already run to completion when this
    /// is called — one poisoned configuration never cancels siblings.
    pub fn expect_all(self) -> Vec<R> {
        let mut rows = Vec::with_capacity(self.results.len());
        let mut failures: Vec<CellFailure> = Vec::new();
        for res in self.results {
            match res {
                Ok(row) => rows.push(row),
                Err(f) => failures.push(f),
            }
        }
        if !failures.is_empty() {
            let report: Vec<String> = failures.iter().map(|f| f.to_string()).collect();
            panic!(
                "{} of {} sweep cells failed:\n  {}",
                failures.len(),
                failures.len() + rows.len(),
                report.join("\n  ")
            );
        }
        rows
    }
}

struct Cell<R> {
    label: String,
    body: Box<dyn FnOnce() -> R + Send>,
}

/// A grid of independent simulations to execute across OS threads.
///
/// Push cells in the order their results should come back, then [`run`]
/// with a job bound. See the crate docs for the guarantees.
///
/// [`run`]: Sweep::run
pub struct Sweep<R> {
    cells: Vec<Cell<R>>,
}

impl<R> Default for Sweep<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> Sweep<R> {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep { cells: Vec::new() }
    }

    /// Adds a cell. `label` names the grid coordinates (e.g.
    /// `"W=32 coalesced K=4"`) and is what a panic report or progress
    /// line shows; `body` must construct and run its simulation entirely
    /// inside the closure and return only `Send` data.
    pub fn push<F>(&mut self, label: impl Into<String>, body: F)
    where
        F: FnOnce() -> R + Send + 'static,
    {
        self.cells.push(Cell {
            label: label.into(),
            body: Box::new(body),
        });
    }

    /// Number of cells pushed so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been pushed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl<R: Send> Sweep<R> {
    /// Executes every cell with at most `jobs` in flight and returns the
    /// results in submission order. `jobs` is clamped to `1..=len`;
    /// `jobs == 1` runs inline on the calling thread with no spawns.
    pub fn run(self, jobs: usize) -> SweepOutcome<R> {
        let total = self.cells.len();
        let jobs = jobs.max(1).min(total.max(1));
        let start = Instant::now();
        let progress = Progress::new(total);

        let mut slots: Vec<Option<CellResult<R>>> = (0..total).map(|_| None).collect();
        if jobs == 1 {
            for (index, cell) in self.cells.into_iter().enumerate() {
                slots[index] = Some(run_cell(index, cell, &progress));
            }
        } else {
            let queue: Mutex<VecDeque<(usize, Cell<R>)>> =
                Mutex::new(self.cells.into_iter().enumerate().collect());
            let results: Mutex<&mut Vec<Option<CellResult<R>>>> = Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for worker in 0..jobs {
                    let queue = &queue;
                    let results = &results;
                    let progress = &progress;
                    std::thread::Builder::new()
                        .name(format!("sweep-w{}", worker))
                        .spawn_scoped(scope, move || loop {
                            let Some((index, cell)) =
                                queue.lock().expect("sweep queue").pop_front()
                            else {
                                break;
                            };
                            let res = run_cell(index, cell, progress);
                            results.lock().expect("sweep results")[index] = Some(res);
                        })
                        .expect("spawn sweep worker");
                }
            });
        }

        let results: Vec<CellResult<R>> = slots
            .into_iter()
            .map(|slot| slot.expect("every sweep cell ran"))
            .collect();
        SweepOutcome {
            results,
            stats: SweepStats {
                cells: total,
                jobs,
                wall: start.elapsed(),
            },
        }
    }

    /// [`run`](Sweep::run), then [`expect_all`](SweepOutcome::expect_all):
    /// the rows in submission order, panicking with every failed cell's
    /// coordinates after all siblings have finished.
    pub fn run_expect(self, jobs: usize) -> Vec<R> {
        self.run(jobs).expect_all()
    }

    /// Like [`run_expect`](Sweep::run_expect) but also returns the run's
    /// [`SweepStats`] for throughput reporting.
    pub fn run_expect_stats(self, jobs: usize) -> (Vec<R>, SweepStats) {
        let outcome = self.run(jobs);
        let stats = outcome.stats.clone();
        (outcome.expect_all(), stats)
    }
}

fn run_cell<R>(index: usize, cell: Cell<R>, progress: &Progress) -> CellResult<R> {
    let label = cell.label;
    let body = cell.body;
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(body));
    let wall = start.elapsed();
    match outcome {
        Ok(row) => {
            progress.done(&label, wall, true);
            Ok(row)
        }
        Err(payload) => {
            progress.done(&label, wall, false);
            Err(CellFailure {
                index,
                label,
                panic: panic_message(payload.as_ref()),
            })
        }
    }
}

/// Stringifies a panic payload (the common `&str` / `String` cases, with
/// a fallback for exotic payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Completion counter + stderr reporter shared by the workers. `stdout`
/// is never touched: experiment tables print after the sweep, from the
/// ordered results, so they are byte-identical at every job count.
struct Progress {
    total: usize,
    done: AtomicUsize,
}

impl Progress {
    fn new(total: usize) -> Self {
        Progress {
            total,
            done: AtomicUsize::new(0),
        }
    }

    fn done(&self, label: &str, wall: Duration, ok: bool) {
        let n = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let width = self.total.to_string().len();
        eprintln!(
            "sweep: [{:>w$}/{}] {} {} ({} ms)",
            n,
            self.total,
            if ok { "done" } else { "PANIC" },
            label,
            wall.as_millis(),
            w = width,
        );
    }
}

/// Validates a jobs value: a positive integer.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid jobs value '{}' (expected an integer >= 1)",
            value
        )),
    }
}

/// The job bound used when no `--jobs` flag is given: `FAASPIPE_JOBS` if
/// set and valid (a warning is printed otherwise), else the host's
/// available cores, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        match parse_jobs(&v) {
            Ok(n) => return n,
            Err(e) => eprintln!("warning: {}: {}; falling back to core count", JOBS_ENV, e),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the job bound for an experiment binary: `--jobs N` /
/// `--jobs=N` from `args` if present (an invalid or missing value is an
/// error), else [`default_jobs`].
pub fn jobs_from_args(args: &[String]) -> Result<usize, String> {
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix("--jobs=") {
            return parse_jobs(v);
        }
        if arg == "--jobs" {
            return match args.get(i + 1) {
                Some(v) => parse_jobs(v),
                None => Err("--jobs requires a value".to_string()),
            };
        }
    }
    Ok(default_jobs())
}

/// [`jobs_from_args`] for binaries without structured error handling:
/// prints the error and exits with status 2.
pub fn jobs_from_args_or_exit(args: &[String]) -> usize {
    jobs_from_args(args).unwrap_or_else(|e| {
        eprintln!("error: {}", e);
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn results_come_back_in_submission_order() {
        // Earlier cells sleep longer, so completion order is the reverse
        // of submission order — the results must not be.
        let mut sweep = Sweep::new();
        for i in 0..6usize {
            sweep.push(format!("cell{}", i), move || {
                std::thread::sleep(Duration::from_millis(5 * (6 - i) as u64));
                i * 10
            });
        }
        let rows = sweep.run_expect(6);
        assert_eq!(rows, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn serial_runs_inline_without_threads() {
        let main_thread = std::thread::current().id();
        let mut sweep = Sweep::new();
        for i in 0..3usize {
            sweep.push(format!("c{}", i), move || (i, std::thread::current().id()));
        }
        for (i, (idx, tid)) in sweep.run_expect(1).into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(tid, main_thread, "jobs=1 must run on the caller's thread");
        }
    }

    #[test]
    fn concurrency_is_bounded_by_jobs() {
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut sweep = Sweep::new();
        for i in 0..12usize {
            let in_flight = Arc::clone(&in_flight);
            let peak = Arc::clone(&peak);
            sweep.push(format!("c{}", i), move || {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(3));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                i
            });
        }
        let rows = sweep.run_expect(3);
        assert_eq!(rows, (0..12).collect::<Vec<_>>());
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "at most `jobs` cells may be in flight, saw {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn panicking_cell_reports_coordinates_and_spares_siblings() {
        let mut sweep = Sweep::new();
        for i in 0..5usize {
            sweep.push(format!("W={} k={}", 4 << i, i), move || {
                if i == 2 {
                    panic!("poisoned cell");
                }
                i
            });
        }
        let outcome = sweep.run(2);
        assert_eq!(outcome.results.len(), 5);
        for (i, res) in outcome.results.iter().enumerate() {
            if i == 2 {
                let failure = res.as_ref().expect_err("cell 2 must fail");
                assert_eq!(failure.index, 2);
                assert_eq!(failure.label, "W=16 k=2");
                assert!(failure.panic.contains("poisoned cell"));
            } else {
                assert_eq!(*res.as_ref().expect("sibling survives"), i);
            }
        }
    }

    #[test]
    fn expect_all_panics_with_every_failed_cell() {
        let mut sweep = Sweep::new();
        sweep.push("good", || 1usize);
        sweep.push("bad-cell", || panic!("boom"));
        let err = catch_unwind(AssertUnwindSafe(|| sweep.run_expect(2)))
            .expect_err("must propagate failure");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("bad-cell"), "message was: {}", msg);
        assert!(msg.contains("boom"), "message was: {}", msg);
    }

    #[test]
    fn jobs_clamped_and_empty_sweep_ok() {
        let sweep: Sweep<usize> = Sweep::new();
        let outcome = sweep.run(8);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.jobs, 1);

        let mut sweep = Sweep::new();
        sweep.push("only", || 7usize);
        let outcome = sweep.run(64);
        assert_eq!(outcome.stats.jobs, 1, "jobs clamps to the cell count");
        assert_eq!(outcome.expect_all(), vec![7]);
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("-1").is_err());
        assert!(parse_jobs("lots").is_err());

        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(jobs_from_args(&args(&["--quick", "--jobs", "3"])), Ok(3));
        assert_eq!(jobs_from_args(&args(&["--jobs=5"])), Ok(5));
        assert!(jobs_from_args(&args(&["--jobs"])).is_err());
        assert!(jobs_from_args(&args(&["--jobs", "zero"])).is_err());
        // No flag: falls back to env/cores, which is at least 1.
        assert!(jobs_from_args(&args(&["--quick"])).expect("default") >= 1);
    }

    #[test]
    fn stats_reflect_the_run() {
        let mut sweep = Sweep::new();
        for i in 0..4usize {
            sweep.push(format!("c{}", i), move || i);
        }
        let (rows, stats) = sweep.run_expect_stats(2);
        assert_eq!(rows.len(), 4);
        assert_eq!(stats.cells, 4);
        assert_eq!(stats.jobs, 2);
        assert!(stats.cells_per_sec() > 0.0);
    }
}
