//! Per-tenant admission control.
//!
//! Admission is what separates "the cluster is saturated" from "this
//! tenant saturates the cluster for everyone": a concurrency cap bounds
//! how many of a tenant's runs execute at once, a token bucket bounds how
//! fast new runs may start, and a per-tenant store-ops budget (installed
//! via
//! [`ObjectStore::set_scope_ops_limit`](faaspipe_store::ObjectStore::set_scope_ops_limit))
//! bounds how hard
//! the tenant's running functions can hammer the shared store. Arrivals
//! are open-loop, so admission waits count toward the tenant's own
//! sojourn — throttling a noisy tenant hurts the noisy tenant, not its
//! victims.

use faaspipe_des::{Ctx, LimiterId, SemId, Sim};

/// Limits applied to one tenant's runs. The default is unlimited: every
/// arrival is admitted immediately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionPolicy {
    /// At most this many of the tenant's runs execute concurrently;
    /// excess arrivals queue (FIFO).
    pub max_concurrent_runs: Option<u64>,
    /// Token bucket `(rate_per_sec, burst)` on run starts.
    pub run_rate: Option<(f64, f64)>,
    /// Token bucket `(ops_per_sec, burst)` on the tenant's object-store
    /// requests, carved out of the shared store's global budget.
    pub store_ops: Option<(f64, f64)>,
}

impl AdmissionPolicy {
    /// No limits (the default).
    pub fn unlimited() -> AdmissionPolicy {
        AdmissionPolicy::default()
    }

    /// Caps concurrent runs.
    pub fn with_max_concurrent(mut self, runs: u64) -> AdmissionPolicy {
        self.max_concurrent_runs = Some(runs);
        self
    }

    /// Rate-limits run starts.
    pub fn with_run_rate(mut self, rate_per_sec: f64, burst: f64) -> AdmissionPolicy {
        self.run_rate = Some((rate_per_sec, burst));
        self
    }

    /// Rate-limits the tenant's store requests.
    pub fn with_store_ops(mut self, ops_per_sec: f64, burst: f64) -> AdmissionPolicy {
        self.store_ops = Some((ops_per_sec, burst));
        self
    }

    /// Whether any limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_concurrent_runs.is_none() && self.run_rate.is_none() && self.store_ops.is_none()
    }
}

/// The DES-side realization of one tenant's [`AdmissionPolicy`]: created
/// before the simulation starts, acquired by each run process on
/// arrival. (The store-ops budget is installed directly on the store,
/// not here — it throttles requests, not run starts.)
#[derive(Debug, Clone, Copy)]
pub struct TenantGate {
    sem: Option<SemId>,
    rate: Option<LimiterId>,
}

impl TenantGate {
    /// Creates the semaphore/limiter backing `policy`.
    pub fn install(sim: &mut Sim, policy: &AdmissionPolicy) -> TenantGate {
        TenantGate {
            sem: policy.max_concurrent_runs.map(|n| sim.create_semaphore(n)),
            rate: policy
                .run_rate
                .map(|(rate, burst)| sim.create_limiter(rate, burst)),
        }
    }

    /// Blocks until the run may start: first a concurrency slot, then a
    /// rate token (so a queued run does not burn tokens while waiting).
    pub fn admit(&self, ctx: &Ctx) {
        faaspipe_des::run_blocking(self.admit_async(ctx));
    }

    /// Async form of [`TenantGate::admit`] for stackless processes.
    pub async fn admit_async(&self, ctx: &Ctx) {
        if let Some(sem) = self.sem {
            ctx.sem_acquire_async(sem, 1).await;
        }
        if let Some(rate) = self.rate {
            ctx.limiter_acquire_async(rate, 1.0).await;
        }
    }

    /// Returns the concurrency slot when the run finishes.
    pub fn release(&self, ctx: &Ctx) {
        faaspipe_des::run_blocking(self.release_async(ctx));
    }

    /// Async form of [`TenantGate::release`] for stackless processes.
    pub async fn release_async(&self, ctx: &Ctx) {
        if let Some(sem) = self.sem {
            ctx.sem_release_async(sem, 1).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::{SimDuration, SimTime};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn concurrency_cap_serializes_runs() {
        let mut sim = Sim::new();
        let gate = TenantGate::install(
            &mut sim,
            &AdmissionPolicy::unlimited().with_max_concurrent(1),
        );
        let starts: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..3 {
            let starts = Arc::clone(&starts);
            sim.spawn("run", move |ctx| {
                gate.admit(ctx);
                starts.lock().push(ctx.now());
                ctx.sleep(SimDuration::from_secs(10));
                gate.release(ctx);
            });
        }
        sim.run().expect("sim ok");
        let starts = starts.lock();
        assert_eq!(
            *starts,
            vec![
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_secs(10),
                SimTime::ZERO + SimDuration::from_secs(20),
            ]
        );
    }

    #[test]
    fn run_rate_spaces_out_starts() {
        let mut sim = Sim::new();
        // 1 run per 100 s, burst 1: starts at 0, 100, 200.
        let gate = TenantGate::install(
            &mut sim,
            &AdmissionPolicy::unlimited().with_run_rate(0.01, 1.0),
        );
        let starts: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..3 {
            let starts = Arc::clone(&starts);
            sim.spawn("run", move |ctx| {
                gate.admit(ctx);
                starts.lock().push(ctx.now());
            });
        }
        sim.run().expect("sim ok");
        let starts = starts.lock();
        assert_eq!(starts.len(), 3);
        assert_eq!(starts[0], SimTime::ZERO);
        // Token refills carry a few ns of float residue.
        let third = starts[2]
            .saturating_duration_since(SimTime::ZERO)
            .as_secs_f64();
        assert!((third - 200.0).abs() < 1e-3, "third start at {third} s");
    }

    #[test]
    fn unlimited_gate_is_a_no_op() {
        let mut sim = Sim::new();
        let gate = TenantGate::install(&mut sim, &AdmissionPolicy::unlimited());
        assert!(AdmissionPolicy::unlimited().is_unlimited());
        sim.spawn("run", move |ctx| {
            gate.admit(ctx);
            gate.release(ctx);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        sim.run().expect("sim ok");
    }
}
