//! # faaspipe-cluster — a multi-tenant pipeline service layer
//!
//! The paper measures one METHCOMP pipeline at a time against a cloud it
//! has to itself. Real FaaS pipelines run as a *service*: many tenants
//! submit runs against **shared** infrastructure — one object store with
//! a global operations/s budget and aggregate bandwidth, one
//! warm-container pool, one VM fleet — and contend for all of it. This
//! crate turns the single-run executor into that service.
//!
//! A [`Cluster`] run:
//!
//! * installs **one** [`ObjectStore`](faaspipe_store::ObjectStore), **one**
//!   [`FunctionPlatform`](faaspipe_faas::FunctionPlatform) (with the
//!   warm pool partitioned per tenant) and **one** shared
//!   [`VmFleet`](faaspipe_vm::VmFleet);
//! * drives an **open-loop** arrival process ([`ArrivalProcess`]): runs
//!   arrive on a schedule that does not slow down when the cluster is
//!   saturated, so queueing shows up as sojourn time, exactly like a
//!   production ingest queue;
//! * subjects each tenant to optional **admission control**
//!   ([`AdmissionPolicy`]): a concurrency cap, a token bucket on run
//!   starts, and a per-tenant slice of the store's ops/s budget;
//! * executes every admitted run as a concurrent DES process tree via
//!   [`Executor::spawn_dag_in`](faaspipe_core::Executor::spawn_dag_in),
//!   with all stage tags prefixed `tenant/rN/...` so store metrics,
//!   function records and VM records attribute back to their tenant;
//! * reports per-tenant sojourn percentiles (p50/p99/p999), the Jain
//!   fairness index across tenants, per-tenant bills, and cluster
//!   offered-load vs goodput ([`ClusterReport`]).
//!
//! Naming convention: a run is `{tenant}/r{seq}` (global arrival index),
//! its stages are `{tenant}/r{seq}/sort` and `{tenant}/r{seq}/encode`.
//! Every store tag, invocation record and span label inherits that
//! prefix, which is what
//! [`StoreMetrics::total_for_scope`](faaspipe_store::StoreMetrics::total_for_scope)
//! and the per-tenant rows of [`CostReport`](faaspipe_core::CostReport)
//! key on.
//!
//! A single-tenant cluster with one arrival at `t = 0` and no admission
//! limits reproduces the standalone executor's Table-1 latency
//! **exactly** — the service layer adds naming and accounting, not
//! timing (`tests/` pin this).

pub mod admission;
pub mod arrival;
pub mod cluster;
pub mod metrics;

pub use admission::AdmissionPolicy;
pub use arrival::{Arrival, ArrivalProcess};
pub use cluster::{
    run_cluster, Cluster, ClusterConfig, ClusterError, ClusterReport, RunOutcome, TenantReport,
    TenantSpec, TraceMode,
};
pub use metrics::{jain_fairness, percentile};
