//! Open-loop arrival schedules.
//!
//! Arrivals are generated as a **pure function of the cluster seed**
//! before the simulation starts, not drawn from the per-process DES rngs:
//! two cluster runs with the same seed see byte-identical schedules no
//! matter how the process interleaving inside the runs differs. That is
//! what makes the same-seed trace-determinism tests possible.

use faaspipe_des::{SimDuration, SimTime};

/// One run submission: a tenant (index into the cluster's tenant list)
/// and the virtual time it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// When the run is submitted.
    pub at: SimTime,
    /// Which tenant submitted it (index into `ClusterConfig::tenants`).
    pub tenant: usize,
}

/// How run submissions are generated.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Seeded Poisson process: exponential inter-arrival times at
    /// `rate_per_sec` aggregate, each arrival assigned to a tenant by
    /// weighted draw, until `horizon`.
    Poisson {
        /// Aggregate submission rate across all tenants.
        rate_per_sec: f64,
        /// Submissions stop at this virtual time (runs may finish later).
        horizon: SimDuration,
    },
    /// An explicit schedule, e.g. parsed from a trace file.
    Trace(Vec<Arrival>),
}

/// Golden-ratio increment used by splitmix64.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
/// Decouples the arrival stream from the per-run dataset seeds, which
/// are derived from the same base seed.
const ARRIVAL_SALT: u64 = 0xA5A5_5A5A_C3C3_3C3C;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` with 53 bits of entropy.
fn uniform01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl ArrivalProcess {
    /// Materializes the schedule. `weights` holds one relative arrival
    /// weight per tenant; for [`ArrivalProcess::Trace`] it is only used
    /// to bounds-check tenant indices.
    ///
    /// # Errors
    /// A message when the configuration is unusable (non-positive rate
    /// or weights, out-of-range tenant index, unsorted trace).
    pub fn generate(&self, seed: u64, weights: &[f64]) -> Result<Vec<Arrival>, String> {
        if weights.is_empty() {
            return Err("at least one tenant is required".to_string());
        }
        match self {
            ArrivalProcess::Poisson {
                rate_per_sec,
                horizon,
            } => {
                if !rate_per_sec.is_finite() || *rate_per_sec <= 0.0 {
                    return Err(format!("arrival rate must be positive, got {rate_per_sec}"));
                }
                if weights.iter().any(|w| w.is_nan() || *w < 0.0)
                    || weights.iter().sum::<f64>() <= 0.0
                {
                    return Err("tenant weights must be non-negative with a positive sum".into());
                }
                let total: f64 = weights.iter().sum();
                let mut state = seed ^ ARRIVAL_SALT;
                let mut out = Vec::new();
                let mut t = 0.0_f64;
                let horizon_s = horizon.as_secs_f64();
                loop {
                    // Exponential inter-arrival; 1 - u avoids ln(0).
                    let u = uniform01(&mut state);
                    t += -(1.0 - u).ln() / rate_per_sec;
                    if t >= horizon_s {
                        break;
                    }
                    let mut pick = uniform01(&mut state) * total;
                    let mut tenant = weights.len() - 1;
                    for (i, w) in weights.iter().enumerate() {
                        if pick < *w {
                            tenant = i;
                            break;
                        }
                        pick -= w;
                    }
                    out.push(Arrival {
                        at: SimTime::from_nanos((t * 1e9) as u64),
                        tenant,
                    });
                }
                Ok(out)
            }
            ArrivalProcess::Trace(rows) => {
                for (i, a) in rows.iter().enumerate() {
                    if a.tenant >= weights.len() {
                        return Err(format!(
                            "trace row {} names tenant {} but only {} tenants are configured",
                            i,
                            a.tenant,
                            weights.len()
                        ));
                    }
                    if i > 0 && a.at < rows[i - 1].at {
                        return Err(format!("trace rows must be sorted by time (row {i})"));
                    }
                }
                Ok(rows.clone())
            }
        }
    }

    /// Parses a trace file: one `t_seconds tenant_index` row per line
    /// (whitespace- or comma-separated), `#` comments and blank lines
    /// ignored.
    ///
    /// # Errors
    /// A message naming the first malformed line.
    pub fn from_trace_str(text: &str) -> Result<ArrivalProcess, String> {
        let mut rows = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(|c: char| c.is_whitespace() || c == ',');
            let t = parts
                .next()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| format!("line {}: bad time", lineno + 1))?;
            let tenant = parts
                .find(|s| !s.is_empty())
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| format!("line {}: bad tenant index", lineno + 1))?;
            if t.is_nan() || t < 0.0 {
                return Err(format!("line {}: negative time", lineno + 1));
            }
            rows.push(Arrival {
                at: SimTime::from_nanos((t * 1e9) as u64),
                tenant,
            });
        }
        rows.sort_by_key(|a| a.at);
        Ok(ArrivalProcess::Trace(rows))
    }
}

/// The dataset seed for the run with global arrival index `seq`:
/// `seq == 0` keeps the base seed, so a single-arrival cluster run
/// reproduces the standalone pipeline's dataset bit-for-bit.
pub fn run_seed(base: u64, seq: usize) -> u64 {
    base ^ (seq as u64).wrapping_mul(SPLITMIX_GAMMA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_a_pure_function_of_the_seed() {
        let p = ArrivalProcess::Poisson {
            rate_per_sec: 0.5,
            horizon: SimDuration::from_secs(600),
        };
        let a = p.generate(42, &[1.0, 2.0]).expect("a");
        let b = p.generate(42, &[1.0, 2.0]).expect("b");
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = p.generate(43, &[1.0, 2.0]).expect("c");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_rate_and_mix_are_roughly_respected() {
        let p = ArrivalProcess::Poisson {
            rate_per_sec: 2.0,
            horizon: SimDuration::from_secs(10_000),
        };
        let arrivals = p.generate(7, &[3.0, 1.0]).expect("gen");
        let n = arrivals.len() as f64;
        // 2/s over 10 000 s: expect ~20 000 ± a few hundred.
        assert!((n - 20_000.0).abs() < 1_000.0, "got {n}");
        let t0 = arrivals.iter().filter(|a| a.tenant == 0).count() as f64;
        assert!((t0 / n - 0.75).abs() < 0.02, "tenant-0 share {}", t0 / n);
        assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn trace_parsing_and_validation() {
        let p = ArrivalProcess::from_trace_str("# demo\n0.5 1\n1.5, 0\n\n2.0\t1\n").expect("parse");
        let rows = p.generate(0, &[1.0, 1.0]).expect("gen");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].tenant, 1);
        assert_eq!(rows[1].at, SimTime::from_nanos(1_500_000_000));

        assert!(ArrivalProcess::from_trace_str("oops 1").is_err());
        assert!(p.generate(0, &[1.0]).is_err(), "tenant 1 out of range");
    }

    #[test]
    fn run_seed_zero_is_the_base_seed() {
        assert_eq!(run_seed(0xE0C0_FF88, 0), 0xE0C0_FF88);
        assert_ne!(run_seed(0xE0C0_FF88, 1), 0xE0C0_FF88);
        assert_ne!(run_seed(0xE0C0_FF88, 1), run_seed(0xE0C0_FF88, 2));
    }
}
