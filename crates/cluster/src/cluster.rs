//! The cluster itself: shared infrastructure, the arrival driver, the
//! per-run process trees, and the report aggregation.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe_core::pricing::StageCost;
use faaspipe_core::{
    CostReport, Dag, EncodeCodec, Executor, PipelineMode, PriceBook, Services, StageKind, Tracker,
    WorkerChoice,
};
use faaspipe_des::{Ctx, Money, Sim, SimDuration, SimError, SimReport, SimTime};
use faaspipe_exchange::ExchangeKind;
use faaspipe_faas::{FaasConfig, FunctionPlatform};
use faaspipe_methcomp::synth::Synthesizer;
use faaspipe_methcomp::MethRecord;
use faaspipe_shuffle::{SortConfig, SortRecord, WorkModel};
use faaspipe_store::{ObjectStore, StoreConfig, TagMetrics};
use faaspipe_trace::{Category, SpanId, TraceData, TraceSink};
use faaspipe_vm::{VmFleet, VmProfile};

use crate::admission::{AdmissionPolicy, TenantGate};
use crate::arrival::{run_seed, Arrival, ArrivalProcess};
use crate::metrics::{jain_fairness, percentile};

/// One tenant of the cluster: a pipeline shape plus an arrival weight
/// and an admission policy. Names become tag/span prefixes, so they
/// must not contain `/`.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, e.g. `"t0"`. Used as the attribution scope.
    pub name: String,
    /// Relative share of Poisson arrivals routed to this tenant.
    pub weight: f64,
    /// Pipeline incarnation for this tenant's runs.
    pub mode: PipelineMode,
    /// Input partitions / encode workers per run.
    pub parallelism: usize,
    /// Worker policy for the serverless shuffle.
    pub workers: WorkerChoice,
    /// Intermediate data-exchange backend.
    pub exchange: ExchangeKind,
    /// Per-function I/O window.
    pub io_concurrency: usize,
    /// Encode-stage codec.
    pub encode_codec: EncodeCodec,
    /// VM type for `PipelineMode::VmHybrid` runs.
    pub vm_profile: VmProfile,
    /// Limits on this tenant's runs (default: unlimited).
    pub admission: AdmissionPolicy,
}

impl TenantSpec {
    /// A tenant with the paper's Table-1 pipeline shape (serverless
    /// scatter sort, parallelism 8) and no admission limits.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: 1.0,
            mode: PipelineMode::PureServerless,
            parallelism: 8,
            workers: WorkerChoice::Fixed(8),
            exchange: ExchangeKind::Scatter,
            io_concurrency: SortConfig::default().io_concurrency,
            encode_codec: EncodeCodec::Methcomp,
            vm_profile: VmProfile::bx2_8x32(),
            admission: AdmissionPolicy::unlimited(),
        }
    }
}

/// Where the cluster's execution trace goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing (disabled sinks stay out of the hot path).
    Off,
    /// Record into memory; the full [`TraceData`] lands in
    /// [`ClusterReport::trace`].
    InMemory,
    /// Stream JSONL span/counter lines to a file as the simulation
    /// runs; memory use stays flat no matter how many runs execute.
    Stream(PathBuf),
}

/// Configuration of one cluster experiment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The tenants (at least one).
    pub tenants: Vec<TenantSpec>,
    /// The open-loop submission schedule.
    pub arrivals: ArrivalProcess,
    /// Physical records per run's dataset (wire/compute scaled up to
    /// `modeled_bytes`, exactly like the standalone pipeline).
    pub physical_records: usize,
    /// Modelled dataset size of one run.
    pub modeled_bytes: u64,
    /// Base seed: run `r{seq}` synthesizes its dataset from
    /// [`run_seed`]`(seed, seq)`; the arrival schedule derives from the
    /// same seed (salted).
    pub seed: u64,
    /// The **shared** object store (global ops/s + aggregate bandwidth).
    pub store: StoreConfig,
    /// The **shared** functions platform; the warm pool is automatically
    /// partitioned per tenant.
    pub faas: FaasConfig,
    /// CPU-work calibration (size scale set automatically).
    pub work: WorkModel,
    /// Price book for the per-tenant bills.
    pub pricing: PriceBook,
    /// Check every completed run's outputs (sorted order + archives
    /// present). Adds host-side work per run; off by default.
    pub verify: bool,
    /// Trace destination.
    pub trace: TraceMode,
}

impl ClusterConfig {
    /// A cluster of Table-1-shaped tenants with a physically small
    /// (20 000-record) dataset per run, modelling the paper's 3.5 GB.
    pub fn new(tenants: Vec<TenantSpec>, arrivals: ArrivalProcess) -> ClusterConfig {
        ClusterConfig {
            tenants,
            arrivals,
            physical_records: 20_000,
            modeled_bytes: 3_500_000_000,
            seed: 0xE0C0_FF88,
            store: StoreConfig::default(),
            faas: FaasConfig::default(),
            work: WorkModel::default(),
            pricing: PriceBook::default(),
            verify: false,
            trace: TraceMode::Off,
        }
    }

    /// The wire/compute scale factor of one run (see
    /// [`PipelineConfig::size_scale`](faaspipe_core::PipelineConfig::size_scale)).
    pub fn size_scale(&self) -> f64 {
        let physical = (self.physical_records * MethRecord::WIRE_SIZE) as f64;
        self.modeled_bytes as f64 / physical
    }
}

/// Errors from a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// The configuration is unusable.
    BadConfig {
        /// Why.
        reason: String,
    },
    /// The simulation failed (deadlock or unobserved panic).
    Sim(SimError),
    /// The streaming trace file could not be opened or flushed.
    Trace(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::BadConfig { reason } => write!(f, "bad config: {}", reason),
            ClusterError::Sim(e) => write!(f, "simulation failed: {}", e),
            ClusterError::Trace(e) => write!(f, "trace stream failed: {}", e),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Sim(e)
    }
}

/// What happened to one submitted run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Owning tenant.
    pub tenant: String,
    /// Global arrival index (names the run `{tenant}/r{seq}`).
    pub seq: usize,
    /// Submission time.
    pub arrived: SimTime,
    /// When admission control let the run start.
    pub admitted: SimTime,
    /// First stage start.
    pub started: SimTime,
    /// Last stage end (or when the failure surfaced).
    pub finished: SimTime,
    /// Whether every stage succeeded (and, with `verify`, checked out).
    pub ok: bool,
    /// Failure message when `!ok`.
    pub error: Option<String>,
}

impl RunOutcome {
    /// Submission to completion — the open-loop SLO metric (includes
    /// admission queueing).
    pub fn sojourn(&self) -> SimDuration {
        self.finished.saturating_duration_since(self.arrived)
    }

    /// Time spent queued in admission control.
    pub fn queue_wait(&self) -> SimDuration {
        self.admitted.saturating_duration_since(self.arrived)
    }

    /// First stage start to last stage end — directly comparable to the
    /// standalone pipeline's Table-1 latency.
    pub fn exec_latency(&self) -> SimDuration {
        self.finished.saturating_duration_since(self.started)
    }
}

/// Per-tenant SLO summary (sojourn statistics are in seconds).
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Runs submitted.
    pub submitted: usize,
    /// Runs that completed successfully.
    pub completed: usize,
    /// Runs that failed.
    pub failed: usize,
    /// Median sojourn of completed runs, seconds.
    pub p50: f64,
    /// 99th-percentile sojourn, seconds.
    pub p99: f64,
    /// 99.9th-percentile sojourn, seconds.
    pub p999: f64,
    /// Mean sojourn, seconds.
    pub mean: f64,
    /// Mean admission queue wait, seconds.
    pub mean_queue: f64,
    /// The tenant's bill (functions + store requests + VM time).
    pub bill: Money,
    /// The tenant's object-store traffic.
    pub store: TagMetrics,
}

/// Everything a cluster run produces.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-tenant summaries, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Every run, sorted by arrival.
    pub runs: Vec<RunOutcome>,
    /// Total runs submitted.
    pub submitted: usize,
    /// Total runs completed.
    pub completed: usize,
    /// Total runs failed.
    pub failed: usize,
    /// Virtual time from start to the last completion.
    pub makespan: SimDuration,
    /// Submissions per second over the submission window.
    pub offered_rate: f64,
    /// Completions per second over the makespan.
    pub goodput_rate: f64,
    /// Jain fairness index over per-tenant mean sojourns (1.0 = all
    /// tenants see identical service; compares like-shaped tenants).
    pub fairness: f64,
    /// Itemized cost; `by_stage` keys are tenant names.
    pub cost: CostReport,
    /// The trace (empty unless [`TraceMode::InMemory`]).
    pub trace: TraceData,
    /// The simulator's execution report.
    pub sim: SimReport,
}

impl ClusterReport {
    /// The report row for `tenant`, if it exists.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }

    /// Renders the per-tenant SLO table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster: {} submitted, {} completed, {} failed | makespan {:.1} s | \
             offered {:.3}/s goodput {:.3}/s | fairness {:.3}\n",
            self.submitted,
            self.completed,
            self.failed,
            self.makespan.as_secs_f64(),
            self.offered_rate,
            self.goodput_rate,
            self.fairness,
        ));
        out.push_str(
            "tenant       runs   ok fail   p50 s   p99 s  p999 s  mean s queue s        bill\n",
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "{:<12} {:>4} {:>4} {:>4} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>11}\n",
                t.tenant,
                t.submitted,
                t.completed,
                t.failed,
                t.p50,
                t.p99,
                t.p999,
                t.mean,
                t.mean_queue,
                t.bill.to_string(),
            ));
        }
        out
    }
}

/// A configured cluster, ready to run.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: ClusterConfig,
}

impl Cluster {
    /// Wraps a configuration.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        Cluster { cfg }
    }

    /// Runs the cluster to completion. See [`run_cluster`].
    ///
    /// # Errors
    /// [`ClusterError`] on invalid configuration, simulation failure, or
    /// trace-stream I/O errors.
    pub fn run(&self) -> Result<ClusterReport, ClusterError> {
        run_cluster(&self.cfg)
    }
}

/// State shared by every run process.
struct Shared {
    store: Arc<ObjectStore>,
    faas: Arc<FunctionPlatform>,
    fleet: VmFleet,
    work: WorkModel,
    sink: TraceSink,
    tracing: bool,
    physical_records: usize,
    seed: u64,
    verify: bool,
    outcomes: Arc<Mutex<Vec<RunOutcome>>>,
}

/// Runs a multi-tenant cluster simulation to completion.
///
/// # Errors
/// [`ClusterError::BadConfig`] for unusable configurations,
/// [`ClusterError::Sim`] when the simulation deadlocks or panics,
/// [`ClusterError::Trace`] when the streaming trace file fails.
pub fn run_cluster(cfg: &ClusterConfig) -> Result<ClusterReport, ClusterError> {
    validate(cfg)?;
    let weights: Vec<f64> = cfg.tenants.iter().map(|t| t.weight).collect();
    let arrivals = cfg
        .arrivals
        .generate(cfg.seed, &weights)
        .map_err(|reason| ClusterError::BadConfig { reason })?;

    let scale = cfg.size_scale();
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, cfg.store.clone().with_size_scale(scale));
    let faas = FunctionPlatform::install(&mut sim, cfg.faas.clone().with_tenant_scoped_pool(true));
    let fleet = VmFleet::new();

    let (sink, tracing) = match &cfg.trace {
        TraceMode::Off => (TraceSink::disabled(), false),
        TraceMode::InMemory => (TraceSink::recording(), true),
        TraceMode::Stream(path) => (
            TraceSink::streaming_file(path).map_err(|e| ClusterError::Trace(e.to_string()))?,
            true,
        ),
    };
    if tracing {
        store.set_trace_sink(sink.clone());
        faas.set_trace_sink(sink.clone());
        fleet.set_trace_sink(sink.clone());
    }

    let mut gates = Vec::with_capacity(cfg.tenants.len());
    for spec in &cfg.tenants {
        gates.push(TenantGate::install(&mut sim, &spec.admission));
        if let Some((ops, burst)) = spec.admission.store_ops {
            store.set_scope_ops_limit(&mut sim, spec.name.clone(), ops, burst);
        }
    }

    let outcomes: Arc<Mutex<Vec<RunOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let shared = Arc::new(Shared {
        store: store.clone(),
        faas: faas.clone(),
        fleet: fleet.clone(),
        work: cfg.work.clone().with_size_scale(scale),
        sink: sink.clone(),
        tracing,
        physical_records: cfg.physical_records,
        seed: cfg.seed,
        verify: cfg.verify,
        outcomes: Arc::clone(&outcomes),
    });

    // The arrival driver: sleeps to each submission instant, spawns the
    // run's process tree, and finally joins every run so the simulation
    // does not end before the queue drains.
    {
        let shared = Arc::clone(&shared);
        let specs: Vec<TenantSpec> = cfg.tenants.clone();
        let arrivals = arrivals.clone();
        sim.spawn_task("cluster:arrivals", move |ctx: Ctx| async move {
            let mut runs = Vec::with_capacity(arrivals.len());
            for (seq, a) in arrivals.iter().enumerate() {
                let wait = a.at.saturating_duration_since(ctx.now());
                if wait > SimDuration::ZERO {
                    ctx.sleep_async(wait).await;
                }
                let shared = Arc::clone(&shared);
                let spec = specs[a.tenant].clone();
                let gate = gates[a.tenant];
                let name = format!("{}/r{}", spec.name, seq);
                runs.push(
                    ctx.spawn_task(name, move |mut ctx: Ctx| async move {
                        execute_run(&mut ctx, &shared, &spec, gate, seq).await;
                    })
                    .await,
                );
            }
            for pid in runs {
                // Run-level failures are captured in the outcome list;
                // a panicked run process must not kill the driver.
                let _ = ctx.join_async(pid).await;
            }
        });
    }

    drop(shared);
    let report = sim.run()?;
    sink.finish()
        .map_err(|e| ClusterError::Trace(e.to_string()))?;

    let mut runs = outcomes.lock().clone();
    runs.sort_by_key(|r| (r.arrived, r.seq));

    Ok(aggregate(
        cfg, &arrivals, runs, &store, &faas, &fleet, report, sink,
    ))
}

fn validate(cfg: &ClusterConfig) -> Result<(), ClusterError> {
    let bad = |reason: String| Err(ClusterError::BadConfig { reason });
    if cfg.tenants.is_empty() {
        return bad("at least one tenant is required".into());
    }
    if cfg.physical_records == 0 {
        return bad("physical_records must be positive".into());
    }
    for spec in &cfg.tenants {
        if spec.name.is_empty() || spec.name.contains('/') {
            return bad(format!(
                "tenant name {:?} must be non-empty and must not contain '/'",
                spec.name
            ));
        }
        if spec.parallelism == 0 {
            return bad(format!(
                "tenant {}: parallelism must be positive",
                spec.name
            ));
        }
    }
    let mut names: Vec<&str> = cfg.tenants.iter().map(|t| t.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != cfg.tenants.len() {
        return bad("tenant names must be unique".into());
    }
    Ok(())
}

/// The body of one run's root process: admission, input staging, the
/// two-stage DAG via [`Executor::spawn_dag_in`], and outcome recording.
async fn execute_run(
    ctx: &mut Ctx,
    shared: &Shared,
    spec: &TenantSpec,
    gate: TenantGate,
    seq: usize,
) {
    let run_name = format!("{}/r{}", spec.name, seq);
    let arrived = ctx.now();
    let span = if shared.tracing {
        let span = shared.sink.span_start(
            Category::Run,
            run_name.clone(),
            "cluster",
            &spec.name,
            SpanId::NONE,
            arrived,
        );
        shared.sink.attr(span, "tenant", spec.name.clone());
        shared.sink.attr(span, "seq", seq as u64);
        span
    } else {
        SpanId::NONE
    };

    gate.admit_async(ctx).await;
    let admitted = ctx.now();
    if shared.tracing {
        shared.sink.attr(
            span,
            "queue_wait_s",
            admitted.saturating_duration_since(arrived).as_secs_f64(),
        );
    }

    let mut outcome = RunOutcome {
        tenant: spec.name.clone(),
        seq,
        arrived,
        admitted,
        started: admitted,
        finished: admitted,
        ok: false,
        error: None,
    };

    match drive_run(ctx, shared, spec, &run_name, seq).await {
        Ok((started, finished)) => {
            outcome.started = started;
            outcome.finished = finished;
            outcome.ok = true;
        }
        Err(message) => {
            outcome.finished = ctx.now();
            outcome.error = Some(message);
        }
    }

    gate.release_async(ctx).await;
    if shared.tracing {
        shared.sink.span_end(span, ctx.now());
    }
    shared.outcomes.lock().push(outcome);
}

/// Stages the input, runs the DAG, and (optionally) verifies outputs.
/// Returns `(first stage start, last stage end)`.
async fn drive_run(
    ctx: &mut Ctx,
    shared: &Shared,
    spec: &TenantSpec,
    run_name: &str,
    seq: usize,
) -> Result<(SimTime, SimTime), String> {
    // Per-run bucket: key layout inside it is identical to the
    // standalone pipeline's ("in/NNNN", "sorted/j", "enc/j").
    let bucket = format!("{}-r{}", spec.name, seq);
    shared
        .store
        .create_bucket(bucket.clone())
        .map_err(|e| e.to_string())?;
    let dataset =
        Synthesizer::new(run_seed(shared.seed, seq)).generate_shuffled(shared.physical_records);
    let per = dataset.records.len().div_ceil(spec.parallelism);
    for (i, chunk) in dataset.records.chunks(per).enumerate() {
        let data = SortRecord::write_all(chunk);
        shared
            .store
            .put_untimed(&bucket, &format!("in/{:04}", i), Bytes::from(data))
            .map_err(|e| e.to_string())?;
    }

    let sort_name = format!("{}/sort", run_name);
    let encode_name = format!("{}/encode", run_name);
    let mut dag = Dag::new(run_name.to_string(), bucket.clone());
    let sort_kind = match spec.mode {
        PipelineMode::PureServerless => StageKind::ShuffleSort {
            workers: spec.workers,
            exchange: spec.exchange,
            // Under `auto` the planner owns the I/O window; an explicit
            // backend keeps the tenant's configured one.
            io_concurrency: if spec.exchange == ExchangeKind::Auto {
                None
            } else {
                Some(spec.io_concurrency.max(1))
            },
            input: "in/".into(),
            output: "sorted/".into(),
        },
        PipelineMode::VmHybrid => StageKind::VmSort {
            profile: spec.vm_profile.clone(),
            runs: spec.parallelism,
            input: "in/".into(),
            output: "sorted/".into(),
        },
    };
    dag.add_stage(sort_name.clone(), sort_kind, &[])
        .map_err(|e| e.to_string())?;
    dag.add_stage(
        encode_name,
        StageKind::Encode {
            codec: spec.encode_codec,
            workers: spec.parallelism,
            input: "sorted/".into(),
            output: "enc/".into(),
        },
        &[sort_name.as_str()],
    )
    .map_err(|e| e.to_string())?;

    let tracker = if shared.tracing {
        // Parent the run's stage spans to nothing cluster-global: the
        // run span above already carries tenant/seq, and the tracker
        // labels stages with the full `{tenant}/r{seq}/{stage}` names.
        Tracker::with_sink(shared.sink.clone(), SpanId::NONE)
    } else {
        Tracker::new()
    };
    let services = Services {
        store: shared.store.clone(),
        faas: shared.faas.clone(),
        // The shared fleet, with this tenant stamped on every VM record.
        fleet: shared.fleet.scoped(spec.name.clone()),
    };
    let executor = Executor::new(services, shared.work.clone(), tracker);
    let handle = executor.spawn_dag_in_async(ctx, &dag).await;
    ctx.join_async(handle.root)
        .await
        .map_err(|e| e.to_string())?;
    let mut stages = handle.ok_results()?;
    stages.sort_by_key(|s| s.started);
    let started = stages
        .iter()
        .map(|s| s.started)
        .min()
        .expect("stages exist");
    let finished = stages
        .iter()
        .map(|s| s.finished)
        .max()
        .expect("stages exist");

    if shared.verify {
        verify_run(shared, &bucket)?;
    }
    Ok((started, finished))
}

/// Cheap per-run output check: sorted runs exist, concatenate in
/// globally sorted order, and every run has its archive. (Full decode
/// round-trips are covered by the standalone pipeline's tests.)
fn verify_run(shared: &Shared, bucket: &str) -> Result<(), String> {
    let keys = shared.store.keys_untimed(bucket, "sorted/");
    if keys.is_empty() {
        return Err("no sorted runs produced".to_string());
    }
    let mut last: Option<MethRecord> = None;
    let mut total = 0usize;
    for key in &keys {
        let j = key.trim_start_matches("sorted/");
        let run = shared
            .store
            .peek(bucket, key)
            .ok_or_else(|| format!("missing sorted run {}", j))?;
        let records: Vec<MethRecord> =
            SortRecord::read_all(&run).map_err(|e| format!("sorted run {} corrupt: {}", j, e))?;
        for rec in records {
            if let Some(prev) = last {
                if prev.sort_key() > rec.sort_key() {
                    return Err(format!("run {} breaks global sort order", j));
                }
            }
            last = Some(rec);
            total += 1;
        }
        if shared.store.peek(bucket, &format!("enc/{}", j)).is_none() {
            return Err(format!("missing archive {}", j));
        }
    }
    if total != shared.physical_records {
        return Err(format!(
            "expected {} records across sorted runs, found {}",
            shared.physical_records, total
        ));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn aggregate(
    cfg: &ClusterConfig,
    arrivals: &[Arrival],
    runs: Vec<RunOutcome>,
    store: &Arc<ObjectStore>,
    faas: &Arc<FunctionPlatform>,
    fleet: &VmFleet,
    report: SimReport,
    sink: TraceSink,
) -> ClusterReport {
    let metrics = store.metrics();
    let cost = cfg
        .pricing
        .assemble(&faas.records(), &metrics, &fleet.records(), report.end_time);

    let mut tenants = Vec::with_capacity(cfg.tenants.len());
    let mut means = Vec::with_capacity(cfg.tenants.len());
    for spec in &cfg.tenants {
        let mine: Vec<&RunOutcome> = runs.iter().filter(|r| r.tenant == spec.name).collect();
        let sojourns: Vec<f64> = mine
            .iter()
            .filter(|r| r.ok)
            .map(|r| r.sojourn().as_secs_f64())
            .collect();
        let queues: Vec<f64> = mine
            .iter()
            .filter(|r| r.ok)
            .map(|r| r.queue_wait().as_secs_f64())
            .collect();
        let completed = sojourns.len();
        let mean = if completed > 0 {
            sojourns.iter().sum::<f64>() / completed as f64
        } else {
            0.0
        };
        if completed > 0 {
            means.push(mean);
        }
        tenants.push(TenantReport {
            tenant: spec.name.clone(),
            submitted: mine.len(),
            completed,
            failed: mine.len() - completed,
            p50: percentile(&sojourns, 50.0),
            p99: percentile(&sojourns, 99.0),
            p999: percentile(&sojourns, 99.9),
            mean,
            mean_queue: if completed > 0 {
                queues.iter().sum::<f64>() / completed as f64
            } else {
                0.0
            },
            bill: cost
                .by_stage
                .get(&spec.name)
                .map_or(Money::ZERO, StageCost::total),
            store: metrics.total_for_scope(&spec.name),
        });
    }

    let submitted = runs.len();
    let completed = runs.iter().filter(|r| r.ok).count();
    let makespan = report.end_time.saturating_duration_since(SimTime::ZERO);
    let window = match &cfg.arrivals {
        ArrivalProcess::Poisson { horizon, .. } => horizon.as_secs_f64(),
        ArrivalProcess::Trace(_) => arrivals.last().map_or(0.0, |a| {
            a.at.saturating_duration_since(SimTime::ZERO).as_secs_f64()
        }),
    };
    ClusterReport {
        fairness: jain_fairness(&means),
        tenants,
        runs,
        submitted,
        completed,
        failed: submitted - completed,
        makespan,
        offered_rate: if window > 0.0 {
            submitted as f64 / window
        } else {
            0.0
        },
        goodput_rate: if makespan.as_secs_f64() > 0.0 {
            completed as f64 / makespan.as_secs_f64()
        } else {
            0.0
        },
        cost,
        trace: sink.snapshot(),
        sim: report,
    }
}
