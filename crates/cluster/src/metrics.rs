//! SLO arithmetic: nearest-rank percentiles and the Jain fairness index.
//!
//! Percentiles use `select_nth_unstable_by` (expected O(n)) rather than a
//! full sort; the property tests check both functions against naive
//! reference implementations.

/// Nearest-rank percentile: the smallest sample such that at least
/// `p`% of the samples are ≤ it (`p` in `(0, 100]`). With an empty
/// slice returns `0.0`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    let idx = rank.clamp(1, n) - 1;
    let mut v = samples.to_vec();
    let (_, nth, _) = v.select_nth_unstable_by(idx, f64::total_cmp);
    *nth
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over per-tenant allocations:
/// `1.0` when all tenants see the same value, `1/n` when one tenant gets
/// everything. Degenerate inputs (empty, or all zero) report `1.0` —
/// nobody is being treated unfairly when nobody got anything.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if xs.is_empty() || sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference: full sort, then index by the nearest-rank formula.
    fn percentile_naive(samples: &[f64], p: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut v = samples.to_vec();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        v[rank.clamp(1, n) - 1]
    }

    /// Reference: the definition, computed in long form.
    fn jain_naive(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 1.0;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let mean_sq = xs.iter().map(|x| x * x).sum::<f64>() / n;
        if mean_sq == 0.0 {
            return 1.0;
        }
        mean * mean / mean_sq
    }

    #[test]
    fn percentile_nearest_rank_basics() {
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&s, 50.0), 20.0);
        assert_eq!(percentile(&s, 75.0), 30.0);
        assert_eq!(percentile(&s, 99.0), 40.0);
        assert_eq!(percentile(&s, 100.0), 40.0);
        assert_eq!(percentile(&[5.0], 99.9), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn jain_extremes() {
        assert_eq!(jain_fairness(&[3.0, 3.0, 3.0]), 1.0);
        let skewed = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "got {skewed}");
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    proptest! {
        #[test]
        fn percentile_matches_naive_reference(
            samples in proptest::collection::vec(0.0_f64..1e6, 1..200),
            p in 0.1_f64..100.0,
        ) {
            prop_assert_eq!(percentile(&samples, p), percentile_naive(&samples, p));
        }

        #[test]
        fn percentile_is_a_sample_and_monotone_in_p(
            samples in proptest::collection::vec(0.0_f64..1e6, 1..100),
            p_lo in 1.0_f64..50.0,
            p_hi in 50.0_f64..100.0,
        ) {
            let lo = percentile(&samples, p_lo);
            let hi = percentile(&samples, p_hi);
            prop_assert!(samples.contains(&lo));
            prop_assert!(samples.contains(&hi));
            prop_assert!(lo <= hi);
        }

        #[test]
        fn jain_matches_naive_and_stays_in_range(
            xs in proptest::collection::vec(0.0_f64..1e6, 1..50),
        ) {
            let j = jain_fairness(&xs);
            let r = jain_naive(&xs);
            prop_assert!((j - r).abs() < 1e-9, "{} vs {}", j, r);
            let floor = 1.0 / xs.len() as f64;
            prop_assert!(j >= floor - 1e-9 && j <= 1.0 + 1e-9);
        }
    }
}
