//! Integration tests for the cluster service layer.
//!
//! The pinned properties: a single-tenant cluster is *exactly* the
//! standalone executor (same Table-1 latency and bill), same-seed
//! cluster runs are deterministic down to the streamed trace bytes, and
//! admission control behaves like admission control.

use std::fs;

use faaspipe_cluster::TraceMode;
use faaspipe_cluster::{
    run_cluster, AdmissionPolicy, Arrival, ArrivalProcess, ClusterConfig, ClusterError, TenantSpec,
};
use faaspipe_core::{run_methcomp_pipeline, PipelineConfig};
use faaspipe_des::{SimDuration, SimTime};

fn one_arrival() -> ArrivalProcess {
    ArrivalProcess::Trace(vec![Arrival {
        at: SimTime::ZERO,
        tenant: 0,
    }])
}

/// A small, fast cluster: N tenants, tiny per-run datasets.
fn quick_cfg(tenants: Vec<TenantSpec>, arrivals: ArrivalProcess) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(tenants, arrivals);
    cfg.physical_records = 2_000;
    cfg
}

#[test]
fn single_tenant_cluster_reproduces_table1_exactly() {
    let mut pcfg = PipelineConfig::paper_table1();
    pcfg.physical_records = 20_000;
    let standalone = run_methcomp_pipeline(&pcfg).expect("standalone ok");

    // ClusterConfig::new defaults mirror paper_table1 (same seed, same
    // modelled size, same store/faas/work models); TenantSpec::new is the
    // same pipeline shape. One arrival at t = 0, no admission limits.
    let cfg = ClusterConfig::new(vec![TenantSpec::new("t0")], one_arrival());
    let report = run_cluster(&cfg).expect("cluster ok");

    assert_eq!(report.submitted, 1);
    assert_eq!(report.completed, 1);
    let run = &report.runs[0];
    assert!(run.ok, "{:?}", run.error);
    assert_eq!(run.queue_wait(), SimDuration::ZERO);
    // The tentpole acceptance criterion: the service layer adds naming
    // and accounting, not timing.
    assert_eq!(
        run.exec_latency(),
        standalone.latency,
        "cluster run must replay the standalone pipeline exactly"
    );
    // Same work, same bill — the tags changed, the charges did not.
    assert_eq!(report.cost.total(), standalone.cost.total());
    let tenant = report.tenant("t0").expect("tenant row");
    assert_eq!(tenant.bill, standalone.cost.total());
    assert!(tenant.store.total_requests() > 0);
}

#[test]
fn same_seed_clusters_are_deterministic() {
    let arrivals = ArrivalProcess::Poisson {
        rate_per_sec: 0.01,
        horizon: SimDuration::from_secs(400),
    };
    let mk = || {
        let mut cfg = quick_cfg(
            vec![TenantSpec::new("t0"), TenantSpec::new("t1")],
            arrivals.clone(),
        );
        cfg.seed = 7;
        cfg.verify = true;
        cfg
    };
    let a = run_cluster(&mk()).expect("a ok");
    let b = run_cluster(&mk()).expect("b ok");
    assert!(a.submitted > 0);
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, 0);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.cost.total(), b.cost.total());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.tenant, rb.tenant);
        assert_eq!(ra.arrived, rb.arrived);
        assert_eq!(ra.finished, rb.finished);
    }
}

#[test]
fn same_seed_clusters_stream_byte_identical_traces() {
    let dir = std::env::temp_dir();
    let paths = [
        dir.join(format!("faaspipe-cluster-{}-a.jsonl", std::process::id())),
        dir.join(format!("faaspipe-cluster-{}-b.jsonl", std::process::id())),
    ];
    let arrivals = ArrivalProcess::Trace(vec![
        Arrival {
            at: SimTime::ZERO,
            tenant: 0,
        },
        Arrival {
            at: SimTime::ZERO + SimDuration::from_secs(5),
            tenant: 1,
        },
        Arrival {
            at: SimTime::ZERO + SimDuration::from_secs(5),
            tenant: 0,
        },
    ]);
    for path in &paths {
        let mut cfg = quick_cfg(
            vec![TenantSpec::new("t0"), TenantSpec::new("t1")],
            arrivals.clone(),
        );
        cfg.trace = TraceMode::Stream(path.clone());
        let report = run_cluster(&cfg).expect("cluster ok");
        assert_eq!(report.completed, 3);
        // Streaming mode keeps nothing in memory.
        assert!(report.trace.spans.is_empty());
    }
    let a = fs::read(&paths[0]).expect("trace a");
    let b = fs::read(&paths[1]).expect("trace b");
    for path in &paths {
        let _ = fs::remove_file(path);
    }
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must stream identical trace bytes");
    let text = String::from_utf8(a).expect("utf8");
    assert!(text.lines().all(|l| l.starts_with('{')));
    assert!(text.contains("\"t0/r0\""), "run spans carry tenant names");
    assert!(text.contains("t1/r1/"), "stage tags carry the run prefix");
}

#[test]
fn concurrency_cap_queues_runs_fifo() {
    let arrivals = ArrivalProcess::Trace(vec![
        Arrival {
            at: SimTime::ZERO,
            tenant: 0,
        },
        Arrival {
            at: SimTime::ZERO,
            tenant: 0,
        },
        Arrival {
            at: SimTime::ZERO,
            tenant: 0,
        },
    ]);
    let mut spec = TenantSpec::new("t0");
    spec.admission = AdmissionPolicy::unlimited().with_max_concurrent(1);
    let cfg = quick_cfg(vec![spec], arrivals);
    let report = run_cluster(&cfg).expect("cluster ok");
    assert_eq!(report.completed, 3);
    let runs = &report.runs;
    assert_eq!(runs[0].queue_wait(), SimDuration::ZERO);
    // Each later run waits for its predecessor to finish.
    assert!(runs[1].admitted >= runs[0].finished);
    assert!(runs[2].admitted >= runs[1].finished);
    let t = report.tenant("t0").expect("row");
    assert!(t.mean_queue > 0.0);
    assert!(t.p99 > t.p50, "queueing must spread the sojourn tail");
}

#[test]
fn in_memory_trace_records_per_tenant_run_spans() {
    let mut cfg = quick_cfg(vec![TenantSpec::new("t0")], one_arrival());
    cfg.trace = TraceMode::InMemory;
    let report = run_cluster(&cfg).expect("cluster ok");
    let runs: Vec<_> = report
        .trace
        .spans
        .iter()
        .filter(|s| s.category == faaspipe_trace::Category::Run)
        .collect();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].name, "t0/r0");
    assert!(runs[0].end.is_some());
    assert!(report
        .trace
        .spans
        .iter()
        .any(|s| s.name.starts_with("t0/r0/sort")));
}

#[test]
fn bad_configs_are_rejected() {
    let cfg = ClusterConfig::new(vec![], one_arrival());
    assert!(matches!(
        run_cluster(&cfg),
        Err(ClusterError::BadConfig { .. })
    ));

    let cfg = ClusterConfig::new(vec![TenantSpec::new("a/b")], one_arrival());
    assert!(matches!(
        run_cluster(&cfg),
        Err(ClusterError::BadConfig { .. })
    ));

    let cfg = ClusterConfig::new(
        vec![TenantSpec::new("t0"), TenantSpec::new("t0")],
        one_arrival(),
    );
    assert!(matches!(
        run_cluster(&cfg),
        Err(ClusterError::BadConfig { .. })
    ));

    // Trace rows must name configured tenants.
    let cfg = ClusterConfig::new(
        vec![TenantSpec::new("t0")],
        ArrivalProcess::Trace(vec![Arrival {
            at: SimTime::ZERO,
            tenant: 3,
        }]),
    );
    assert!(matches!(
        run_cluster(&cfg),
        Err(ClusterError::BadConfig { .. })
    ));
}
