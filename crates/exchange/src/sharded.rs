//! A fleet of relay VMs behind one exchange: the scale-out
//! counterfactual to the paper's single-relay comparison.
//!
//! One relay VM loses to coalesced COS because all W² transfers funnel
//! through one NIC. [`ShardedRelayExchange`] runs N [`RelayShard`]s and
//! routes every `(map, part)` cell to a shard by stable hash, so
//! aggregate relay bandwidth scales with the shard count — at N× the
//! per-second bill. Its **pre-warming** mode returns from `prepare`
//! immediately and boots the shards in background processes, overlapping
//! the 44 s provisioning delay with whatever the caller does next (the
//! shuffle's sample phase); requests that arrive before a shard is ready
//! block on the boot and charge only that *residual* wait to the
//! critical path.

use std::sync::Arc;

use bytes::Bytes;
use faaspipe_des::{Ctx, LocalBoxFuture};
use faaspipe_trace::TraceSink;
use faaspipe_vm::VmFleet;

use crate::api::{DataExchange, ExchangeEnv};
use crate::error::ExchangeError;
use crate::retry::with_retry_async;
use crate::vm_relay::{relay_gets_windowed, relay_puts_windowed, RelayConfig, RelayShard};

/// Tuning of the [`ShardedRelayExchange`].
#[derive(Debug, Clone)]
pub struct ShardedRelayConfig {
    /// Per-shard relay tuning (profile, latency, capacity, spill,
    /// failure injection). Every shard gets its own VM, NIC, memory
    /// budget, and request/crash counters from this template.
    pub relay: RelayConfig,
    /// Number of relay VMs; clamped to at least 1.
    pub shards: usize,
    /// When set, `prepare` kicks the boots off in the background and
    /// returns immediately instead of blocking for the provisioning
    /// delay.
    pub prewarm: bool,
}

impl Default for ShardedRelayConfig {
    fn default() -> Self {
        ShardedRelayConfig {
            relay: RelayConfig::default(),
            shards: 4,
            prewarm: false,
        }
    }
}

/// Exchange through N relay VMs with deterministic partition routing.
///
/// Each `(map, part)` cell lives on exactly one shard, chosen by an
/// FNV-1a hash of the pair — stable across runs, platforms, and worker
/// counts, so re-executed mappers and re-reading reducers always hit
/// the shard that holds their data. Shard boots run as parallel
/// processes: a cold `prepare` costs one provisioning delay regardless
/// of N (and N× the per-second bill); with
/// [`prewarm`](ShardedRelayConfig::prewarm) it costs nothing up front.
pub struct ShardedRelayExchange {
    shards: Vec<RelayShard>,
    prewarm: bool,
}

impl std::fmt::Debug for ShardedRelayExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ShardedRelayExchange");
        d.field("shards", &self.shards.len())
            .field("prewarm", &self.prewarm);
        d.finish()
    }
}

impl ShardedRelayExchange {
    /// Creates a sharded relay backend provisioning through `fleet`.
    pub fn new(fleet: VmFleet, cfg: ShardedRelayConfig) -> ShardedRelayExchange {
        let relay = Arc::new(cfg.relay);
        let shards = (0..cfg.shards.max(1))
            .map(|i| {
                RelayShard::new(
                    fleet.clone(),
                    Arc::clone(&relay),
                    format!("relay-{:02}", i),
                    "sharded-relay",
                )
            })
            .collect();
        ShardedRelayExchange {
            shards,
            prewarm: cfg.prewarm,
        }
    }

    /// Routes the shards' request spans and gauges to `sink`.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        for shard in &mut self.shards {
            shard.set_trace(sink.clone());
        }
        self
    }

    /// The shard holding `(map, part)`: FNV-1a over the pair's
    /// little-endian bytes, mod the shard count. Byte-for-byte
    /// deterministic — no platform-dependent hasher state.
    fn route(&self, map: usize, part: usize) -> &RelayShard {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in (map as u64)
            .to_le_bytes()
            .into_iter()
            .chain((part as u64).to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }
}

impl DataExchange for ShardedRelayExchange {
    fn name(&self) -> &'static str {
        "sharded-relay"
    }

    fn prepare_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        _maps: usize,
        _parts: usize,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        Box::pin(async move {
            // All shards boot as parallel processes, so a cold prepare
            // costs one provisioning delay, not N. With prewarm the boots
            // keep running in the background and the caller overlaps them
            // with its next phase.
            let mut pending = Vec::new();
            for shard in &self.shards {
                if let Some(pid) = shard.begin_provision(ctx, self.prewarm).await {
                    pending.push(pid);
                }
            }
            if !self.prewarm {
                for pid in pending {
                    let _ = ctx.join_async(pid).await;
                }
            }
            Ok(())
        })
    }

    fn write_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>> {
        Box::pin(async move {
            let written = parts.iter().map(|d| d.len() as u64).sum();
            if env.io_window > 1 && parts.len() > 1 {
                // Routing happens here in the caller; children only move
                // bytes, so the cell→shard mapping stays identical to the
                // sequential path.
                let items = parts
                    .into_iter()
                    .enumerate()
                    .map(|(j, data)| (self.route(map, j).clone(), map, j, data))
                    .collect();
                relay_puts_windowed(ctx, env, items).await?;
                return Ok(written);
            }
            for (j, data) in parts.into_iter().enumerate() {
                let shard = self.route(map, j);
                with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                    shard.put_part(c, env, map, j, &data).await
                })
                .await?;
            }
            Ok(written)
        })
    }

    fn read_partition_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Bytes, ExchangeError>> {
        Box::pin(async move {
            let shard = self.route(map, part);
            with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                shard.get_part(c, env, map, part).await
            })
            .await
        })
    }

    fn read_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        reqs: &'a [(usize, usize)],
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            if env.io_window <= 1 || reqs.len() <= 1 {
                let mut out = Vec::with_capacity(reqs.len());
                for &(map, part) in reqs {
                    out.push(self.read_partition_async(ctx, env, map, part).await?);
                }
                return Ok(out);
            }
            let items = reqs
                .iter()
                .map(|&(map, part)| (self.route(map, part).clone(), map, part))
                .collect();
            relay_gets_windowed(ctx, env, items).await
        })
    }

    fn list_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<Vec<String>, ExchangeError>> {
        Box::pin(async move {
            // One metered LIST per shard; the concatenation is sorted so
            // output does not depend on shard layout.
            let mut keys = Vec::new();
            for shard in &self.shards {
                keys.extend(shard.list_keys(ctx, env).await?);
            }
            keys.sort();
            Ok(keys)
        })
    }

    fn cleanup_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        _env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        Box::pin(async move {
            for shard in &self.shards {
                shard.shutdown(ctx).await;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::{Sim, SimDuration};
    use faaspipe_trace::Category;
    use parking_lot::Mutex;

    fn driver_env() -> ExchangeEnv {
        ExchangeEnv::driver("test", 3)
    }

    fn config(shards: usize, prewarm: bool) -> ShardedRelayConfig {
        ShardedRelayConfig {
            shards,
            prewarm,
            ..ShardedRelayConfig::default()
        }
    }

    #[test]
    fn routing_is_deterministic_and_uses_every_shard() {
        let fleet = VmFleet::new();
        let ex = ShardedRelayExchange::new(fleet, config(4, false));
        let mut used = [false; 4];
        for map in 0..16usize {
            for part in 0..16usize {
                let a = ex.route(map, part).label().to_string();
                let b = ex.route(map, part).label().to_string();
                assert_eq!(a, b, "routing must be stable");
                let idx: usize = a.rsplit('-').next().unwrap().parse().unwrap();
                used[idx] = true;
            }
        }
        assert!(used.iter().all(|&u| u), "16×16 cells must hit all 4 shards");
    }

    #[test]
    fn roundtrips_across_shards_and_bills_every_vm() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let ex = Arc::new(ShardedRelayExchange::new(fleet.clone(), config(4, false)));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 4, 4).expect("prepare");
            assert_eq!(
                ctx.now().as_secs_f64(),
                44.0,
                "parallel boots cost one provisioning delay, not four"
            );
            for m in 0..4usize {
                let parts = (0..4)
                    .map(|j| Bytes::from(vec![(m * 4 + j) as u8; 64]))
                    .collect();
                ex2.write_partitions(ctx, &env, m, parts).expect("write");
            }
            assert_eq!(ex2.list(ctx, &env).expect("list").len(), 16);
            for m in 0..4usize {
                for j in 0..4usize {
                    let data = ex2.read_partition(ctx, &env, m, j).expect("read");
                    assert_eq!(data, Bytes::from(vec![(m * 4 + j) as u8; 64]));
                }
            }
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        let records = fleet.records();
        assert_eq!(records.len(), 4, "one VM per shard");
        assert!(
            records.iter().all(|r| r.released.is_some()),
            "cleanup released every shard"
        );
    }

    #[test]
    fn prewarm_overlaps_provisioning_with_caller_work() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let ex = Arc::new(ShardedRelayExchange::new(fleet.clone(), config(2, true)));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 2, 2).expect("prepare");
            assert_eq!(
                ctx.now().as_secs_f64(),
                0.0,
                "prewarmed prepare must not block"
            );
            // 10 s of "sample phase" overlap the 44 s boots...
            ctx.sleep(SimDuration::from_secs(10));
            ex2.write_partitions(
                ctx,
                &env,
                0,
                vec![Bytes::from_static(b"x"), Bytes::from_static(b"y")],
            )
            .expect("write");
            // ...so the first request blocks only for the residual 34 s.
            assert!(
                ctx.now().as_secs_f64() >= 44.0,
                "requests must wait for the boot to finish"
            );
            assert!(
                ctx.now().as_secs_f64() < 45.0,
                "but not pay the provisioning delay again"
            );
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        assert_eq!(fleet.records().len(), 2);
        assert!(fleet.records().iter().all(|r| r.released.is_some()));
    }

    #[test]
    fn prewarmed_boot_charges_only_residual_wait_to_the_critical_path() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let sink = TraceSink::recording();
        fleet.set_trace_sink(sink.clone());
        let ex = Arc::new(
            ShardedRelayExchange::new(fleet.clone(), config(2, true)).with_trace(sink.clone()),
        );
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 2, 2).expect("prepare");
            ctx.sleep(SimDuration::from_secs(10));
            ex2.write_partitions(
                ctx,
                &env,
                0,
                vec![Bytes::from_static(b"x"), Bytes::from_static(b"y")],
            )
            .expect("write");
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        let data = sink.snapshot();
        assert!(
            data.spans.iter().any(|s| s.category == Category::VmTask),
            "shard VMs record their task spans"
        );
        let cold: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.category == Category::ColdStart)
            .collect();
        assert!(
            cold.iter().all(|s| s.name == "relay-wait"),
            "background boots must not emit vm-provision cold starts: {:?}",
            cold.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
        let longest = cold
            .iter()
            .filter_map(|s| s.duration())
            .map(|d| d.as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(
            (longest - 34.0).abs() < 1.0,
            "the critical path sees only the residual wait (~34 s), got {}",
            longest
        );
    }

    #[test]
    fn cleanup_joins_in_flight_boots_before_releasing() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let ex = Arc::new(ShardedRelayExchange::new(fleet.clone(), config(3, true)));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 2, 2).expect("prepare");
            // Tear down while every boot is still in flight.
            ex2.cleanup(ctx, &env).expect("cleanup");
            assert_eq!(ctx.now().as_secs_f64(), 44.0, "cleanup waits out the boots");
        });
        sim.run().expect("sim ok");
        let records = fleet.records();
        assert_eq!(records.len(), 3);
        assert!(
            records.iter().all(|r| r.released.is_some()),
            "no leaked billing records"
        );
    }

    #[test]
    fn shard_crash_only_loses_that_shards_cells() {
        let mut sim = Sim::new();
        let cfg = ShardedRelayConfig {
            relay: RelayConfig {
                // Each shard dies after its 5th request; with 16 cells
                // over 2 shards (~8 puts each), both crash mid-write.
                crash_after_requests: Some(5),
                ..RelayConfig::default()
            },
            shards: 2,
            prewarm: false,
        };
        let ex = Arc::new(ShardedRelayExchange::new(VmFleet::new(), cfg));
        let outcome: Arc<Mutex<(usize, usize)>> = Arc::new(Mutex::new((0, 0)));
        let out2 = Arc::clone(&outcome);
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 1);
            ex2.prepare(ctx, 4, 4).expect("prepare");
            let (mut ok, mut down) = (0usize, 0usize);
            for m in 0..4usize {
                for j in 0..4usize {
                    match faaspipe_des::run_blocking(ex2.route(m, j).put_part(
                        ctx,
                        &env,
                        m,
                        j,
                        &Bytes::from_static(b"z"),
                    )) {
                        Ok(()) => ok += 1,
                        Err(ExchangeError::RelayDown { .. }) => down += 1,
                        Err(e) => panic!("unexpected error: {:?}", e),
                    }
                }
            }
            *out2.lock() = (ok, down);
        });
        sim.run().expect("sim ok");
        let (ok, down) = *outcome.lock();
        assert_eq!(ok + down, 16);
        assert_eq!(ok, 10, "each shard serves 5 requests before dying");
        assert_eq!(down, 6);
    }
}
