//! Rendezvous function-to-function streaming.

use std::collections::BTreeMap;

use bytes::Bytes;
use faaspipe_des::{ByteSize, Ctx, LinkId, LocalBoxFuture, SimDuration, SimTime};
use faaspipe_store::failure::Fate;
use faaspipe_store::FailurePolicy;
use faaspipe_trace::{Category, SpanId, TraceSink};
use parking_lot::Mutex;

use crate::api::{DataExchange, ExchangeEnv};
use crate::error::ExchangeError;
use crate::retry::with_retry_async;

/// Tuning of the [`DirectExchange`].
#[derive(Debug, Clone)]
pub struct DirectConfig {
    /// Fixed rendezvous overhead per operation (registering a partition,
    /// opening a peer connection).
    pub handshake: SimDuration,
    /// How long a finished sender's container keeps its buffered
    /// partitions before the platform evicts it. Reads after this window
    /// fail irrecoverably ([`ExchangeError::PeerGone`]). Mirror the FaaS
    /// platform's keep-alive here.
    pub keep_alive: SimDuration,
    /// Maximum virtual time a reader waits for a partition that has not
    /// been registered yet before one attempt times out.
    pub rendezvous_timeout: SimDuration,
    /// Poll interval while waiting for a missing partition.
    pub poll: SimDuration,
    /// Probabilistic fault injection on reads: failed rendezvous show up
    /// as transient [`ExchangeError::PeerTimeout`]s and are retried.
    pub failure: FailurePolicy,
    /// Wire-size scale factor, mirroring
    /// [`StoreConfig::size_scale`](faaspipe_store::StoreConfig::size_scale).
    pub size_scale: f64,
}

impl Default for DirectConfig {
    fn default() -> Self {
        DirectConfig {
            handshake: SimDuration::from_millis(1),
            keep_alive: SimDuration::from_secs(600),
            rendezvous_timeout: SimDuration::from_secs(30),
            poll: SimDuration::from_millis(100),
            failure: FailurePolicy::none(),
            size_scale: 1.0,
        }
    }
}

/// One partition parked in its sender's container memory.
#[derive(Debug)]
struct DirectPart {
    data: Bytes,
    /// Scaled wire size.
    wire: u64,
    /// The sender's NIC — reads stream through it.
    sender_nic: Option<LinkId>,
    /// When the sender registered the partition (starts the keep-alive
    /// clock).
    written_at: SimTime,
}

#[derive(Debug, Default)]
struct DirectState {
    parts: BTreeMap<(usize, usize), DirectPart>,
    /// Scaled bytes currently buffered across all warm senders.
    buffered: u64,
}

/// Exchange by streaming directly between functions: mappers keep their
/// partitions in container memory and register them with a rendezvous
/// service; reducers stream each partition straight from the sender
/// through the DES fluid-flow network (the transfer traverses **both**
/// NICs).
///
/// No storage service is paid, no intermediate object is written — but
/// the exchange only works while both sides are concurrently warm: once
/// a sender's container is evicted (`keep_alive` after it finished), its
/// partitions are gone and readers fail loudly with
/// [`ExchangeError::PeerGone`]. That fragility is exactly the trade-off
/// the Bauplan-style zero-copy argument makes.
pub struct DirectExchange {
    core: DirectCore,
}

/// The shareable innards of [`DirectExchange`]: cloning is cheap and
/// shares the rendezvous table, so the windowed read path can hand a
/// clone to each fan-out child.
#[derive(Clone)]
struct DirectCore {
    cfg: std::sync::Arc<DirectConfig>,
    trace: TraceSink,
    state: std::sync::Arc<Mutex<DirectState>>,
}

impl std::fmt::Debug for DirectExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.core.state.lock();
        f.debug_struct("DirectExchange")
            .field("cfg", &self.core.cfg)
            .field("parts", &state.parts.len())
            .field("buffered", &state.buffered)
            .finish()
    }
}

impl DirectExchange {
    /// Creates a direct-streaming backend.
    pub fn new(cfg: DirectConfig) -> DirectExchange {
        DirectExchange {
            core: DirectCore {
                cfg: std::sync::Arc::new(cfg),
                trace: TraceSink::default(),
                state: std::sync::Arc::new(Mutex::new(DirectState::default())),
            },
        }
    }

    /// Routes the backend's spans and gauges to `sink`.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.core.trace = sink;
        self
    }
}

impl DirectCore {
    fn scaled(&self, real_len: usize) -> u64 {
        (real_len as f64 * self.cfg.size_scale).round() as u64
    }

    fn span_begin(
        &self,
        ctx: &Ctx,
        op: &'static str,
        tag: &str,
        map: usize,
        part: usize,
    ) -> SpanId {
        if !self.trace.is_enabled() {
            return SpanId::NONE;
        }
        let parent = self.trace.current(ctx.pid());
        let span =
            self.trace
                .span_start(Category::StoreRequest, op, "direct", tag, parent, ctx.now());
        self.trace
            .attr(span, "key", format!("direct/{:05}/{:05}", map, part));
        span
    }

    fn span_end(&self, ctx: &Ctx, span: SpanId, bytes: u64, failed: bool) {
        if span.is_none() {
            return;
        }
        if bytes > 0 {
            self.trace.attr(span, "bytes", bytes);
        }
        if failed {
            self.trace.attr(span, "failed", true);
        }
        self.trace.span_end(span, ctx.now());
    }

    /// One rendezvous + stream attempt for a single partition.
    async fn stream_part(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        part: usize,
    ) -> Result<Bytes, ExchangeError> {
        let span = self.span_begin(ctx, "STREAM", &env.tag, map, part);
        let fate = self.cfg.failure.draw(ctx.rng());
        let handshake = match fate {
            Fate::Slow(factor) => self.cfg.handshake.mul_f64(factor),
            _ => self.cfg.handshake,
        };
        ctx.sleep_async(handshake).await;
        if matches!(fate, Fate::Fail) {
            self.span_end(ctx, span, 0, true);
            return Err(ExchangeError::PeerTimeout { map, part });
        }
        // Rendezvous: wait for the sender to register the partition.
        let mut waited = SimDuration::ZERO;
        let found = loop {
            match self.lookup(map, part) {
                Some(found) => break found,
                None if waited >= self.cfg.rendezvous_timeout => {
                    self.span_end(ctx, span, 0, true);
                    return Err(ExchangeError::PeerTimeout { map, part });
                }
                None => {
                    ctx.sleep_async(self.cfg.poll).await;
                    waited = waited.saturating_add(self.cfg.poll);
                }
            }
        };
        let (data, wire, sender_nic, written_at) = found;
        // Warmth gate: the sender's container must still be alive.
        if ctx.now().saturating_duration_since(written_at) > self.cfg.keep_alive {
            self.span_end(ctx, span, 0, true);
            return Err(ExchangeError::PeerGone { map, part });
        }
        // Stream through both NICs on the fluid-flow network.
        let mut links = env.host_links.clone();
        links.extend(sender_nic);
        let flow = if self.trace.is_enabled() {
            let flow =
                self.trace
                    .span_start(Category::Flow, "xfer", "direct", &env.tag, span, ctx.now());
            self.trace.attr(flow, "wire_bytes", wire);
            flow
        } else {
            SpanId::NONE
        };
        ctx.transfer_async(ByteSize::new(wire), &links).await;
        if !flow.is_none() {
            self.trace.span_end(flow, ctx.now());
        }
        self.span_end(ctx, span, wire, false);
        Ok(data)
    }

    fn lookup(&self, map: usize, part: usize) -> Option<(Bytes, u64, Option<LinkId>, SimTime)> {
        let state = self.state.lock();
        state
            .parts
            .get(&(map, part))
            .map(|p| (p.data.clone(), p.wire, p.sender_nic, p.written_at))
    }
}

impl DataExchange for DirectExchange {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn prepare_async<'a>(
        &'a self,
        _ctx: &'a mut Ctx,
        _maps: usize,
        _parts: usize,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        let mut state = self.core.state.lock();
        state.parts.clear();
        state.buffered = 0;
        Box::pin(async { Ok(()) })
    }

    fn write_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>> {
        Box::pin(async move {
            // Registration is one cheap rendezvous call: the data itself
            // stays in the sender's memory, so no bytes move here (and
            // there is nothing to parallelize — `io_window` is moot).
            let span = self
                .core
                .span_begin(ctx, "REGISTER", &env.tag, map, parts.len());
            ctx.sleep_async(self.core.cfg.handshake).await;
            let sender_nic = env.host_links.first().copied();
            let now = ctx.now();
            let mut written = 0u64;
            {
                let mut state = self.core.state.lock();
                for (j, data) in parts.into_iter().enumerate() {
                    written += data.len() as u64;
                    let wire = self.core.scaled(data.len());
                    // Idempotent overwrite for re-invoked mappers.
                    if let Some(old) = state.parts.remove(&(map, j)) {
                        state.buffered -= old.wire;
                    }
                    state.buffered += wire;
                    state.parts.insert(
                        (map, j),
                        DirectPart {
                            data,
                            wire,
                            sender_nic,
                            written_at: now,
                        },
                    );
                }
                if self.core.trace.is_enabled() {
                    self.core
                        .trace
                        .gauge("direct.buffered_bytes", now, state.buffered as f64);
                }
            }
            self.core.span_end(ctx, span, written, false);
            Ok(written)
        })
    }

    fn read_partition_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Bytes, ExchangeError>> {
        Box::pin(async move {
            with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                self.core.stream_part(c, env, map, part).await
            })
            .await
        })
    }

    fn read_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        reqs: &'a [(usize, usize)],
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            if env.io_window <= 1 || reqs.len() <= 1 {
                let mut out = Vec::with_capacity(reqs.len());
                for &(map, part) in reqs {
                    out.push(self.read_partition_async(ctx, env, map, part).await?);
                }
                return Ok(out);
            }
            let trace = self.core.trace.clone();
            let parent = trace.current(ctx.pid());
            let jobs: Vec<_> = reqs
                .iter()
                .map(|&(map, part)| {
                    let core = self.core.clone();
                    let env = env.clone();
                    let trace = trace.clone();
                    async move |cctx: &mut Ctx| {
                        trace.enter(cctx.pid(), parent);
                        let res: Result<Bytes, ExchangeError> =
                            with_retry_async(cctx, env.retries, async |c: &mut Ctx| {
                                core.stream_part(c, &env, map, part).await
                            })
                            .await;
                        trace.exit(cctx.pid());
                        res
                    }
                })
                .collect();
            let name = format!("{}-get", env.tag);
            ctx.fan_out_async(&name, env.io_window, jobs)
                .await
                .unwrap_or_else(|e| panic!("windowed direct read crashed: {}", e))
                .into_iter()
                .collect()
        })
    }

    fn list_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        _env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<Vec<String>, ExchangeError>> {
        Box::pin(async move {
            ctx.sleep_async(self.core.cfg.handshake).await;
            Ok(self
                .core
                .state
                .lock()
                .parts
                .keys()
                .map(|(m, j)| format!("direct/{:05}/{:05}", m, j))
                .collect())
        })
    }

    fn cleanup_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        _env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        let mut state = self.core.state.lock();
        state.parts.clear();
        state.buffered = 0;
        if self.core.trace.is_enabled() {
            self.core
                .trace
                .gauge("direct.buffered_bytes", ctx.now(), 0.0);
        }
        Box::pin(async { Ok(()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;
    use std::sync::Arc;

    #[test]
    fn roundtrips_partitions_without_moving_bytes_on_write() {
        let mut sim = Sim::new();
        let ex = Arc::new(DirectExchange::new(DirectConfig::default()));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex2.prepare(ctx, 2, 2).expect("prepare");
            let before = ctx.now();
            for m in 0..2usize {
                let parts = vec![
                    Bytes::from(format!("m{}p0", m)),
                    Bytes::from(format!("m{}p1", m)),
                ];
                assert_eq!(ex2.write_partitions(ctx, &env, m, parts).expect("write"), 8);
            }
            // Writes cost only the handshake, not a transfer.
            let write_cost = ctx.now().saturating_duration_since(before);
            assert!(write_cost <= SimDuration::from_millis(2));
            for m in 0..2usize {
                for j in 0..2usize {
                    let data = ex2.read_partition(ctx, &env, m, j).expect("read");
                    assert_eq!(data, Bytes::from(format!("m{}p{}", m, j)));
                }
            }
            assert_eq!(
                ex2.list(ctx, &env).expect("list").len(),
                4,
                "all four partitions registered"
            );
            ex2.cleanup(ctx, &env).expect("cleanup");
            assert!(ex2.list(ctx, &env).expect("list").is_empty());
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn cold_sender_fails_loudly() {
        let mut sim = Sim::new();
        let cfg = DirectConfig {
            keep_alive: SimDuration::from_secs(5),
            ..DirectConfig::default()
        };
        let ex = Arc::new(DirectExchange::new(cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex2.prepare(ctx, 1, 1).expect("prepare");
            ex2.write_partitions(ctx, &env, 0, vec![Bytes::from("x")])
                .expect("write");
            ctx.sleep(SimDuration::from_secs(10));
            let err = ex2.read_partition(ctx, &env, 0, 0).expect_err("evicted");
            assert_eq!(err, ExchangeError::PeerGone { map: 0, part: 0 });
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn missing_writer_times_out_after_rendezvous_window() {
        let mut sim = Sim::new();
        let cfg = DirectConfig {
            rendezvous_timeout: SimDuration::from_secs(1),
            ..DirectConfig::default()
        };
        let ex = Arc::new(DirectExchange::new(cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 2);
            ex2.prepare(ctx, 1, 1).expect("prepare");
            let before = ctx.now();
            let err = ex2
                .read_partition(ctx, &env, 0, 0)
                .expect_err("nobody wrote");
            assert_eq!(err, ExchangeError::PeerTimeout { map: 0, part: 0 });
            // Two attempts, each waiting out the rendezvous window.
            let waited = ctx.now().saturating_duration_since(before);
            assert!(waited >= SimDuration::from_secs(2));
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn late_writer_is_caught_by_the_rendezvous_poll() {
        let mut sim = Sim::new();
        let ex = Arc::new(DirectExchange::new(DirectConfig::default()));
        let writer = Arc::clone(&ex);
        let reader = Arc::clone(&ex);
        sim.spawn("writer", move |ctx| {
            let env = ExchangeEnv::driver("w", 3);
            writer.prepare(ctx, 1, 1).expect("prepare");
            ctx.sleep(SimDuration::from_secs(2));
            writer
                .write_partitions(ctx, &env, 0, vec![Bytes::from("late")])
                .expect("write");
        });
        sim.spawn("reader", move |ctx| {
            // Starts before the writer has registered anything.
            ctx.sleep(SimDuration::from_millis(10));
            let env = ExchangeEnv::driver("r", 3);
            let data = reader.read_partition(ctx, &env, 0, 0).expect("read");
            assert_eq!(data, Bytes::from("late"));
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn injected_peer_timeouts_are_retried() {
        let mut sim = Sim::new();
        let cfg = DirectConfig {
            failure: FailurePolicy::with_error_rate(0.4),
            ..DirectConfig::default()
        };
        let ex = Arc::new(DirectExchange::new(cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 20);
            ex2.prepare(ctx, 4, 4).expect("prepare");
            for m in 0..4usize {
                let parts = (0..4).map(|_| Bytes::from(vec![1u8; 64])).collect();
                ex2.write_partitions(ctx, &env, m, parts).expect("write");
            }
            for m in 0..4usize {
                for j in 0..4usize {
                    ex2.read_partition(ctx, &env, m, j)
                        .expect("reads survive 40% injected timeouts");
                }
            }
        });
        sim.run().expect("sim ok");
    }
}
