//! # faaspipe-exchange — pluggable intermediate data-exchange backends
//!
//! The paper's central question is *how* pipeline stages exchange
//! intermediate data: through object storage or through a VM. This crate
//! makes that choice a first-class, pluggable subsystem: the
//! [`DataExchange`] trait models the all-to-all partition hand-off between
//! mappers and reducers, and three backends span the design space:
//!
//! - [`ObjectStoreExchange`] — the paper's serverless pattern: every byte
//!   moves through the simulated COS, either as W² scatter objects or as
//!   W coalesced blobs with byte-range reads
//!   ([`ExchangeStrategy`]).
//! - [`VmRelayExchange`] — a Pocket-style in-memory relay hosted on a
//!   simulated VM: provisioning delay, per-second billing, its own NIC
//!   bandwidth, and a capacity limit with disk spill.
//! - [`DirectExchange`] — rendezvous function-to-function streaming
//!   through the DES fluid-flow network, gated on the sender's container
//!   still being warm.
//! - [`ShardedRelayExchange`] — N relay VMs behind one exchange with
//!   deterministic `(map, part)` → shard routing, so aggregate relay NIC
//!   bandwidth scales with the shard count; its pre-warming mode overlaps
//!   provisioning with the caller's next phase instead of blocking
//!   `prepare`.
//!
//! All backends charge virtual time for every operation, record
//! [`faaspipe_trace`] spans on the same `StoreRequest`/`Flow` categories
//! the store uses (so critical-path attribution keeps working), and route
//! every fallible request through the shared [`with_retry`] helper with
//! exponential backoff and deterministic jitter drawn from the DES rng.

mod api;
mod direct;
mod error;
mod object_store;
mod retry;
mod sharded;
mod vm_relay;

pub use api::{DataExchange, ExchangeEnv, ExchangeKind, ExchangeStrategy};
pub use direct::{DirectConfig, DirectExchange};
pub use error::{ExchangeError, ExchangeParseError, ExchangeParseIssue, EXCHANGE_KIND_FORMS};
pub use object_store::ObjectStoreExchange;
pub use retry::{with_retry, with_retry_async, Retryable};
pub use sharded::{ShardedRelayConfig, ShardedRelayExchange};
pub use vm_relay::{RelayConfig, VmRelayExchange};
