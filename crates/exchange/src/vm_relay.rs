//! A Pocket-style in-memory relay hosted on a simulated VM.

use std::collections::BTreeMap;

use bytes::Bytes;
use faaspipe_des::{Bandwidth, ByteSize, Ctx, LinkId, SimDuration};
use faaspipe_store::failure::Fate;
use faaspipe_store::FailurePolicy;
use faaspipe_trace::{Category, SpanId, TraceSink};
use faaspipe_vm::{VmFleet, VmInstance, VmProfile};
use parking_lot::Mutex;

use crate::api::{DataExchange, ExchangeEnv};
use crate::error::ExchangeError;
use crate::retry::with_retry;

/// Tuning of the [`VmRelayExchange`].
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// VM shape the relay runs on (provisioning delay, NIC, billing).
    pub profile: VmProfile,
    /// Fixed overhead per relay request. An in-memory key/value server
    /// answers far faster than COS's first-byte latency — that is the
    /// relay's selling point.
    pub request_latency: SimDuration,
    /// In-memory capacity; objects past it spill to local disk.
    pub memory_capacity: ByteSize,
    /// Local-disk bandwidth paid on top of the network for spilled
    /// objects (once on write, once on every read).
    pub disk_bw: Bandwidth,
    /// Wire-size scale factor, mirroring
    /// [`StoreConfig::size_scale`](faaspipe_store::StoreConfig::size_scale)
    /// so modelled datasets load both paths equally.
    pub size_scale: f64,
    /// Probabilistic fault injection on relay requests. Failed requests
    /// are transient ([`ExchangeError::RelayUnavailable`]) and retried.
    pub failure: FailurePolicy,
    /// When set, the relay VM crashes irrecoverably after this many
    /// requests, losing its contents: subsequent requests fail with the
    /// non-retryable [`ExchangeError::RelayDown`].
    pub crash_after_requests: Option<u64>,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            profile: VmProfile::bx2_8x32(),
            request_latency: SimDuration::from_millis(2),
            memory_capacity: ByteSize::gib(24),
            disk_bw: Bandwidth::mib_per_sec(350.0),
            size_scale: 1.0,
            failure: FailurePolicy::none(),
            crash_after_requests: None,
        }
    }
}

/// One object held by the relay.
#[derive(Debug)]
struct StoredPart {
    data: Bytes,
    /// Scaled wire size (what moved over the network).
    wire: u64,
    /// Whether the object lives on the relay's disk instead of memory.
    spilled: bool,
}

#[derive(Debug, Default)]
struct RelayState {
    vm: Option<VmInstance>,
    objects: BTreeMap<(usize, usize), StoredPart>,
    /// Scaled bytes currently held in memory.
    mem_used: u64,
    /// Total requests served (drives `crash_after_requests`).
    requests: u64,
    crashed: bool,
}

/// Exchange through an in-memory relay server on a provisioned VM — the
/// Pocket/ephemeral-storage point in the design space.
///
/// [`prepare`](DataExchange::prepare) provisions the VM through the
/// [`VmFleet`] (charging the profile's provisioning delay and starting
/// its billing clock); [`cleanup`](DataExchange::cleanup) releases it.
/// Every request pays a small fixed latency plus a fluid-flow transfer
/// that contends for the caller's NIC **and** the relay VM's NIC — at
/// high fan-in, the single relay NIC is the bottleneck the paper's
/// VM-driven exchange runs into. Objects beyond `memory_capacity` spill
/// to the VM's disk and pay `disk_bw` on both sides.
pub struct VmRelayExchange {
    fleet: VmFleet,
    cfg: RelayConfig,
    trace: TraceSink,
    state: Mutex<RelayState>,
}

impl std::fmt::Debug for VmRelayExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("VmRelayExchange")
            .field("cfg", &self.cfg)
            .field("objects", &state.objects.len())
            .field("mem_used", &state.mem_used)
            .field("crashed", &state.crashed)
            .finish()
    }
}

impl VmRelayExchange {
    /// Creates a relay backend provisioning through `fleet`.
    pub fn new(fleet: VmFleet, cfg: RelayConfig) -> VmRelayExchange {
        VmRelayExchange {
            fleet,
            cfg,
            trace: TraceSink::default(),
            state: Mutex::new(RelayState::default()),
        }
    }

    /// Routes the relay's request spans and gauges to `sink`.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    fn scaled(&self, real_len: usize) -> u64 {
        (real_len as f64 * self.cfg.size_scale).round() as u64
    }

    /// Charges the fixed request overhead and bumps the request counter.
    /// Returns the relay's NIC. Fails without touching state on injected
    /// faults or after a crash.
    fn request_overhead(&self, ctx: &mut Ctx, op: &'static str) -> Result<LinkId, ExchangeError> {
        let nic = {
            let mut state = self.state.lock();
            if state.crashed {
                return Err(ExchangeError::RelayDown { op });
            }
            let nic = state
                .vm
                .as_ref()
                .map(|vm| vm.nic)
                .ok_or(ExchangeError::NotPrepared {
                    backend: "vm-relay",
                })?;
            state.requests += 1;
            if let Some(limit) = self.cfg.crash_after_requests {
                if state.requests > limit {
                    // The relay process dies and its memory is gone.
                    state.crashed = true;
                    state.objects.clear();
                    state.mem_used = 0;
                    return Err(ExchangeError::RelayDown { op });
                }
            }
            nic
        };
        let fate = self.cfg.failure.draw(ctx.rng());
        let latency = match fate {
            Fate::Slow(factor) => self.cfg.request_latency.mul_f64(factor),
            _ => self.cfg.request_latency,
        };
        ctx.sleep(latency);
        if matches!(fate, Fate::Fail) {
            return Err(ExchangeError::RelayUnavailable { op });
        }
        Ok(nic)
    }

    fn span_begin(
        &self,
        ctx: &Ctx,
        op: &'static str,
        tag: &str,
        map: usize,
        part: usize,
    ) -> SpanId {
        if !self.trace.is_enabled() {
            return SpanId::NONE;
        }
        let parent = self.trace.current(ctx.pid());
        let span =
            self.trace
                .span_start(Category::StoreRequest, op, "relay", tag, parent, ctx.now());
        self.trace
            .attr(span, "key", format!("relay/{:05}/{:05}", map, part));
        span
    }

    fn span_end(&self, ctx: &Ctx, span: SpanId, bytes: u64, failed: bool) {
        if span.is_none() {
            return;
        }
        if bytes > 0 {
            self.trace.attr(span, "bytes", bytes);
        }
        if failed {
            self.trace.attr(span, "failed", true);
        }
        self.trace.span_end(span, ctx.now());
    }

    /// Moves `wire` scaled bytes between the caller and the relay,
    /// recording a flow span.
    fn transfer(&self, ctx: &Ctx, env: &ExchangeEnv, nic: LinkId, wire: u64, parent: SpanId) {
        let mut links = env.host_links.clone();
        links.push(nic);
        let flow = if self.trace.is_enabled() {
            let flow =
                self.trace
                    .span_start(Category::Flow, "xfer", "relay", &env.tag, parent, ctx.now());
            self.trace.attr(flow, "wire_bytes", wire);
            flow
        } else {
            SpanId::NONE
        };
        ctx.transfer(ByteSize::new(wire), &links);
        if !flow.is_none() {
            self.trace.span_end(flow, ctx.now());
        }
    }

    fn put_part(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        part: usize,
        data: &Bytes,
    ) -> Result<(), ExchangeError> {
        let span = self.span_begin(ctx, "PUT", &env.tag, map, part);
        let nic = match self.request_overhead(ctx, "PUT") {
            Ok(nic) => nic,
            Err(e) => {
                self.span_end(ctx, span, 0, true);
                return Err(e);
            }
        };
        let wire = self.scaled(data.len());
        self.transfer(ctx, env, nic, wire, span);
        let spilled = {
            let mut state = self.state.lock();
            // Idempotent overwrite: drop the old copy's accounting first.
            if let Some(old) = state.objects.remove(&(map, part)) {
                if !old.spilled {
                    state.mem_used -= old.wire;
                }
            }
            let spilled = state.mem_used + wire > self.cfg.memory_capacity.as_u64();
            if !spilled {
                state.mem_used += wire;
            }
            state.objects.insert(
                (map, part),
                StoredPart {
                    data: data.clone(),
                    wire,
                    spilled,
                },
            );
            if self.trace.is_enabled() {
                self.trace
                    .gauge("relay.mem_bytes", ctx.now(), state.mem_used as f64);
                if spilled {
                    self.trace
                        .add("relay.spilled_bytes", ctx.now(), wire as f64);
                }
            }
            spilled
        };
        if spilled {
            ctx.sleep(self.cfg.disk_bw.transfer_time(ByteSize::new(wire)));
        }
        self.span_end(ctx, span, wire, false);
        Ok(())
    }

    fn get_part(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        part: usize,
    ) -> Result<Bytes, ExchangeError> {
        let span = self.span_begin(ctx, "GET", &env.tag, map, part);
        let nic = match self.request_overhead(ctx, "GET") {
            Ok(nic) => nic,
            Err(e) => {
                self.span_end(ctx, span, 0, true);
                return Err(e);
            }
        };
        let (data, wire, spilled) = {
            let state = self.state.lock();
            match state.objects.get(&(map, part)) {
                Some(p) => (p.data.clone(), p.wire, p.spilled),
                None => {
                    drop(state);
                    self.span_end(ctx, span, 0, true);
                    return Err(ExchangeError::MissingPartition { map, part });
                }
            }
        };
        if spilled {
            ctx.sleep(self.cfg.disk_bw.transfer_time(ByteSize::new(wire)));
        }
        self.transfer(ctx, env, nic, wire, span);
        self.span_end(ctx, span, wire, false);
        Ok(data)
    }
}

impl DataExchange for VmRelayExchange {
    fn name(&self) -> &'static str {
        "vm-relay"
    }

    fn prepare(&self, ctx: &mut Ctx, _maps: usize, _parts: usize) -> Result<(), ExchangeError> {
        let already = self.state.lock().vm.is_some();
        if already {
            return Ok(());
        }
        // Provisioning charges the profile's delay and opens the VM's
        // billing + trace spans through the fleet.
        let vm = self.fleet.provision(ctx, self.cfg.profile.clone());
        self.state.lock().vm = Some(vm);
        Ok(())
    }

    fn write_partitions(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> Result<u64, ExchangeError> {
        let mut written = 0u64;
        for (j, data) in parts.into_iter().enumerate() {
            written += data.len() as u64;
            with_retry(ctx, env.retries, |c| self.put_part(c, env, map, j, &data))?;
        }
        Ok(written)
    }

    fn read_partition(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        part: usize,
    ) -> Result<Bytes, ExchangeError> {
        with_retry(ctx, env.retries, |c| self.get_part(c, env, map, part))
    }

    fn list(&self, ctx: &mut Ctx, env: &ExchangeEnv) -> Result<Vec<String>, ExchangeError> {
        let _ = env;
        ctx.sleep(self.cfg.request_latency);
        let state = self.state.lock();
        if state.crashed {
            return Err(ExchangeError::RelayDown { op: "LIST" });
        }
        Ok(state
            .objects
            .keys()
            .map(|(m, j)| format!("relay/{:05}/{:05}", m, j))
            .collect())
    }

    fn cleanup(&self, ctx: &mut Ctx, _env: &ExchangeEnv) -> Result<(), ExchangeError> {
        let vm = {
            let mut state = self.state.lock();
            state.objects.clear();
            state.mem_used = 0;
            state.vm.take()
        };
        if let Some(vm) = vm {
            // Billing stops here; unreleased (crashed mid-run) relays
            // keep billing to the end checkpoint, like real forgotten VMs.
            self.fleet.release(ctx, vm);
        }
        if self.trace.is_enabled() {
            self.trace.gauge("relay.mem_bytes", ctx.now(), 0.0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;
    use std::sync::Arc;

    fn driver_env() -> ExchangeEnv {
        ExchangeEnv::driver("test", 3)
    }

    #[test]
    fn roundtrips_partitions_and_bills_the_vm() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let ex = Arc::new(VmRelayExchange::new(fleet.clone(), RelayConfig::default()));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 2, 2).expect("prepare");
            assert_eq!(ctx.now().as_secs_f64(), 44.0, "provisioning charged");
            for m in 0..2usize {
                let parts = vec![Bytes::from(vec![m as u8; 100]), Bytes::from(vec![0u8; 50])];
                let written = ex2.write_partitions(ctx, &env, m, parts).expect("write");
                assert_eq!(written, 150);
            }
            assert_eq!(
                ex2.list(ctx, &env).expect("list"),
                vec![
                    "relay/00000/00000",
                    "relay/00000/00001",
                    "relay/00001/00000",
                    "relay/00001/00001"
                ]
            );
            let data = ex2.read_partition(ctx, &env, 1, 0).expect("read");
            assert_eq!(data, Bytes::from(vec![1u8; 100]));
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        let records = fleet.records();
        assert_eq!(records.len(), 1, "one relay VM provisioned");
        assert!(records[0].released.is_some(), "cleanup released it");
    }

    #[test]
    fn over_capacity_objects_spill_to_disk_and_cost_more() {
        fn read_time(capacity: ByteSize) -> f64 {
            let mut sim = Sim::new();
            let cfg = RelayConfig {
                memory_capacity: capacity,
                ..RelayConfig::default()
            };
            let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
            let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
            let out2 = Arc::clone(&out);
            let ex2 = Arc::clone(&ex);
            sim.spawn("driver", move |ctx| {
                let env = driver_env();
                ex2.prepare(ctx, 1, 1).expect("prepare");
                let blob = Bytes::from(vec![7u8; 8 * 1024 * 1024]);
                ex2.write_partitions(ctx, &env, 0, vec![blob])
                    .expect("write");
                let before = ctx.now();
                ex2.read_partition(ctx, &env, 0, 0).expect("read");
                *out2.lock() = ctx.now().saturating_duration_since(before).as_secs_f64();
            });
            sim.run().expect("sim ok");
            let took = *out.lock();
            took
        }
        let in_memory = read_time(ByteSize::gib(1));
        let spilled = read_time(ByteSize::new(1024));
        // 8 MiB at 350 MiB/s disk ≈ 23 ms extra.
        assert!(
            spilled > in_memory + 0.02,
            "spilled read {} must exceed in-memory {} by the disk time",
            spilled,
            in_memory
        );
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let mut sim = Sim::new();
        let cfg = RelayConfig {
            failure: FailurePolicy::with_error_rate(0.3),
            ..RelayConfig::default()
        };
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 20);
            ex2.prepare(ctx, 4, 4).expect("prepare");
            for m in 0..4usize {
                let parts = (0..4).map(|_| Bytes::from(vec![1u8; 64])).collect();
                ex2.write_partitions(ctx, &env, m, parts)
                    .expect("writes survive 30% faults");
            }
            for m in 0..4usize {
                for j in 0..4usize {
                    ex2.read_partition(ctx, &env, m, j)
                        .expect("reads survive 30% faults");
                }
            }
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn crash_is_permanent_and_loses_data() {
        let mut sim = Sim::new();
        let cfg = RelayConfig {
            crash_after_requests: Some(3),
            ..RelayConfig::default()
        };
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 5);
            ex2.prepare(ctx, 1, 4).expect("prepare");
            let parts = (0..4).map(|_| Bytes::from(vec![1u8; 16])).collect();
            let err = ex2
                .write_partitions(ctx, &env, 0, parts)
                .expect_err("crash kills the exchange");
            assert_eq!(err, ExchangeError::RelayDown { op: "PUT" });
            // Retries cannot resurrect a dead relay.
            let err = ex2.read_partition(ctx, &env, 0, 0).expect_err("still down");
            assert_eq!(err, ExchangeError::RelayDown { op: "GET" });
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn unprepared_relay_is_rejected() {
        let mut sim = Sim::new();
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), RelayConfig::default()));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            let err = ex2
                .write_partitions(ctx, &env, 0, vec![Bytes::from("x")])
                .expect_err("not prepared");
            assert_eq!(
                err,
                ExchangeError::NotPrepared {
                    backend: "vm-relay"
                }
            );
        });
        sim.run().expect("sim ok");
    }
}
