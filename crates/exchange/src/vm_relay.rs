//! A Pocket-style in-memory relay hosted on a simulated VM.
//!
//! The per-VM mechanics — provisioning lifecycle, request overhead with
//! failure injection, memory capacity with disk spill — live in
//! [`RelayShard`] so that [`ShardedRelayExchange`](crate::ShardedRelayExchange)
//! can run N of them behind one exchange. [`VmRelayExchange`] is the
//! single-shard backend from the paper's comparison.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use faaspipe_des::{Bandwidth, ByteSize, Ctx, LinkId, LocalBoxFuture, ProcessId, SimDuration};
use faaspipe_store::failure::Fate;
use faaspipe_store::FailurePolicy;
use faaspipe_trace::{Category, SpanId, TraceSink};
use faaspipe_vm::{VmFleet, VmInstance, VmProfile};
use parking_lot::Mutex;

use crate::api::{DataExchange, ExchangeEnv};
use crate::error::ExchangeError;
use crate::retry::with_retry_async;

/// Tuning of the [`VmRelayExchange`] (and, per shard, of the
/// [`ShardedRelayExchange`](crate::ShardedRelayExchange)).
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// VM shape the relay runs on (provisioning delay, NIC, billing).
    pub profile: VmProfile,
    /// Fixed overhead per relay request. An in-memory key/value server
    /// answers far faster than COS's first-byte latency — that is the
    /// relay's selling point.
    pub request_latency: SimDuration,
    /// In-memory capacity; objects past it spill to local disk.
    pub memory_capacity: ByteSize,
    /// Local-disk bandwidth paid on top of the network for spilled
    /// objects (once on write, once on every read).
    pub disk_bw: Bandwidth,
    /// Wire-size scale factor, mirroring
    /// [`StoreConfig::size_scale`](faaspipe_store::StoreConfig::size_scale)
    /// so modelled datasets load both paths equally.
    pub size_scale: f64,
    /// Probabilistic fault injection on relay requests. Failed requests
    /// are transient ([`ExchangeError::RelayUnavailable`]) and retried.
    pub failure: FailurePolicy,
    /// When set, the relay VM crashes irrecoverably after this many
    /// requests, losing its contents: subsequent requests fail with the
    /// non-retryable [`ExchangeError::RelayDown`].
    pub crash_after_requests: Option<u64>,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            profile: VmProfile::bx2_8x32(),
            request_latency: SimDuration::from_millis(2),
            memory_capacity: ByteSize::gib(24),
            disk_bw: Bandwidth::mib_per_sec(350.0),
            size_scale: 1.0,
            failure: FailurePolicy::none(),
            crash_after_requests: None,
        }
    }
}

/// One object held by the relay.
#[derive(Debug)]
struct StoredPart {
    data: Bytes,
    /// Scaled wire size (what moved over the network).
    wire: u64,
    /// Whether the object lives on the relay's disk instead of memory.
    spilled: bool,
}

#[derive(Debug, Default)]
struct RelayState {
    vm: Option<VmInstance>,
    /// Provisioner process to [`Ctx::join`] while the VM boots. This is
    /// the double-provisioning guard: a second `prepare` caller that
    /// arrives during the 44 s boot finds the in-flight provisioner
    /// here and waits on it instead of provisioning (and billing) a
    /// second VM.
    provisioning: Option<ProcessId>,
    objects: BTreeMap<(usize, usize), StoredPart>,
    /// Scaled bytes currently held in memory.
    mem_used: u64,
    /// Total requests served (drives `crash_after_requests`).
    requests: u64,
    crashed: bool,
}

/// One relay VM plus its object table: the unit of sharding.
///
/// [`VmRelayExchange`] wraps a single shard; the sharded exchange routes
/// partitions across many. All virtual-time charging (provisioning,
/// request latency, NIC transfers, disk spill) happens here so the two
/// backends cannot drift apart.
///
/// Cloning a shard is cheap and shares the underlying VM/object table —
/// the windowed read/write paths clone it into fan-out children.
#[derive(Clone)]
pub(crate) struct RelayShard {
    fleet: VmFleet,
    cfg: Arc<RelayConfig>,
    trace: TraceSink,
    /// Key prefix / trace lane: `"relay"` or `"relay-03"`.
    label: String,
    /// Backend name reported in [`ExchangeError::NotPrepared`].
    backend: &'static str,
    /// `"{label}.mem_bytes"` / `"{label}.spilled_bytes"`, precomputed —
    /// the put path is hot.
    mem_gauge: String,
    spill_counter: String,
    /// Shared with the provisioner process, which stores the booted VM.
    state: Arc<Mutex<RelayState>>,
}

impl RelayShard {
    pub(crate) fn new(
        fleet: VmFleet,
        cfg: Arc<RelayConfig>,
        label: String,
        backend: &'static str,
    ) -> RelayShard {
        RelayShard {
            fleet,
            cfg,
            trace: TraceSink::default(),
            mem_gauge: format!("{}.mem_bytes", label),
            spill_counter: format!("{}.spilled_bytes", label),
            label,
            backend,
            state: Arc::new(Mutex::new(RelayState::default())),
        }
    }

    pub(crate) fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    #[cfg(test)]
    pub(crate) fn label(&self) -> &str {
        &self.label
    }

    fn scaled(&self, real_len: usize) -> u64 {
        (real_len as f64 * self.cfg.size_scale).round() as u64
    }

    /// Starts this shard's VM boot unless one is ready or already in
    /// flight. Returns the provisioner to [`Ctx::join`] on, or `None`
    /// when the VM is already usable. With `background` the boot goes
    /// through [`VmFleet::provision_prewarmed`] so an overlapped boot
    /// does not claim the critical path — the residual wait is
    /// attributed where a request actually blocks
    /// ([`RelayShard::await_ready`]).
    pub(crate) async fn begin_provision(&self, ctx: &Ctx, background: bool) -> Option<ProcessId> {
        {
            let state = self.state.lock();
            if state.vm.is_some() {
                return None;
            }
            if let Some(pid) = state.provisioning {
                return Some(pid);
            }
        }
        // Between the check above and the bookkeeping below nothing
        // yields to the scheduler except the spawn rendezvous itself
        // (`spawn_task` replies without advancing virtual time or
        // running the child), so a second process cannot slip in and
        // start a duplicate boot.
        let fleet = self.fleet.clone();
        let profile = self.cfg.profile.clone();
        let shared = Arc::clone(&self.state);
        let trace = self.trace.clone();
        let parent = trace.current(ctx.pid());
        let pid = ctx
            .spawn_task(format!("{}/provision", self.label), move |pctx: Ctx| {
                async move {
                    // Parent the fleet's spans to whoever kicked the boot off.
                    trace.enter(pctx.pid(), parent);
                    let vm = if background {
                        fleet.provision_prewarmed_async(&pctx, profile).await
                    } else {
                        fleet.provision_async(&pctx, profile).await
                    };
                    trace.exit(pctx.pid());
                    let mut state = shared.lock();
                    state.vm = Some(vm);
                    state.provisioning = None;
                }
            })
            .await;
        self.state.lock().provisioning = Some(pid);
        Some(pid)
    }

    /// Blocks until the shard's VM is usable when a boot is in flight,
    /// charging the wait to the critical path as a cold start (this is
    /// the part of a pre-warmed boot that foreground work could *not*
    /// hide).
    pub(crate) async fn await_ready(&self, ctx: &Ctx) {
        let pending = { self.state.lock().provisioning };
        let Some(pid) = pending else { return };
        let span = if self.trace.is_enabled() {
            let parent = self.trace.current(ctx.pid());
            self.trace.span_start(
                Category::ColdStart,
                "relay-wait",
                "relay",
                &self.label,
                parent,
                ctx.now(),
            )
        } else {
            SpanId::NONE
        };
        let _ = ctx.join_async(pid).await;
        self.trace.span_end(span, ctx.now());
    }

    /// Charges the fixed request overhead and bumps the request counter.
    /// Returns the relay's NIC. A request against a dead or absent relay
    /// still pays the round-trip latency before the failure is observed
    /// — retry storms against a crashed relay are not free.
    async fn request_overhead(
        &self,
        ctx: &mut Ctx,
        op: &'static str,
    ) -> Result<LinkId, ExchangeError> {
        self.await_ready(ctx).await;
        let outcome = {
            let mut state = self.state.lock();
            if state.crashed {
                Err(ExchangeError::RelayDown { op })
            } else if let Some(nic) = state.vm.as_ref().map(|vm| vm.nic) {
                state.requests += 1;
                match self.cfg.crash_after_requests {
                    Some(limit) if state.requests > limit => {
                        // The relay process dies and its memory is gone.
                        state.crashed = true;
                        state.objects.clear();
                        state.mem_used = 0;
                        Err(ExchangeError::RelayDown { op })
                    }
                    _ => Ok(nic),
                }
            } else {
                Err(ExchangeError::NotPrepared {
                    backend: self.backend,
                })
            }
        };
        let nic = match outcome {
            Ok(nic) => nic,
            Err(e) => {
                // The caller learns of the failure only after the wire
                // round-trip (a dead relay looks like a timeout).
                ctx.sleep_async(self.cfg.request_latency).await;
                return Err(e);
            }
        };
        let fate = self.cfg.failure.draw(ctx.rng());
        let latency = match fate {
            Fate::Slow(factor) => self.cfg.request_latency.mul_f64(factor),
            _ => self.cfg.request_latency,
        };
        ctx.sleep_async(latency).await;
        if matches!(fate, Fate::Fail) {
            return Err(ExchangeError::RelayUnavailable { op });
        }
        Ok(nic)
    }

    fn span_begin(
        &self,
        ctx: &Ctx,
        op: &'static str,
        tag: &str,
        key: Option<(usize, usize)>,
    ) -> SpanId {
        if !self.trace.is_enabled() {
            return SpanId::NONE;
        }
        let parent = self.trace.current(ctx.pid());
        let span =
            self.trace
                .span_start(Category::StoreRequest, op, "relay", tag, parent, ctx.now());
        if let Some((map, part)) = key {
            self.trace.attr(
                span,
                "key",
                format!("{}/{:05}/{:05}", self.label, map, part),
            );
        }
        span
    }

    fn span_end(&self, ctx: &Ctx, span: SpanId, bytes: u64, failed: bool) {
        if span.is_none() {
            return;
        }
        if bytes > 0 {
            self.trace.attr(span, "bytes", bytes);
        }
        if failed {
            self.trace.attr(span, "failed", true);
        }
        self.trace.span_end(span, ctx.now());
    }

    /// Moves `wire` scaled bytes between the caller and the relay,
    /// recording a flow span.
    async fn transfer(&self, ctx: &Ctx, env: &ExchangeEnv, nic: LinkId, wire: u64, parent: SpanId) {
        let mut links = env.host_links.clone();
        links.push(nic);
        let flow = if self.trace.is_enabled() {
            let flow =
                self.trace
                    .span_start(Category::Flow, "xfer", "relay", &env.tag, parent, ctx.now());
            self.trace.attr(flow, "wire_bytes", wire);
            flow
        } else {
            SpanId::NONE
        };
        ctx.transfer_async(ByteSize::new(wire), &links).await;
        if !flow.is_none() {
            self.trace.span_end(flow, ctx.now());
        }
    }

    pub(crate) async fn put_part(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        part: usize,
        data: &Bytes,
    ) -> Result<(), ExchangeError> {
        let span = self.span_begin(ctx, "PUT", &env.tag, Some((map, part)));
        let nic = match self.request_overhead(ctx, "PUT").await {
            Ok(nic) => nic,
            Err(e) => {
                self.span_end(ctx, span, 0, true);
                return Err(e);
            }
        };
        let wire = self.scaled(data.len());
        self.transfer(ctx, env, nic, wire, span).await;
        let spilled = {
            let mut state = self.state.lock();
            // Idempotent overwrite: drop the old copy's accounting first.
            if let Some(old) = state.objects.remove(&(map, part)) {
                if !old.spilled {
                    state.mem_used -= old.wire;
                }
            }
            let spilled = state.mem_used + wire > self.cfg.memory_capacity.as_u64();
            if !spilled {
                state.mem_used += wire;
            }
            state.objects.insert(
                (map, part),
                StoredPart {
                    data: data.clone(),
                    wire,
                    spilled,
                },
            );
            if self.trace.is_enabled() {
                self.trace
                    .gauge(&self.mem_gauge, ctx.now(), state.mem_used as f64);
                if spilled {
                    self.trace.add(&self.spill_counter, ctx.now(), wire as f64);
                    // Marks the request for the calibrator: its span
                    // duration includes a disk pass on top of the wire.
                    self.trace.attr(span, "spilled", true);
                }
            }
            spilled
        };
        if spilled {
            ctx.sleep_async(self.cfg.disk_bw.transfer_time(ByteSize::new(wire)))
                .await;
        }
        self.span_end(ctx, span, wire, false);
        Ok(())
    }

    pub(crate) async fn get_part(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        part: usize,
    ) -> Result<Bytes, ExchangeError> {
        let span = self.span_begin(ctx, "GET", &env.tag, Some((map, part)));
        let nic = match self.request_overhead(ctx, "GET").await {
            Ok(nic) => nic,
            Err(e) => {
                self.span_end(ctx, span, 0, true);
                return Err(e);
            }
        };
        let (data, wire, spilled) = {
            let state = self.state.lock();
            match state.objects.get(&(map, part)) {
                Some(p) => (p.data.clone(), p.wire, p.spilled),
                None => {
                    drop(state);
                    self.span_end(ctx, span, 0, true);
                    return Err(ExchangeError::MissingPartition { map, part });
                }
            }
        };
        if spilled {
            self.trace.attr(span, "spilled", true);
            ctx.sleep_async(self.cfg.disk_bw.transfer_time(ByteSize::new(wire)))
                .await;
        }
        self.transfer(ctx, env, nic, wire, span).await;
        self.span_end(ctx, span, wire, false);
        Ok(data)
    }

    /// Lists this shard's objects as one metered relay request: it
    /// requires a live VM, bumps the request counter (so it can trip
    /// `crash_after_requests`), and is subject to failure injection —
    /// exactly like PUT/GET.
    pub(crate) async fn list_keys(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
    ) -> Result<Vec<String>, ExchangeError> {
        let span = self.span_begin(ctx, "LIST", &env.tag, None);
        if let Err(e) = self.request_overhead(ctx, "LIST").await {
            self.span_end(ctx, span, 0, true);
            return Err(e);
        }
        let keys: Vec<String> = self
            .state
            .lock()
            .objects
            .keys()
            .map(|(m, j)| format!("{}/{:05}/{:05}", self.label, m, j))
            .collect();
        self.span_end(ctx, span, 0, false);
        Ok(keys)
    }

    /// Waits out any in-flight boot (releasing mid-boot would leak the
    /// billing record), clears the object table, and releases the VM.
    pub(crate) async fn shutdown(&self, ctx: &Ctx) {
        self.await_ready(ctx).await;
        let vm = {
            let mut state = self.state.lock();
            state.objects.clear();
            state.mem_used = 0;
            state.provisioning = None;
            state.vm.take()
        };
        if let Some(vm) = vm {
            // Billing stops here; unreleased (crashed mid-run) relays
            // keep billing to the end checkpoint, like real forgotten
            // VMs.
            self.fleet.release(ctx, vm);
        }
        if self.trace.is_enabled() {
            self.trace.gauge(&self.mem_gauge, ctx.now(), 0.0);
        }
    }

    pub(crate) fn debug_entry(&self, f: &mut std::fmt::DebugStruct<'_, '_>) {
        let state = self.state.lock();
        f.field("label", &self.label)
            .field("objects", &state.objects.len())
            .field("mem_used", &state.mem_used)
            .field("crashed", &state.crashed);
    }

    #[cfg(test)]
    pub(crate) fn mem_used(&self) -> u64 {
        self.state.lock().mem_used
    }

    #[cfg(test)]
    pub(crate) fn object_count(&self) -> usize {
        self.state.lock().objects.len()
    }

    #[cfg(test)]
    pub(crate) fn is_spilled(&self, map: usize, part: usize) -> Option<bool> {
        self.state
            .lock()
            .objects
            .get(&(map, part))
            .map(|p| p.spilled)
    }
}

/// Exchange through an in-memory relay server on a provisioned VM — the
/// Pocket/ephemeral-storage point in the design space.
///
/// [`prepare`](DataExchange::prepare) provisions the VM through the
/// [`VmFleet`] (charging the profile's provisioning delay and starting
/// its billing clock); concurrent `prepare` callers share the one boot.
/// [`cleanup`](DataExchange::cleanup) releases it. Every request pays a
/// small fixed latency plus a fluid-flow transfer that contends for the
/// caller's NIC **and** the relay VM's NIC — at high fan-in, the single
/// relay NIC is the bottleneck the paper's VM-driven exchange runs into
/// (see [`ShardedRelayExchange`](crate::ShardedRelayExchange) for the
/// scale-out counterfactual). Objects beyond `memory_capacity` spill to
/// the VM's disk and pay `disk_bw` on both sides.
pub struct VmRelayExchange {
    shard: RelayShard,
}

impl std::fmt::Debug for VmRelayExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("VmRelayExchange");
        d.field("cfg", &self.shard.cfg);
        self.shard.debug_entry(&mut d);
        d.finish()
    }
}

impl VmRelayExchange {
    /// Creates a relay backend provisioning through `fleet`.
    pub fn new(fleet: VmFleet, cfg: RelayConfig) -> VmRelayExchange {
        VmRelayExchange {
            shard: RelayShard::new(fleet, Arc::new(cfg), "relay".to_string(), "vm-relay"),
        }
    }

    /// Routes the relay's request spans and gauges to `sink`.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.shard.set_trace(sink);
        self
    }
}

/// Windowed relay PUTs: runs one retried [`RelayShard::put_part`] per
/// item in child processes, at most `env.io_window` in flight. Items
/// carry their target shard so the sharded backend can mix shards in
/// one batch. Request spans parent to the caller's current span.
pub(crate) async fn relay_puts_windowed(
    ctx: &mut Ctx,
    env: &ExchangeEnv,
    items: Vec<(RelayShard, usize, usize, Bytes)>,
) -> Result<(), ExchangeError> {
    let Some((first, ..)) = items.first() else {
        return Ok(());
    };
    let trace = first.trace.clone();
    let parent = trace.current(ctx.pid());
    let name = format!("{}-put", env.tag);
    let jobs: Vec<_> = items
        .into_iter()
        .map(|(shard, map, part, data)| {
            let env = env.clone();
            let trace = trace.clone();
            async move |cctx: &mut Ctx| {
                trace.enter(cctx.pid(), parent);
                let res: Result<(), ExchangeError> =
                    with_retry_async(cctx, env.retries, async |c: &mut Ctx| {
                        shard.put_part(c, &env, map, part, &data).await
                    })
                    .await;
                trace.exit(cctx.pid());
                res
            }
        })
        .collect();
    ctx.fan_out_async(&name, env.io_window, jobs)
        .await
        .unwrap_or_else(|e| panic!("windowed relay write crashed: {}", e))
        .into_iter()
        .collect::<Result<Vec<()>, ExchangeError>>()?;
    Ok(())
}

/// Windowed relay GETs: one retried [`RelayShard::get_part`] per item,
/// at most `env.io_window` in flight; payloads return in item order.
pub(crate) async fn relay_gets_windowed(
    ctx: &mut Ctx,
    env: &ExchangeEnv,
    items: Vec<(RelayShard, usize, usize)>,
) -> Result<Vec<Bytes>, ExchangeError> {
    let Some((first, ..)) = items.first() else {
        return Ok(Vec::new());
    };
    let trace = first.trace.clone();
    let parent = trace.current(ctx.pid());
    let name = format!("{}-get", env.tag);
    let jobs: Vec<_> = items
        .into_iter()
        .map(|(shard, map, part)| {
            let env = env.clone();
            let trace = trace.clone();
            async move |cctx: &mut Ctx| {
                trace.enter(cctx.pid(), parent);
                let res: Result<Bytes, ExchangeError> =
                    with_retry_async(cctx, env.retries, async |c: &mut Ctx| {
                        shard.get_part(c, &env, map, part).await
                    })
                    .await;
                trace.exit(cctx.pid());
                res
            }
        })
        .collect();
    ctx.fan_out_async(&name, env.io_window, jobs)
        .await
        .unwrap_or_else(|e| panic!("windowed relay read crashed: {}", e))
        .into_iter()
        .collect()
}

impl DataExchange for VmRelayExchange {
    fn name(&self) -> &'static str {
        "vm-relay"
    }

    fn prepare_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        _maps: usize,
        _parts: usize,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        Box::pin(async move {
            // Provisioning charges the profile's delay and opens the VM's
            // billing + trace spans through the fleet. The boot runs in a
            // provisioner process so that every concurrent caller — not
            // just the first — waits on the *same* VM instead of racing to
            // provision its own.
            if let Some(pid) = self.shard.begin_provision(ctx, false).await {
                let _ = ctx.join_async(pid).await;
            }
            Ok(())
        })
    }

    fn write_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>> {
        Box::pin(async move {
            let written = parts.iter().map(|d| d.len() as u64).sum();
            if env.io_window > 1 && parts.len() > 1 {
                let items = parts
                    .into_iter()
                    .enumerate()
                    .map(|(j, data)| (self.shard.clone(), map, j, data))
                    .collect();
                relay_puts_windowed(ctx, env, items).await?;
                return Ok(written);
            }
            for (j, data) in parts.into_iter().enumerate() {
                with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                    self.shard.put_part(c, env, map, j, &data).await
                })
                .await?;
            }
            Ok(written)
        })
    }

    fn read_partition_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Bytes, ExchangeError>> {
        Box::pin(async move {
            with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                self.shard.get_part(c, env, map, part).await
            })
            .await
        })
    }

    fn read_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        reqs: &'a [(usize, usize)],
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            if env.io_window <= 1 || reqs.len() <= 1 {
                let mut out = Vec::with_capacity(reqs.len());
                for &(map, part) in reqs {
                    out.push(self.read_partition_async(ctx, env, map, part).await?);
                }
                return Ok(out);
            }
            let items = reqs
                .iter()
                .map(|&(map, part)| (self.shard.clone(), map, part))
                .collect();
            relay_gets_windowed(ctx, env, items).await
        })
    }

    fn list_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<Vec<String>, ExchangeError>> {
        Box::pin(async move { self.shard.list_keys(ctx, env).await })
    }

    fn cleanup_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        _env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        Box::pin(async move {
            self.shard.shutdown(ctx).await;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;

    fn driver_env() -> ExchangeEnv {
        ExchangeEnv::driver("test", 3)
    }

    #[test]
    fn roundtrips_partitions_and_bills_the_vm() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let ex = Arc::new(VmRelayExchange::new(fleet.clone(), RelayConfig::default()));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 2, 2).expect("prepare");
            assert_eq!(ctx.now().as_secs_f64(), 44.0, "provisioning charged");
            for m in 0..2usize {
                let parts = vec![Bytes::from(vec![m as u8; 100]), Bytes::from(vec![0u8; 50])];
                let written = ex2.write_partitions(ctx, &env, m, parts).expect("write");
                assert_eq!(written, 150);
            }
            assert_eq!(
                ex2.list(ctx, &env).expect("list"),
                vec![
                    "relay/00000/00000",
                    "relay/00000/00001",
                    "relay/00001/00000",
                    "relay/00001/00001"
                ]
            );
            let data = ex2.read_partition(ctx, &env, 1, 0).expect("read");
            assert_eq!(data, Bytes::from(vec![1u8; 100]));
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        let records = fleet.records();
        assert_eq!(records.len(), 1, "one relay VM provisioned");
        assert!(records[0].released.is_some(), "cleanup released it");
    }

    /// Regression (lifecycle bug 1): two processes calling `prepare`
    /// concurrently used to both observe `vm: None`, both provision,
    /// and double-bill — one VM leaked unreleased. The in-flight guard
    /// must make the second caller wait on the first boot.
    #[test]
    fn concurrent_prepares_provision_exactly_one_vm() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let ex = Arc::new(VmRelayExchange::new(fleet.clone(), RelayConfig::default()));
        for name in ["worker-a", "worker-b"] {
            let ex2 = Arc::clone(&ex);
            sim.spawn(name, move |ctx| {
                ex2.prepare(ctx, 2, 2).expect("prepare");
                assert_eq!(
                    ctx.now().as_secs_f64(),
                    44.0,
                    "both callers resume when the shared VM is ready"
                );
            });
        }
        sim.run().expect("sim ok");
        assert_eq!(fleet.records().len(), 1, "exactly one VM provisioned");
    }

    /// Regression (lifecycle bug 2): `list` used to answer before
    /// `prepare` (returning `Ok(vec![])` instead of `NotPrepared`) and
    /// bypassed the request counter, so it could never trip
    /// `crash_after_requests`. It must be metered like PUT/GET.
    #[test]
    fn list_requires_prepare_and_counts_toward_crash() {
        let mut sim = Sim::new();
        let cfg = RelayConfig {
            crash_after_requests: Some(2),
            ..RelayConfig::default()
        };
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            let err = ex2.list(ctx, &env).expect_err("list before prepare");
            assert_eq!(
                err,
                ExchangeError::NotPrepared {
                    backend: "vm-relay"
                }
            );
            ex2.prepare(ctx, 1, 1).expect("prepare");
            ex2.write_partitions(ctx, &env, 0, vec![Bytes::from("x")])
                .expect("request 1");
            assert_eq!(ex2.list(ctx, &env).expect("request 2").len(), 1);
            let err = ex2.list(ctx, &env).expect_err("request 3 trips the crash");
            assert_eq!(err, ExchangeError::RelayDown { op: "LIST" });
        });
        sim.run().expect("sim ok");
    }

    /// Regression (lifecycle bug 3): failure paths in the request
    /// overhead used to return before `ctx.sleep(request_latency)`, so
    /// retry storms against a crashed (or never-prepared) relay cost
    /// nothing in virtual time. A caller must pay the round-trip before
    /// observing the failure.
    #[test]
    fn requests_against_a_dead_relay_still_pay_latency() {
        let mut sim = Sim::new();
        let cfg = RelayConfig {
            crash_after_requests: Some(0),
            ..RelayConfig::default()
        };
        let latency = cfg.request_latency.as_secs_f64();
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
        let unprepared = Arc::new(VmRelayExchange::new(VmFleet::new(), RelayConfig::default()));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 1);
            ex2.prepare(ctx, 1, 1).expect("prepare");
            let before = ctx.now();
            let err = ex2
                .read_partition(ctx, &env, 0, 0)
                .expect_err("first request crashes the relay");
            assert_eq!(err, ExchangeError::RelayDown { op: "GET" });
            let paid = ctx.now().saturating_duration_since(before).as_secs_f64();
            assert!(
                (paid - latency).abs() < 1e-9,
                "crashing request paid {}s, want the {}s round-trip",
                paid,
                latency
            );
            let before = ctx.now();
            let err = ex2
                .read_partition(ctx, &env, 0, 0)
                .expect_err("relay stays down");
            assert_eq!(err, ExchangeError::RelayDown { op: "GET" });
            let paid = ctx.now().saturating_duration_since(before).as_secs_f64();
            assert!(
                (paid - latency).abs() < 1e-9,
                "dead-relay request paid {}s, want {}s",
                paid,
                latency
            );
            // NotPrepared pays the round-trip too.
            let before = ctx.now();
            unprepared
                .write_partitions(ctx, &env, 0, vec![Bytes::from("x")])
                .expect_err("not prepared");
            let paid = ctx.now().saturating_duration_since(before).as_secs_f64();
            assert!(
                (paid - latency).abs() < 1e-9,
                "unprepared request paid {}s, want {}s",
                paid,
                latency
            );
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn over_capacity_objects_spill_to_disk_and_cost_more() {
        fn read_time(capacity: ByteSize) -> f64 {
            let mut sim = Sim::new();
            let cfg = RelayConfig {
                memory_capacity: capacity,
                ..RelayConfig::default()
            };
            let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
            let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
            let out2 = Arc::clone(&out);
            let ex2 = Arc::clone(&ex);
            sim.spawn("driver", move |ctx| {
                let env = driver_env();
                ex2.prepare(ctx, 1, 1).expect("prepare");
                let blob = Bytes::from(vec![7u8; 8 * 1024 * 1024]);
                ex2.write_partitions(ctx, &env, 0, vec![blob])
                    .expect("write");
                let before = ctx.now();
                ex2.read_partition(ctx, &env, 0, 0).expect("read");
                *out2.lock() = ctx.now().saturating_duration_since(before).as_secs_f64();
            });
            sim.run().expect("sim ok");
            let took = *out.lock();
            took
        }
        let in_memory = read_time(ByteSize::gib(1));
        let spilled = read_time(ByteSize::new(1024));
        // 8 MiB at 350 MiB/s disk ≈ 23 ms extra.
        assert!(
            spilled > in_memory + 0.02,
            "spilled read {} must exceed in-memory {} by the disk time",
            spilled,
            in_memory
        );
    }

    /// Overwrites must keep the memory ledger exact whichever side of
    /// the spill boundary the old and new copies land on: a spilled
    /// object's re-write cannot double-free memory it never held, and a
    /// resident object's re-write frees its bytes before re-admitting.
    #[test]
    fn overwriting_a_spilled_object_keeps_accounting_exact() {
        let mut sim = Sim::new();
        let cfg = RelayConfig {
            memory_capacity: ByteSize::new(100),
            ..RelayConfig::default()
        };
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 1, 2).expect("prepare");
            let put = |ctx: &mut Ctx, part: usize, len: usize| {
                let env = driver_env();
                let data = Bytes::from(vec![9u8; len]);
                faaspipe_des::run_blocking(ex2.shard.put_part(ctx, &env, 0, part, &data))
                    .expect("put");
            };
            let _ = env;
            put(ctx, 0, 100); // fills memory exactly
            assert_eq!(ex2.shard.mem_used(), 100);
            assert_eq!(ex2.shard.is_spilled(0, 0), Some(false));
            put(ctx, 1, 80); // over capacity → disk
            assert_eq!(ex2.shard.mem_used(), 100, "spill leaves memory untouched");
            assert_eq!(ex2.shard.is_spilled(0, 1), Some(true));
            put(ctx, 1, 80); // overwrite of the spilled copy
            assert_eq!(ex2.shard.mem_used(), 100, "no double-free of spilled bytes");
            assert_eq!(ex2.shard.is_spilled(0, 1), Some(true));
            put(ctx, 0, 60); // resident overwrite shrinks the ledger
            assert_eq!(ex2.shard.mem_used(), 60);
            put(ctx, 1, 40); // now fits: the spilled key comes back resident
            assert_eq!(ex2.shard.mem_used(), 100);
            assert_eq!(ex2.shard.is_spilled(0, 1), Some(false));
            assert_eq!(ex2.shard.object_count(), 2);
        });
        sim.run().expect("sim ok");
    }

    /// The `relay.mem_bytes` gauge must never exceed the configured
    /// capacity (overwrites included) and must return to zero on
    /// cleanup.
    #[test]
    fn mem_gauge_stays_within_capacity_and_resets_on_cleanup() {
        let mut sim = Sim::new();
        let capacity = 100u64;
        let cfg = RelayConfig {
            memory_capacity: ByteSize::new(capacity),
            ..RelayConfig::default()
        };
        let sink = TraceSink::recording();
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg).with_trace(sink.clone()));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            ex2.prepare(ctx, 2, 2).expect("prepare");
            for round in 0..3usize {
                for m in 0..2usize {
                    let parts = vec![
                        Bytes::from(vec![round as u8; 40]),
                        Bytes::from(vec![round as u8; 35]),
                    ];
                    ex2.write_partitions(ctx, &env, m, parts).expect("write");
                }
            }
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        let data = sink.snapshot();
        let series = data.counter("relay.mem_bytes").expect("gauge recorded");
        assert!(
            series
                .points
                .iter()
                .all(|&(_, v)| v >= 0.0 && v <= capacity as f64),
            "gauge must stay within [0, capacity]: {:?}",
            series.points
        );
        assert_eq!(series.last_value(), 0.0, "cleanup resets the gauge");
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let mut sim = Sim::new();
        let cfg = RelayConfig {
            failure: FailurePolicy::with_error_rate(0.3),
            ..RelayConfig::default()
        };
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 20);
            ex2.prepare(ctx, 4, 4).expect("prepare");
            for m in 0..4usize {
                let parts = (0..4).map(|_| Bytes::from(vec![1u8; 64])).collect();
                ex2.write_partitions(ctx, &env, m, parts)
                    .expect("writes survive 30% faults");
            }
            for m in 0..4usize {
                for j in 0..4usize {
                    ex2.read_partition(ctx, &env, m, j)
                        .expect("reads survive 30% faults");
                }
            }
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn crash_is_permanent_and_loses_data() {
        let mut sim = Sim::new();
        let cfg = RelayConfig {
            crash_after_requests: Some(3),
            ..RelayConfig::default()
        };
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), cfg));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 5);
            ex2.prepare(ctx, 1, 4).expect("prepare");
            let parts = (0..4).map(|_| Bytes::from(vec![1u8; 16])).collect();
            let err = ex2
                .write_partitions(ctx, &env, 0, parts)
                .expect_err("crash kills the exchange");
            assert_eq!(err, ExchangeError::RelayDown { op: "PUT" });
            // Retries cannot resurrect a dead relay.
            let err = ex2.read_partition(ctx, &env, 0, 0).expect_err("still down");
            assert_eq!(err, ExchangeError::RelayDown { op: "GET" });
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn unprepared_relay_is_rejected() {
        let mut sim = Sim::new();
        let ex = Arc::new(VmRelayExchange::new(VmFleet::new(), RelayConfig::default()));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = driver_env();
            let err = ex2
                .write_partitions(ctx, &env, 0, vec![Bytes::from("x")])
                .expect_err("not prepared");
            assert_eq!(
                err,
                ExchangeError::NotPrepared {
                    backend: "vm-relay"
                }
            );
        });
        sim.run().expect("sim ok");
    }
}
