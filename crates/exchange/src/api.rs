//! The [`DataExchange`] trait and backend selection types.

use std::fmt;
use std::str::FromStr;

use bytes::Bytes;
use faaspipe_des::{run_blocking, Ctx, LinkId, LocalBoxFuture};

use crate::error::{ExchangeError, ExchangeParseError, ExchangeParseIssue};

/// How an object-store backend lays intermediates out across keys.
///
/// `Scatter` is the naive pattern: W² small objects. `Coalesced` is the
/// Primula-style I/O optimization: each mapper writes **one** object with
/// its partitions concatenated, and reducers issue byte-range GETs — the
/// same data volume with W× fewer class-A (write) requests and one
/// request-latency hit per mapper instead of W.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeStrategy {
    /// One object per (mapper, reducer) pair.
    #[default]
    Scatter,
    /// One object per mapper; reducers range-read their slice.
    Coalesced,
}

/// The full exchange-backend menu a pipeline stage can pick from: the
/// two object-store layouts plus the VM-relay and direct-streaming
/// backends. This is the value that flows through DAG specs, pipeline
/// configs, and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeKind {
    /// Object store, one object per (mapper, reducer) pair.
    #[default]
    Scatter,
    /// Object store, one coalesced object per mapper.
    Coalesced,
    /// Pocket-style in-memory relay on a provisioned VM.
    VmRelay,
    /// Rendezvous function-to-function streaming.
    Direct,
    /// A fleet of relay VMs with hashed partition routing; `prewarm`
    /// overlaps provisioning with the caller's next phase.
    ShardedRelay {
        /// Number of relay VMs (clamped to at least 1).
        shards: usize,
        /// Boot the shards in the background instead of blocking
        /// `prepare`.
        prewarm: bool,
    },
    /// Let the planner (`faaspipe-plan`) pick the backend — together
    /// with W, K, and shard count — from its calibrated cost/latency
    /// model. The executor resolves this to one of the concrete kinds
    /// before the stage launches; it never reaches a backend factory.
    Auto,
}

impl ExchangeKind {
    /// Every parameterless kind, in sweep order. `ShardedRelay` takes
    /// parameters and is swept explicitly where needed (E16).
    pub const ALL: [ExchangeKind; 4] = [
        ExchangeKind::Scatter,
        ExchangeKind::Coalesced,
        ExchangeKind::VmRelay,
        ExchangeKind::Direct,
    ];

    /// The base spec-file / CLI spelling, without parameters — see
    /// [`Display`](fmt::Display) for the full round-trippable form
    /// (`sharded_relay:4:prewarm`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExchangeKind::Scatter => "scatter",
            ExchangeKind::Coalesced => "coalesced",
            ExchangeKind::VmRelay => "vm_relay",
            ExchangeKind::Direct => "direct",
            ExchangeKind::ShardedRelay { .. } => "sharded_relay",
            ExchangeKind::Auto => "auto",
        }
    }

    /// The object-store layout this kind implies. Non-store backends
    /// report `Scatter` (the layout is then unused).
    pub fn layout(self) -> ExchangeStrategy {
        match self {
            ExchangeKind::Coalesced => ExchangeStrategy::Coalesced,
            _ => ExchangeStrategy::Scatter,
        }
    }
}

impl fmt::Display for ExchangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ExchangeKind::ShardedRelay { shards, prewarm } => {
                write!(f, "sharded_relay:{}", shards)?;
                if prewarm {
                    f.write_str(":prewarm")?;
                }
                Ok(())
            }
            kind => f.write_str(kind.as_str()),
        }
    }
}

impl FromStr for ExchangeKind {
    type Err = ExchangeParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fail = |issue| {
            Err(ExchangeParseError {
                input: s.to_string(),
                issue,
            })
        };
        match s {
            "scatter" => Ok(ExchangeKind::Scatter),
            "coalesced" => Ok(ExchangeKind::Coalesced),
            "vm_relay" => Ok(ExchangeKind::VmRelay),
            "direct" => Ok(ExchangeKind::Direct),
            "auto" => Ok(ExchangeKind::Auto),
            other => {
                // `sharded_relay[:N][:prewarm]` — e.g. `sharded_relay`,
                // `sharded_relay:8`, `sharded_relay:4:prewarm`.
                let mut parts = other.split(':');
                if parts.next() == Some("sharded_relay") {
                    let mut shards = 4usize;
                    let mut prewarm = false;
                    for part in parts {
                        if part == "prewarm" {
                            prewarm = true;
                        } else if let Ok(n) = part.parse::<usize>() {
                            if n == 0 {
                                return fail(ExchangeParseIssue::ZeroShards);
                            }
                            shards = n;
                        } else {
                            return fail(ExchangeParseIssue::UnknownParameter {
                                parameter: part.to_string(),
                            });
                        }
                    }
                    return Ok(ExchangeKind::ShardedRelay { shards, prewarm });
                }
                fail(ExchangeParseIssue::UnknownKind)
            }
        }
    }
}

impl From<ExchangeStrategy> for ExchangeKind {
    fn from(s: ExchangeStrategy) -> Self {
        match s {
            ExchangeStrategy::Scatter => ExchangeKind::Scatter,
            ExchangeStrategy::Coalesced => ExchangeKind::Coalesced,
        }
    }
}

/// Per-caller context a backend needs to charge the right resources:
/// which NIC links the traffic traverses, how requests are tagged for
/// metrics/billing, and the retry budget.
#[derive(Debug, Clone)]
pub struct ExchangeEnv {
    /// Links on the caller's side of every transfer (e.g. the function
    /// container's NIC). Empty for driver-side calls.
    pub host_links: Vec<LinkId>,
    /// Metrics/billing tag, `"{sort-tag}/{phase}"` by convention.
    pub tag: String,
    /// Attempts per exchange request (fed to
    /// [`with_retry`](crate::with_retry)).
    pub retries: u32,
    /// Maximum concurrent in-flight requests a batched exchange call
    /// ([`DataExchange::read_partitions`], and the batched write paths)
    /// may keep open at once. `1` (the historical behavior) means
    /// strictly sequential requests on the caller's process — backends
    /// must not spawn helpers in that case so request ordering and rng
    /// draws are bit-identical to the pre-windowed code.
    pub io_window: usize,
}

impl ExchangeEnv {
    /// An env for driver-side calls (no NIC, a bare tag, `retries`
    /// attempts, sequential I/O).
    pub fn driver(tag: impl Into<String>, retries: u32) -> ExchangeEnv {
        ExchangeEnv {
            host_links: Vec::new(),
            tag: tag.into(),
            retries,
            io_window: 1,
        }
    }
}

/// An all-to-all intermediate data exchange between W mappers and W
/// reducers.
///
/// The shuffle calls [`prepare`](DataExchange::prepare) once from the
/// driver, then every mapper hands its partition vector to
/// [`write_partitions`](DataExchange::write_partitions), every reducer
/// pulls its column with [`read_partition`](DataExchange::read_partition),
/// and the driver ends with [`cleanup`](DataExchange::cleanup). All
/// methods charge virtual time (latency, bandwidth via the fluid-flow
/// network, provisioning where applicable) and record trace spans; all
/// transient faults are absorbed by the shared retry helper using
/// `env.retries`.
///
/// Implementations must be idempotent under re-invocation: a crashed
/// mapper's re-run re-writes the same partitions, a reducer may read the
/// same partition twice.
///
/// Backends implement the `*_async` methods (returning boxed local
/// futures so the trait stays object-safe); the plain methods are
/// blocking facades over them for thread-backed processes, and resolve
/// eagerly there.
pub trait DataExchange: fmt::Debug + Send + Sync {
    /// A short stable name for traces and tables (e.g. `"cos"`,
    /// `"vm-relay"`, `"direct"`).
    fn name(&self) -> &'static str;

    /// Async form of [`DataExchange::prepare`] for stackless processes.
    fn prepare_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        maps: usize,
        parts: usize,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>>;

    /// Driver-side setup before the map phase: allocates bookkeeping for
    /// a `maps` × `parts` exchange and provisions backing resources (the
    /// VM-relay backend pays its provisioning delay here).
    fn prepare(&self, ctx: &mut Ctx, maps: usize, parts: usize) -> Result<(), ExchangeError> {
        run_blocking(self.prepare_async(ctx, maps, parts))
    }

    /// Async form of [`DataExchange::write_partitions`].
    fn write_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>>;

    /// Stores mapper `map`'s partitions (`parts[j]` goes to reducer
    /// `j`). Returns the number of payload bytes written.
    fn write_partitions(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> Result<u64, ExchangeError> {
        run_blocking(self.write_partitions_async(ctx, env, map, parts))
    }

    /// Async form of [`DataExchange::write_run`]. The default
    /// implementation reconstructs the dense partition vector (cheap
    /// zero-copy [`Bytes::slice`]s of `run`, empty slots for absent
    /// cuts) and delegates to
    /// [`write_partitions_async`](DataExchange::write_partitions_async),
    /// so every backend's store traffic — and therefore its virtual
    /// time — is exactly what the dense write produced. Backends whose
    /// wire format already concatenates the partitions override it to
    /// skip the dense vector entirely.
    fn write_run_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        run: Bytes,
        cuts: Vec<(u32, u64, u64)>,
        parts_len: usize,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>> {
        Box::pin(async move {
            let mut parts = vec![Bytes::new(); parts_len];
            for &(part, off, len) in &cuts {
                parts[part as usize] = run.slice(off as usize..(off + len) as usize);
            }
            self.write_partitions_async(ctx, env, map, parts).await
        })
    }

    /// Stores mapper `map`'s partitions given as one contiguous `run`
    /// buffer plus its sparse cut list: `cuts[i] = (part, offset, len)`
    /// says partition `part` is `run[offset..offset + len]`, cuts are
    /// part-ascending and non-overlapping, and every partition in
    /// `0..parts_len` absent from `cuts` is empty. Equivalent to
    /// [`DataExchange::write_partitions`] with the reconstructed dense
    /// vector — same bytes on the wire, same virtual time — but a
    /// backend that stores the concatenation anyway (the coalesced
    /// object-store layout) does O(cuts) host work instead of
    /// O(parts_len). Returns the number of payload bytes written.
    fn write_run(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        run: Bytes,
        cuts: Vec<(u32, u64, u64)>,
        parts_len: usize,
    ) -> Result<u64, ExchangeError> {
        run_blocking(self.write_run_async(ctx, env, map, run, cuts, parts_len))
    }

    /// Async form of [`DataExchange::read_partition`].
    fn read_partition_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Bytes, ExchangeError>>;

    /// Fetches the partition mapper `map` wrote for reducer `part`.
    fn read_partition(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        map: usize,
        part: usize,
    ) -> Result<Bytes, ExchangeError> {
        run_blocking(self.read_partition_async(ctx, env, map, part))
    }

    /// Async form of [`DataExchange::read_partitions`]. The default
    /// implementation is a sequential loop; backends override it to keep
    /// up to `env.io_window` requests in flight concurrently.
    fn read_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        reqs: &'a [(usize, usize)],
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            let mut out = Vec::with_capacity(reqs.len());
            for &(map, part) in reqs {
                out.push(self.read_partition_async(ctx, env, map, part).await?);
            }
            Ok(out)
        })
    }

    /// Fetches a batch of partitions, `reqs[i] = (map, part)`, returning
    /// the payloads in request order.
    ///
    /// Backends keep up to `env.io_window` requests in flight
    /// concurrently (sharing the caller's NIC links); with
    /// `env.io_window <= 1` every implementation must fall back to the
    /// exact sequential behavior.
    fn read_partitions(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        reqs: &[(usize, usize)],
    ) -> Result<Vec<Bytes>, ExchangeError> {
        run_blocking(self.read_partitions_async(ctx, env, reqs))
    }

    /// Async form of [`DataExchange::read_gather`]. The default
    /// implementation is the dense batch read over `(m, part)` for every
    /// `m < maps` with the zero-length runs dropped afterwards; backends
    /// whose bookkeeping knows which partitions are empty override it to
    /// do work proportional to the *non-empty* runs only.
    fn read_gather_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        maps: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            let reqs: Vec<(usize, usize)> = (0..maps).map(|m| (m, part)).collect();
            let runs = self.read_partitions_async(ctx, env, &reqs).await?;
            Ok(runs.into_iter().filter(|r| !r.is_empty()).collect())
        })
    }

    /// A reducer's whole-column gather: the non-empty runs of partition
    /// `part` from mappers `0..maps`, in ascending mapper order.
    ///
    /// Virtual time is identical to reading the column with
    /// [`DataExchange::read_partitions`] — the same store requests go
    /// out, over the same windowed schedule — but the return value skips
    /// zero-length runs, so a W-wide gather whose column holds k
    /// non-empty partitions costs O(k) host work on backends that
    /// override it, not O(W). Dropping empty runs is merge-neutral: a
    /// k-way merge's output never depends on the empty runs' positions.
    ///
    /// # Errors
    /// [`ExchangeError::MissingPartition`] if any mapper in `0..maps`
    /// never wrote partition `part`.
    fn read_gather(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        maps: usize,
        part: usize,
    ) -> Result<Vec<Bytes>, ExchangeError> {
        run_blocking(self.read_gather_async(ctx, env, maps, part))
    }

    /// Async form of [`DataExchange::list`].
    fn list_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<Vec<String>, ExchangeError>>;

    /// Lists the exchange's current intermediate objects (diagnostic).
    fn list(&self, ctx: &mut Ctx, env: &ExchangeEnv) -> Result<Vec<String>, ExchangeError> {
        run_blocking(self.list_async(ctx, env))
    }

    /// Async form of [`DataExchange::cleanup`].
    fn cleanup_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>>;

    /// Driver-side teardown after the reduce phase: releases backing
    /// resources (the VM-relay backend stops its billing clock here).
    fn cleanup(&self, ctx: &mut Ctx, env: &ExchangeEnv) -> Result<(), ExchangeError> {
        run_blocking(self.cleanup_async(ctx, env))
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::error::EXCHANGE_KIND_FORMS;

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in ExchangeKind::ALL {
            assert_eq!(kind.to_string().parse::<ExchangeKind>().unwrap(), kind);
        }
        assert_eq!("auto".parse::<ExchangeKind>().unwrap(), ExchangeKind::Auto);
        assert_eq!(ExchangeKind::Auto.to_string(), "auto");
        assert!("quantum".parse::<ExchangeKind>().is_err());
    }

    #[test]
    fn parse_errors_list_the_valid_forms() {
        for bad in ["quantum", "sharded_relay:0", "sharded_relay:fast", ""] {
            let err = bad.parse::<ExchangeKind>().unwrap_err();
            assert_eq!(err.input, bad);
            let msg = err.to_string();
            assert!(
                msg.contains(EXCHANGE_KIND_FORMS),
                "error for '{}' must list the valid forms, got: {}",
                bad,
                msg
            );
        }
        assert!("sharded_relay:fast"
            .parse::<ExchangeKind>()
            .unwrap_err()
            .to_string()
            .contains("unknown parameter 'fast'"));
    }

    fn any_kind() -> impl Strategy<Value = ExchangeKind> {
        prop_oneof![
            Just(ExchangeKind::Scatter),
            Just(ExchangeKind::Coalesced),
            Just(ExchangeKind::VmRelay),
            Just(ExchangeKind::Direct),
            Just(ExchangeKind::Auto),
            (1usize..512, any::<bool>())
                .prop_map(|(shards, prewarm)| ExchangeKind::ShardedRelay { shards, prewarm }),
        ]
    }

    proptest! {
        #[test]
        fn display_from_str_round_trips(kind in any_kind()) {
            let text = kind.to_string();
            prop_assert_eq!(text.parse::<ExchangeKind>().unwrap(), kind);
        }

        #[test]
        fn junk_never_parses_and_always_names_the_grammar(
            text in proptest::collection::vec(0usize..38, 0..24).prop_map(|ix| {
                const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_:";
                ix.into_iter().map(|i| CHARS[i] as char).collect::<String>()
            }),
        ) {
            // Skip the strings that *are* in the grammar.
            if let Err(err) = text.parse::<ExchangeKind>() {
                prop_assert!(err.to_string().contains(EXCHANGE_KIND_FORMS));
                prop_assert_eq!(err.input, text);
            }
        }
    }

    #[test]
    fn sharded_kind_round_trips_with_parameters() {
        for (shards, prewarm) in [(1, false), (4, true), (8, false), (8, true)] {
            let kind = ExchangeKind::ShardedRelay { shards, prewarm };
            assert_eq!(kind.to_string().parse::<ExchangeKind>().unwrap(), kind);
        }
        assert_eq!(
            "sharded_relay:4:prewarm".to_string(),
            ExchangeKind::ShardedRelay {
                shards: 4,
                prewarm: true
            }
            .to_string()
        );
        // Bare and partial spellings default to 4 shards, no prewarm.
        assert_eq!(
            "sharded_relay".parse::<ExchangeKind>().unwrap(),
            ExchangeKind::ShardedRelay {
                shards: 4,
                prewarm: false
            }
        );
        assert_eq!(
            "sharded_relay:prewarm".parse::<ExchangeKind>().unwrap(),
            ExchangeKind::ShardedRelay {
                shards: 4,
                prewarm: true
            }
        );
        assert_eq!(
            "sharded_relay:2".parse::<ExchangeKind>().unwrap(),
            ExchangeKind::ShardedRelay {
                shards: 2,
                prewarm: false
            }
        );
        assert!("sharded_relay:0".parse::<ExchangeKind>().is_err());
        assert!("sharded_relay:fast".parse::<ExchangeKind>().is_err());
    }

    #[test]
    fn kind_layouts() {
        assert_eq!(ExchangeKind::Scatter.layout(), ExchangeStrategy::Scatter);
        assert_eq!(
            ExchangeKind::Coalesced.layout(),
            ExchangeStrategy::Coalesced
        );
        assert_eq!(ExchangeKind::VmRelay.layout(), ExchangeStrategy::Scatter);
        assert_eq!(ExchangeKind::Direct.layout(), ExchangeStrategy::Scatter);
        assert_eq!(
            ExchangeKind::ShardedRelay {
                shards: 4,
                prewarm: true
            }
            .layout(),
            ExchangeStrategy::Scatter
        );
    }

    #[test]
    fn kind_from_strategy() {
        assert_eq!(
            ExchangeKind::from(ExchangeStrategy::Coalesced),
            ExchangeKind::Coalesced
        );
        assert_eq!(
            ExchangeKind::from(ExchangeStrategy::Scatter),
            ExchangeKind::Scatter
        );
    }

    #[test]
    fn driver_env_has_no_links() {
        let env = ExchangeEnv::driver("sort/driver", 3);
        assert!(env.host_links.is_empty());
        assert_eq!(env.tag, "sort/driver");
        assert_eq!(env.retries, 3);
        assert_eq!(env.io_window, 1, "driver calls stay sequential");
    }
}
