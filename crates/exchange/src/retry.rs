//! The shared virtual-time retry helper used by every exchange backend.

use faaspipe_des::{Ctx, SimDuration};
use faaspipe_store::StoreError;
use rand::Rng;

/// Classifies an error as worth retrying (transient) or terminal.
pub trait Retryable {
    /// Whether a retry of the same operation can plausibly succeed.
    fn is_retryable(&self) -> bool;
}

impl Retryable for StoreError {
    fn is_retryable(&self) -> bool {
        matches!(self, StoreError::Injected { .. })
    }
}

/// First backoff step after a failed attempt.
const BACKOFF_BASE: SimDuration = SimDuration::from_millis(10);
/// Backoff ceiling — later attempts never sleep longer than this (before
/// jitter).
const BACKOFF_CAP: SimDuration = SimDuration::from_millis(5_000);

/// Retries `op` up to `attempts` times on [retryable](Retryable) errors,
/// sleeping an exponentially growing, jittered backoff in **virtual
/// time** between attempts. The jitter is drawn from the calling
/// process's deterministic DES rng, so same-seed runs retry identically.
/// Non-retryable errors surface immediately.
///
/// # Errors
/// The last retryable error if every attempt failed, or the first
/// non-retryable error.
pub fn with_retry<T, E: Retryable>(
    ctx: &mut Ctx,
    attempts: u32,
    mut op: impl FnMut(&mut Ctx) -> Result<T, E>,
) -> Result<T, E> {
    faaspipe_des::run_blocking(with_retry_async(ctx, attempts, async move |c: &mut Ctx| {
        op(c)
    }))
}

/// Async form of [`with_retry`] for stackless processes: `op` is an
/// async closure re-invoked per attempt, with the same deterministic
/// jittered virtual-time backoff between attempts.
///
/// # Errors
/// The last retryable error if every attempt failed, or the first
/// non-retryable error.
pub async fn with_retry_async<T, E: Retryable, Op>(
    ctx: &mut Ctx,
    attempts: u32,
    mut op: Op,
) -> Result<T, E>
where
    Op: AsyncFnMut(&mut Ctx) -> Result<T, E>,
{
    let attempts = attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match op(ctx).await {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() => {
                last = Some(e);
                if attempt + 1 < attempts {
                    let pause = backoff(ctx, attempt);
                    ctx.sleep_async(pause).await;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Backoff before retry number `attempt + 2`: `BASE * 2^attempt`,
/// capped, scaled by a jitter factor in `[0.5, 1.5)`.
fn backoff(ctx: &mut Ctx, attempt: u32) -> SimDuration {
    let exp = BACKOFF_BASE
        .saturating_mul(1u64 << attempt.min(16))
        .max(BACKOFF_BASE);
    let capped = if exp > BACKOFF_CAP { BACKOFF_CAP } else { exp };
    let jitter = 0.5 + ctx.rng().gen::<f64>();
    capped.mul_f64(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;

    #[test]
    fn gives_up_after_attempts_and_sleeps_between_them() {
        let mut sim = Sim::new();
        sim.spawn("p", |ctx| {
            let mut calls = 0;
            let before = ctx.now();
            let result: Result<(), StoreError> = with_retry(ctx, 3, |_| {
                calls += 1;
                Err(StoreError::Injected { op: "GET" })
            });
            assert!(result.is_err());
            assert_eq!(calls, 3);
            // Two backoff sleeps happened: at least BASE/2 each.
            let waited = ctx.now().saturating_duration_since(before);
            assert!(waited >= SimDuration::from_millis(10));
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn non_retryable_errors_do_not_retry() {
        let mut sim = Sim::new();
        sim.spawn("p", |ctx| {
            let mut calls = 0;
            let before = ctx.now();
            let result: Result<(), StoreError> = with_retry(ctx, 5, |_| {
                calls += 1;
                Err(StoreError::NoSuchKey {
                    bucket: "b".into(),
                    key: "k".into(),
                })
            });
            assert!(result.is_err());
            assert_eq!(calls, 1);
            assert_eq!(ctx.now(), before, "no backoff for terminal errors");
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn success_is_immediate_and_free() {
        let mut sim = Sim::new();
        sim.spawn("p", |ctx| {
            let before = ctx.now();
            let v: Result<u32, StoreError> = with_retry(ctx, 3, |_| Ok(42));
            assert_eq!(v.unwrap(), 42);
            assert_eq!(ctx.now(), before);
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn backoff_grows_exponentially_until_capped() {
        let mut sim = Sim::new();
        sim.spawn("p", |ctx| {
            // Jitter is in [0.5, 1.5), so bounds are deterministic.
            let b0 = backoff(ctx, 0);
            assert!(b0 >= SimDuration::from_millis(5) && b0 < SimDuration::from_millis(15));
            let b4 = backoff(ctx, 4);
            assert!(b4 >= SimDuration::from_millis(80) && b4 < SimDuration::from_millis(240));
            let huge = backoff(ctx, 40);
            assert!(huge < SimDuration::from_millis(7_500), "cap applies");
        });
        sim.run().expect("sim ok");
    }
}
