//! Exchange-backend error types.

use std::fmt;

use faaspipe_store::StoreError;

use crate::retry::Retryable;

/// Errors returned by [`DataExchange`](crate::DataExchange) backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// An underlying object-store operation failed.
    Store(StoreError),
    /// The backend was used before [`prepare`](crate::DataExchange::prepare).
    NotPrepared {
        /// The backend's name.
        backend: &'static str,
    },
    /// A transient relay fault injected by the backend's
    /// [`FailurePolicy`](faaspipe_store::FailurePolicy) — retryable.
    RelayUnavailable {
        /// The operation that failed (e.g. `"PUT"`).
        op: &'static str,
    },
    /// The relay VM crashed and lost its contents — not retryable.
    RelayDown {
        /// The operation that observed the crash.
        op: &'static str,
    },
    /// The requested partition was never written.
    MissingPartition {
        /// Mapper index.
        map: usize,
        /// Reducer (partition) index.
        part: usize,
    },
    /// The peer did not answer the rendezvous in time — retryable.
    PeerTimeout {
        /// Mapper index.
        map: usize,
        /// Reducer (partition) index.
        part: usize,
    },
    /// The sending function's container went cold and its buffered
    /// partition is gone — not retryable.
    PeerGone {
        /// Mapper index.
        map: usize,
        /// Reducer (partition) index.
        part: usize,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::Store(e) => write!(f, "store: {}", e),
            ExchangeError::NotPrepared { backend } => {
                write!(f, "{} backend used before prepare()", backend)
            }
            ExchangeError::RelayUnavailable { op } => {
                write!(f, "relay {} temporarily unavailable", op)
            }
            ExchangeError::RelayDown { op } => write!(f, "relay VM down during {}", op),
            ExchangeError::MissingPartition { map, part } => {
                write!(f, "partition ({}, {}) was never written", map, part)
            }
            ExchangeError::PeerTimeout { map, part } => {
                write!(f, "peer timeout reading partition ({}, {})", map, part)
            }
            ExchangeError::PeerGone { map, part } => write!(
                f,
                "sender of partition ({}, {}) went cold; data lost",
                map, part
            ),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// The valid spellings of an exchange kind, listed by every parse error
/// so callers never have to guess the grammar.
pub const EXCHANGE_KIND_FORMS: &str =
    "scatter | coalesced | vm_relay | direct | sharded_relay[:N][:prewarm] | auto";

/// Why an [`ExchangeKind`](crate::ExchangeKind) string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeParseIssue {
    /// The base name matched none of the known backends.
    UnknownKind,
    /// `sharded_relay:0` — a relay fleet needs at least one shard.
    ZeroShards,
    /// A `sharded_relay` parameter was neither a shard count nor
    /// `prewarm`.
    UnknownParameter {
        /// The offending parameter text.
        parameter: String,
    },
}

/// Error returned by `ExchangeKind::from_str`. One type for every
/// failure mode; its [`std::fmt::Display`] output always ends with the full list of
/// valid forms ([`EXCHANGE_KIND_FORMS`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeParseError {
    /// The input that failed to parse.
    pub input: String,
    /// What specifically was wrong with it.
    pub issue: ExchangeParseIssue,
}

impl fmt::Display for ExchangeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.issue {
            ExchangeParseIssue::UnknownKind => {
                write!(f, "unknown exchange '{}'", self.input)?;
            }
            ExchangeParseIssue::ZeroShards => {
                write!(
                    f,
                    "exchange '{}': shard count must be at least 1",
                    self.input
                )?;
            }
            ExchangeParseIssue::UnknownParameter { parameter } => {
                write!(
                    f,
                    "exchange '{}': unknown parameter '{}'",
                    self.input, parameter
                )?;
            }
        }
        write!(f, " (expected {})", EXCHANGE_KIND_FORMS)
    }
}

impl std::error::Error for ExchangeParseError {}

impl From<StoreError> for ExchangeError {
    fn from(e: StoreError) -> Self {
        ExchangeError::Store(e)
    }
}

impl Retryable for ExchangeError {
    fn is_retryable(&self) -> bool {
        match self {
            ExchangeError::Store(e) => e.is_retryable(),
            ExchangeError::RelayUnavailable { .. } | ExchangeError::PeerTimeout { .. } => true,
            ExchangeError::NotPrepared { .. }
            | ExchangeError::RelayDown { .. }
            | ExchangeError::MissingPartition { .. }
            | ExchangeError::PeerGone { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ExchangeError::RelayDown { op: "GET" }.to_string(),
            "relay VM down during GET"
        );
        assert_eq!(
            ExchangeError::PeerGone { map: 1, part: 2 }.to_string(),
            "sender of partition (1, 2) went cold; data lost"
        );
        assert_eq!(
            ExchangeError::Store(StoreError::Injected { op: "PUT" }).to_string(),
            "store: injected PUT failure"
        );
    }

    #[test]
    fn retryability_classes() {
        assert!(ExchangeError::RelayUnavailable { op: "PUT" }.is_retryable());
        assert!(ExchangeError::PeerTimeout { map: 0, part: 0 }.is_retryable());
        assert!(ExchangeError::Store(StoreError::Injected { op: "GET" }).is_retryable());
        assert!(!ExchangeError::RelayDown { op: "GET" }.is_retryable());
        assert!(!ExchangeError::PeerGone { map: 0, part: 0 }.is_retryable());
        assert!(!ExchangeError::MissingPartition { map: 0, part: 0 }.is_retryable());
        assert!(
            !ExchangeError::Store(StoreError::NoSuchBucket { bucket: "b".into() }).is_retryable()
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExchangeError>();
    }
}
