//! The paper's serverless exchange: every byte through object storage.

use std::sync::Arc;

use bytes::Bytes;
use faaspipe_des::{Ctx, LocalBoxFuture};
use faaspipe_store::ObjectStore;
use parking_lot::Mutex;

use crate::api::{DataExchange, ExchangeEnv, ExchangeStrategy};
use crate::error::ExchangeError;
use crate::retry::with_retry_async;

/// Exchange through the simulated COS, in either the `Scatter` (W²
/// objects) or `Coalesced` (W objects + byte-range reads) layout.
///
/// Coalesced offset tables travel through the backend itself, modelling
/// the Lithops result objects that carry them back to the orchestrator.
/// [`cleanup`](DataExchange::cleanup) intentionally leaves the
/// intermediate objects in place — the paper's pipelines rely on bucket
/// lifecycle expiry, and keeping them lets experiments inspect the
/// layout after a run.
pub struct ObjectStoreExchange {
    store: Arc<ObjectStore>,
    bucket: String,
    prefix: String,
    layout: ExchangeStrategy,
    /// Sparse per-mapper offset tables for the coalesced layout.
    index: Mutex<CoalescedIndex>,
}

/// Sparse per-mapper offset index for the coalesced layout: only
/// non-empty partitions get `(part, offset, len)` entries, with a
/// per-mapper part count to tell "written but empty" apart from "never
/// written". The dense W×W table this replaces held 268M entries at
/// W=16384 — nearly all zero-length once records spread thin.
#[derive(Default)]
struct CoalescedIndex {
    /// Per mapper: how many partitions its write produced (0 = never
    /// written).
    parts_len: Vec<u32>,
    /// Per mapper: `(part, offset, len)` for non-empty partitions only,
    /// part-ascending (so lookups binary-search).
    tables: Vec<Vec<(u32, u64, u64)>>,
    /// Per *part*: `(map, offset, len)` for non-empty partitions only,
    /// map-ascending — the reducer-side view of `tables`, rebuilt lazily
    /// after writes so a whole-column gather is O(non-empty).
    by_part: Vec<Vec<(u32, u64, u64)>>,
    by_part_valid: bool,
    /// Mappers recorded so far (each counted once).
    recorded: usize,
    /// Minimum `parts_len` among recorded mappers (`u32::MAX` if none):
    /// the O(1) availability fast path for gathers.
    min_parts_len: u32,
}

impl CoalescedIndex {
    fn reset(&mut self, maps: usize) {
        self.parts_len.clear();
        self.parts_len.resize(maps, 0);
        self.tables.clear();
        self.tables.resize_with(maps, Vec::new);
        self.by_part.clear();
        self.by_part_valid = false;
        self.recorded = 0;
        self.min_parts_len = u32::MAX;
    }

    fn record(&mut self, map: usize, parts_len: usize, table: Vec<(u32, u64, u64)>) {
        if self.parts_len.len() <= map {
            self.parts_len.resize(map + 1, 0);
            self.tables.resize_with(map + 1, Vec::new);
        }
        if self.parts_len[map] == 0 {
            self.recorded += 1;
        }
        self.parts_len[map] = parts_len as u32;
        self.min_parts_len = self.min_parts_len.min(parts_len as u32);
        self.tables[map] = table;
        self.by_part_valid = false;
    }

    /// The non-empty `(map, offset, len)` entries of column `part` over
    /// mappers `0..maps`, map-ascending, after verifying every one of
    /// those mappers wrote the column (same first-failure the dense
    /// per-request lookups produced).
    fn gather(&mut self, maps: usize, part: usize) -> Result<Vec<(u32, u64, u64)>, ExchangeError> {
        let complete = self.recorded == self.parts_len.len()
            && maps <= self.parts_len.len()
            && (part as u32) < self.min_parts_len;
        if !complete {
            for map in 0..maps {
                let written = self.parts_len.get(map).copied().unwrap_or(0);
                if part >= written as usize {
                    return Err(ExchangeError::MissingPartition { map, part });
                }
            }
        }
        if !self.by_part_valid {
            let parts = self.parts_len.iter().copied().max().unwrap_or(0) as usize;
            self.by_part.clear();
            self.by_part.resize_with(parts, Vec::new);
            for (m, table) in self.tables.iter().enumerate() {
                for &(p, off, len) in table {
                    self.by_part[p as usize].push((m as u32, off, len));
                }
            }
            self.by_part_valid = true;
        }
        Ok(self
            .by_part
            .get(part)
            .map(|column| {
                column
                    .iter()
                    .copied()
                    .filter(|&(m, _, _)| (m as usize) < maps)
                    .collect()
            })
            .unwrap_or_default())
    }

    /// `Ok(Some((off, len)))` for a non-empty partition, `Ok(None)` for
    /// a written-but-empty one, `Err(MissingPartition)` otherwise —
    /// exactly the semantics the dense table's `get(map).get(part)` had.
    fn lookup(&self, map: usize, part: usize) -> Result<Option<(u64, u64)>, ExchangeError> {
        let parts_len = *self
            .parts_len
            .get(map)
            .ok_or(ExchangeError::MissingPartition { map, part })?;
        if part >= parts_len as usize {
            return Err(ExchangeError::MissingPartition { map, part });
        }
        let table = &self.tables[map];
        match table.binary_search_by_key(&(part as u32), |&(p, _, _)| p) {
            Ok(i) => {
                let (_, off, len) = table[i];
                Ok(Some((off, len)))
            }
            Err(_) => Ok(None),
        }
    }
}

impl std::fmt::Debug for ObjectStoreExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStoreExchange")
            .field("bucket", &self.bucket)
            .field("prefix", &self.prefix)
            .field("layout", &self.layout)
            .finish()
    }
}

impl ObjectStoreExchange {
    /// Creates a backend writing intermediates under
    /// `{prefix}{map:05}[/{part:05}]` in `bucket`.
    pub fn new(
        store: Arc<ObjectStore>,
        bucket: impl Into<String>,
        prefix: impl Into<String>,
        layout: ExchangeStrategy,
    ) -> ObjectStoreExchange {
        ObjectStoreExchange {
            store,
            bucket: bucket.into(),
            prefix: prefix.into(),
            layout,
            index: Mutex::new(CoalescedIndex::default()),
        }
    }

    fn scatter_key(&self, map: usize, part: usize) -> String {
        format!("{}{:05}/{:05}", self.prefix, map, part)
    }

    fn coalesced_key(&self, map: usize) -> String {
        format!("{}{:05}", self.prefix, map)
    }

    /// Runs one store request per fetch plan in child processes, at most
    /// `env.io_window` in flight, each on its own store connection (so
    /// aggregate throughput scales with the window until the caller's
    /// NIC or the store's aggregate cap saturates). Results come back in
    /// plan order.
    ///
    /// [`Fetch::Empty`] plans never leave the host: they issue no store
    /// request, touch no simulated resource, and draw no randomness, so
    /// their jobs are elided outright and their result slots pre-filled.
    /// The worker count is pinned to the *full* plan count
    /// ([`Ctx::fan_out_sparse_async`]), which keeps pid assignment and
    /// the virtual-time schedule byte-identical to a fan-out that ran
    /// the empty jobs — without materialising W² closures per stage at
    /// large W.
    async fn fetch_windowed(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        plans: Vec<Fetch>,
    ) -> Result<Vec<Bytes>, ExchangeError> {
        let trace = self.store.trace_sink();
        let parent = trace.current(ctx.pid());
        let total = plans.len();
        let jobs: Vec<_> = plans
            .into_iter()
            .enumerate()
            .filter(|(_, plan)| !matches!(plan, Fetch::Empty))
            .map(|(i, plan)| {
                let store = Arc::clone(&self.store);
                let bucket = self.bucket.clone();
                let tag = env.tag.clone();
                let links = env.host_links.clone();
                let retries = env.retries;
                let trace = trace.clone();
                let job = async move |cctx: &mut Ctx| {
                    trace.enter(cctx.pid(), parent);
                    let client = store.connect_via_async(cctx, tag, &links).await;
                    let res: Result<Bytes, ExchangeError> = match plan {
                        Fetch::Empty => Ok(Bytes::new()),
                        Fetch::Get(key) => with_retry_async(cctx, retries, async |c: &mut Ctx| {
                            client.get_async(c, &bucket, &key).await
                        })
                        .await
                        .map_err(ExchangeError::from),
                        Fetch::Range(key, off, len) => {
                            with_retry_async(cctx, retries, async |c: &mut Ctx| {
                                client.get_range_async(c, &bucket, &key, off, len).await
                            })
                            .await
                            .map_err(ExchangeError::from)
                        }
                    };
                    trace.exit(cctx.pid());
                    res
                };
                (i, job)
            })
            .collect();
        let name = format!("{}-get", env.tag);
        let results = ctx
            .fan_out_sparse_async(&name, env.io_window, total, jobs, || Ok(Bytes::new()))
            .await
            .unwrap_or_else(|e| panic!("windowed store read crashed: {}", e));
        results.into_iter().collect()
    }

    /// [`ObjectStoreExchange::fetch_windowed`] for a pre-filtered plan
    /// list: every plan is a real request, and the worker count is
    /// pinned to what a `logical_total`-plan fan-out would spawn, so a
    /// gather that elided its empty column entries keeps the exact
    /// virtual-time schedule of the dense one. Returns one payload per
    /// plan, in plan order.
    async fn fetch_pinned(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        logical_total: usize,
        plans: Vec<Fetch>,
    ) -> Result<Vec<Bytes>, ExchangeError> {
        let trace = self.store.trace_sink();
        let parent = trace.current(ctx.pid());
        let jobs: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                let store = Arc::clone(&self.store);
                let bucket = self.bucket.clone();
                let tag = env.tag.clone();
                let links = env.host_links.clone();
                let retries = env.retries;
                let trace = trace.clone();
                async move |cctx: &mut Ctx| {
                    trace.enter(cctx.pid(), parent);
                    let client = store.connect_via_async(cctx, tag, &links).await;
                    let res: Result<Bytes, ExchangeError> = match plan {
                        Fetch::Empty => Ok(Bytes::new()),
                        Fetch::Get(key) => with_retry_async(cctx, retries, async |c: &mut Ctx| {
                            client.get_async(c, &bucket, &key).await
                        })
                        .await
                        .map_err(ExchangeError::from),
                        Fetch::Range(key, off, len) => {
                            with_retry_async(cctx, retries, async |c: &mut Ctx| {
                                client.get_range_async(c, &bucket, &key, off, len).await
                            })
                            .await
                            .map_err(ExchangeError::from)
                        }
                    };
                    trace.exit(cctx.pid());
                    res
                }
            })
            .collect();
        let name = format!("{}-get", env.tag);
        let results = ctx
            .fan_out_pinned_async(&name, env.io_window, logical_total, jobs)
            .await
            .unwrap_or_else(|e| panic!("windowed store read crashed: {}", e));
        results.into_iter().collect()
    }
}

/// A resolved read plan for one `(map, part)` request.
enum Fetch {
    /// Whole-object GET (scatter layout).
    Get(String),
    /// Byte-range GET (coalesced layout).
    Range(String, u64, u64),
    /// Zero-length coalesced partition: no request at all.
    Empty,
}

impl DataExchange for ObjectStoreExchange {
    fn name(&self) -> &'static str {
        match self.layout {
            ExchangeStrategy::Scatter => "cos-scatter",
            ExchangeStrategy::Coalesced => "cos-coalesced",
        }
    }

    fn prepare_async<'a>(
        &'a self,
        _ctx: &'a mut Ctx,
        maps: usize,
        _parts: usize,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        self.index.lock().reset(maps);
        Box::pin(async { Ok(()) })
    }

    fn write_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>> {
        Box::pin(async move {
            let mut written = 0u64;
            match self.layout {
                ExchangeStrategy::Scatter if env.io_window > 1 && parts.len() > 1 => {
                    written = parts.iter().map(|d| d.len() as u64).sum();
                    let trace = self.store.trace_sink();
                    let parent = trace.current(ctx.pid());
                    let jobs: Vec<_> = parts
                        .into_iter()
                        .enumerate()
                        .map(|(j, data)| {
                            let store = Arc::clone(&self.store);
                            let bucket = self.bucket.clone();
                            let key = self.scatter_key(map, j);
                            let tag = env.tag.clone();
                            let links = env.host_links.clone();
                            let retries = env.retries;
                            let trace = trace.clone();
                            async move |cctx: &mut Ctx| {
                                trace.enter(cctx.pid(), parent);
                                let client = store.connect_via_async(cctx, tag, &links).await;
                                let res: Result<(), ExchangeError> =
                                    with_retry_async(cctx, retries, async |c: &mut Ctx| {
                                        client.put_async(c, &bucket, &key, data.clone()).await
                                    })
                                    .await
                                    .map(|_| ())
                                    .map_err(ExchangeError::from);
                                trace.exit(cctx.pid());
                                res
                            }
                        })
                        .collect();
                    let name = format!("{}-put", env.tag);
                    ctx.fan_out_async(&name, env.io_window, jobs)
                        .await
                        .unwrap_or_else(|e| panic!("windowed store write crashed: {}", e))
                        .into_iter()
                        .collect::<Result<Vec<()>, ExchangeError>>()?;
                }
                ExchangeStrategy::Scatter => {
                    let client = self
                        .store
                        .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                        .await;
                    for (j, data) in parts.into_iter().enumerate() {
                        written += data.len() as u64;
                        let key = self.scatter_key(map, j);
                        with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                            client.put_async(c, &self.bucket, &key, data.clone()).await
                        })
                        .await?;
                    }
                }
                ExchangeStrategy::Coalesced => {
                    let client = self
                        .store
                        .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                        .await;
                    let mut table = Vec::new();
                    let total: usize = parts.iter().map(Bytes::len).sum();
                    let mut blob = Vec::with_capacity(total);
                    for (j, data) in parts.iter().enumerate() {
                        if !data.is_empty() {
                            table.push((j as u32, blob.len() as u64, data.len() as u64));
                        }
                        blob.extend_from_slice(data);
                    }
                    written += blob.len() as u64;
                    let key = self.coalesced_key(map);
                    let blob = Bytes::from(blob);
                    with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client.put_async(c, &self.bucket, &key, blob.clone()).await
                    })
                    .await?;
                    self.index.lock().record(map, parts.len(), table);
                }
            }
            Ok(written)
        })
    }

    fn write_run_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        run: Bytes,
        cuts: Vec<(u32, u64, u64)>,
        parts_len: usize,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>> {
        Box::pin(async move {
            match self.layout {
                // The coalesced blob IS the run (partitions concatenated in
                // part order), so PUT it as-is — identical bytes, key, and
                // virtual time to the dense write — and file the cut list
                // straight into the sparse index: O(cuts) host work where
                // the dense path scanned all `parts_len` slots.
                ExchangeStrategy::Coalesced => {
                    let client = self
                        .store
                        .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                        .await;
                    let written = run.len() as u64;
                    let key = self.coalesced_key(map);
                    with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client.put_async(c, &self.bucket, &key, run.clone()).await
                    })
                    .await?;
                    self.index.lock().record(map, parts_len, cuts);
                    Ok(written)
                }
                // Scatter stores one object per partition either way;
                // reconstruct the dense vector (zero-copy slices) and take
                // the ordinary write path.
                ExchangeStrategy::Scatter => {
                    let mut parts = vec![Bytes::new(); parts_len];
                    for &(part, off, len) in &cuts {
                        parts[part as usize] = run.slice(off as usize..(off + len) as usize);
                    }
                    self.write_partitions_async(ctx, env, map, parts).await
                }
            }
        })
    }

    fn read_partition_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Bytes, ExchangeError>> {
        Box::pin(async move {
            let client = self
                .store
                .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                .await;
            match self.layout {
                ExchangeStrategy::Scatter => {
                    let key = self.scatter_key(map, part);
                    Ok(with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client.get_async(c, &self.bucket, &key).await
                    })
                    .await?)
                }
                ExchangeStrategy::Coalesced => {
                    let Some((off, len)) = self.index.lock().lookup(map, part)? else {
                        // Nothing to fetch; skip the request entirely (the
                        // coalesced layout's request saving in action).
                        return Ok(Bytes::new());
                    };
                    let key = self.coalesced_key(map);
                    Ok(with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client
                            .get_range_async(c, &self.bucket, &key, off, len)
                            .await
                    })
                    .await?)
                }
            }
        })
    }

    fn read_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        reqs: &'a [(usize, usize)],
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            if env.io_window <= 1 || reqs.len() <= 1 {
                let mut out = Vec::with_capacity(reqs.len());
                for &(map, part) in reqs {
                    out.push(self.read_partition_async(ctx, env, map, part).await?);
                }
                return Ok(out);
            }
            // Resolve every request to a fetch plan up front (the coalesced
            // offset lookups can fail, and zero-length partitions must skip
            // the request even on the windowed path). One lock hold covers
            // the whole batch — the old per-request locking was W lock
            // round-trips per reducer.
            let plans = match self.layout {
                ExchangeStrategy::Scatter => reqs
                    .iter()
                    .map(|&(map, part)| Fetch::Get(self.scatter_key(map, part)))
                    .collect(),
                ExchangeStrategy::Coalesced => {
                    let index = self.index.lock();
                    reqs.iter()
                        .map(|&(map, part)| {
                            Ok(match index.lookup(map, part)? {
                                Some((off, len)) => Fetch::Range(self.coalesced_key(map), off, len),
                                None => Fetch::Empty,
                            })
                        })
                        .collect::<Result<Vec<Fetch>, ExchangeError>>()?
                }
            };
            self.fetch_windowed(ctx, env, plans).await
        })
    }

    fn read_gather_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        maps: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            if matches!(self.layout, ExchangeStrategy::Scatter) {
                // Every scatter partition is a real object — empty ones
                // included — so the dense column read (and its W real
                // GETs) is the correct cost model.
                let reqs: Vec<(usize, usize)> = (0..maps).map(|m| (m, part)).collect();
                let runs = self.read_partitions_async(ctx, env, &reqs).await?;
                return Ok(runs.into_iter().filter(|r| !r.is_empty()).collect());
            }
            // Coalesced: resolve the column straight from the by-part
            // index — one lock, O(non-empty) — and only then touch the
            // simulation.
            let entries = self.index.lock().gather(maps, part)?;
            if env.io_window <= 1 || maps <= 1 {
                // Sequential data plane: one request at a time on the
                // caller's own process, exactly as the dense column loop
                // behaved for its non-empty entries (one flow in flight,
                // so sharing a connection is rate-identical to the dense
                // loop's connection-per-request).
                let client = self
                    .store
                    .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                    .await;
                let mut out = Vec::with_capacity(entries.len());
                for &(map, off, len) in &entries {
                    let key = self.coalesced_key(map as usize);
                    let data = with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client
                            .get_range_async(c, &self.bucket, &key, off, len)
                            .await
                    })
                    .await?;
                    out.push(data);
                }
                return Ok(out);
            }
            let plans: Vec<Fetch> = entries
                .iter()
                .map(|&(map, off, len)| Fetch::Range(self.coalesced_key(map as usize), off, len))
                .collect();
            self.fetch_pinned(ctx, env, maps, plans).await
        })
    }

    fn list_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<Vec<String>, ExchangeError>> {
        Box::pin(async move {
            let client = self
                .store
                .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                .await;
            let objects = with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                client.list_async(c, &self.bucket, &self.prefix).await
            })
            .await?;
            Ok(objects.into_iter().map(|o| o.key).collect())
        })
    }

    fn cleanup_async<'a>(
        &'a self,
        _ctx: &'a mut Ctx,
        _env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        // Intentionally retained: see the type-level docs.
        Box::pin(async { Ok(()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;
    use faaspipe_store::StoreConfig;

    fn roundtrip(layout: ExchangeStrategy) -> (Arc<ObjectStore>, Vec<String>) {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = Arc::new(ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            layout,
        ));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex2.prepare(ctx, 2, 2).expect("prepare");
            for m in 0..2usize {
                let parts = vec![
                    Bytes::from(format!("m{}p0", m)),
                    Bytes::from(format!("m{}p1", m)),
                ];
                let written = ex2.write_partitions(ctx, &env, m, parts).expect("write");
                assert_eq!(written, 8);
            }
            for m in 0..2usize {
                for j in 0..2usize {
                    let data = ex2.read_partition(ctx, &env, m, j).expect("read");
                    assert_eq!(data, Bytes::from(format!("m{}p{}", m, j)));
                }
            }
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        let keys = store.keys_untimed("data", "part/");
        (store, keys)
    }

    #[test]
    fn scatter_layout_writes_w_squared_objects() {
        let (_, keys) = roundtrip(ExchangeStrategy::Scatter);
        assert_eq!(
            keys,
            vec![
                "part/00000/00000",
                "part/00000/00001",
                "part/00001/00000",
                "part/00001/00001"
            ]
        );
    }

    #[test]
    fn coalesced_layout_writes_one_object_per_mapper() {
        let (store, keys) = roundtrip(ExchangeStrategy::Coalesced);
        assert_eq!(keys, vec!["part/00000", "part/00001"]);
        // Far fewer class-A requests than scatter: 2 PUTs, not 4.
        assert_eq!(store.metrics().total().class_a, 2);
    }

    #[test]
    fn coalesced_empty_partition_reads_skip_the_request() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = Arc::new(ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            ExchangeStrategy::Coalesced,
        ));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex2.prepare(ctx, 1, 2).expect("prepare");
            ex2.write_partitions(ctx, &env, 0, vec![Bytes::from("xy"), Bytes::new()])
                .expect("write");
            let before = store.metrics().total().class_b;
            let data = ex2.read_partition(ctx, &env, 0, 1).expect("read empty");
            assert!(data.is_empty());
            assert_eq!(store.metrics().total().class_b, before, "no GET issued");
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn unwritten_coalesced_partition_is_missing() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            ExchangeStrategy::Coalesced,
        );
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex.prepare(ctx, 1, 1).expect("prepare");
            let err = ex.read_partition(ctx, &env, 0, 0).expect_err("missing");
            assert_eq!(err, ExchangeError::MissingPartition { map: 0, part: 0 });
        });
        sim.run().expect("sim ok");
    }

    /// `write_run` must be observationally identical to
    /// `write_partitions` with the reconstructed dense vector, on both
    /// layouts: same stored bytes, same request count, same reads.
    #[test]
    fn write_run_matches_write_partitions_on_both_layouts() {
        for layout in [ExchangeStrategy::Scatter, ExchangeStrategy::Coalesced] {
            let mut sim = Sim::new();
            let store = ObjectStore::install(&mut sim, StoreConfig::default());
            store.create_bucket("data").expect("bucket");
            let dense = Arc::new(ObjectStoreExchange::new(
                Arc::clone(&store),
                "data",
                "dense/",
                layout,
            ));
            let sparse = Arc::new(ObjectStoreExchange::new(
                Arc::clone(&store),
                "data",
                "sparse/",
                layout,
            ));
            let (d2, s2) = (Arc::clone(&dense), Arc::clone(&sparse));
            sim.spawn("driver", move |ctx| {
                let env = ExchangeEnv::driver("test", 3);
                d2.prepare(ctx, 1, 4).expect("prepare");
                s2.prepare(ctx, 1, 4).expect("prepare");
                // Partitions 1 and 3 empty — the sparse-cut case.
                let parts = vec![
                    Bytes::from("aa"),
                    Bytes::new(),
                    Bytes::from("cccc"),
                    Bytes::new(),
                ];
                let w_dense = d2
                    .write_partitions(ctx, &env, 0, parts.clone())
                    .expect("dense write");
                let run = Bytes::from("aacccc");
                let cuts = vec![(0u32, 0u64, 2u64), (2, 2, 4)];
                let w_sparse = s2.write_run(ctx, &env, 0, run, cuts, 4).expect("run write");
                assert_eq!(w_dense, w_sparse);
                for (j, want) in parts.iter().enumerate() {
                    let a = d2.read_partition(ctx, &env, 0, j).expect("dense read");
                    let b = s2.read_partition(ctx, &env, 0, j).expect("sparse read");
                    assert_eq!(a, b, "layout {:?} part {}", layout, j);
                    assert_eq!(&a, want);
                }
            });
            sim.run().expect("sim ok");
            // Identical stored objects, key-for-key (modulo the prefix).
            let dense_keys = store.keys_untimed("data", "dense/");
            let sparse_keys = store.keys_untimed("data", "sparse/");
            assert_eq!(dense_keys.len(), sparse_keys.len());
        }
    }

    /// A reducer's gather returns only the non-empty runs of its
    /// column, map-ascending, without issuing requests for the empty
    /// ones — and still fails loudly on a truly unwritten mapper.
    #[test]
    fn read_gather_skips_empty_runs_and_flags_missing_mappers() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = Arc::new(ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            ExchangeStrategy::Coalesced,
        ));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex2.prepare(ctx, 3, 2).expect("prepare");
            ex2.write_partitions(ctx, &env, 0, vec![Bytes::from("a0"), Bytes::new()])
                .expect("write");
            ex2.write_partitions(ctx, &env, 1, vec![Bytes::new(), Bytes::from("b1")])
                .expect("write");
            ex2.write_partitions(ctx, &env, 2, vec![Bytes::from("c0"), Bytes::from("c1")])
                .expect("write");
            let col0 = ex2.read_gather(ctx, &env, 3, 0).expect("gather 0");
            assert_eq!(col0, vec![Bytes::from("a0"), Bytes::from("c0")]);
            let col1 = ex2.read_gather(ctx, &env, 3, 1).expect("gather 1");
            assert_eq!(col1, vec![Bytes::from("b1"), Bytes::from("c1")]);
            // Asking for more mappers than ever wrote is a loud error,
            // exactly like the dense batch read.
            let err = ex2
                .read_gather(ctx, &env, 4, 0)
                .expect_err("missing mapper");
            assert_eq!(err, ExchangeError::MissingPartition { map: 3, part: 0 });
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn list_names_the_intermediates() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            ExchangeStrategy::Scatter,
        );
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex.prepare(ctx, 1, 1).expect("prepare");
            ex.write_partitions(ctx, &env, 0, vec![Bytes::from("a")])
                .expect("write");
            let keys = ex.list(ctx, &env).expect("list");
            assert_eq!(keys, vec!["part/00000/00000"]);
        });
        sim.run().expect("sim ok");
    }
}
