//! The paper's serverless exchange: every byte through object storage.

use std::sync::Arc;

use bytes::Bytes;
use faaspipe_des::{Ctx, LocalBoxFuture};
use faaspipe_store::ObjectStore;
use parking_lot::Mutex;

use crate::api::{DataExchange, ExchangeEnv, ExchangeStrategy};
use crate::error::ExchangeError;
use crate::retry::with_retry_async;

/// Exchange through the simulated COS, in either the `Scatter` (W²
/// objects) or `Coalesced` (W objects + byte-range reads) layout.
///
/// Coalesced offset tables travel through the backend itself, modelling
/// the Lithops result objects that carry them back to the orchestrator.
/// [`cleanup`](DataExchange::cleanup) intentionally leaves the
/// intermediate objects in place — the paper's pipelines rely on bucket
/// lifecycle expiry, and keeping them lets experiments inspect the
/// layout after a run.
pub struct ObjectStoreExchange {
    store: Arc<ObjectStore>,
    bucket: String,
    prefix: String,
    layout: ExchangeStrategy,
    /// Per-mapper `(offset, length)` tables for the coalesced layout.
    offsets: Mutex<Vec<Vec<(u64, u64)>>>,
}

impl std::fmt::Debug for ObjectStoreExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStoreExchange")
            .field("bucket", &self.bucket)
            .field("prefix", &self.prefix)
            .field("layout", &self.layout)
            .finish()
    }
}

impl ObjectStoreExchange {
    /// Creates a backend writing intermediates under
    /// `{prefix}{map:05}[/{part:05}]` in `bucket`.
    pub fn new(
        store: Arc<ObjectStore>,
        bucket: impl Into<String>,
        prefix: impl Into<String>,
        layout: ExchangeStrategy,
    ) -> ObjectStoreExchange {
        ObjectStoreExchange {
            store,
            bucket: bucket.into(),
            prefix: prefix.into(),
            layout,
            offsets: Mutex::new(Vec::new()),
        }
    }

    fn scatter_key(&self, map: usize, part: usize) -> String {
        format!("{}{:05}/{:05}", self.prefix, map, part)
    }

    fn coalesced_key(&self, map: usize) -> String {
        format!("{}{:05}", self.prefix, map)
    }

    /// Runs one store request per fetch plan in child processes, at most
    /// `env.io_window` in flight, each on its own store connection (so
    /// aggregate throughput scales with the window until the caller's
    /// NIC or the store's aggregate cap saturates). Results come back in
    /// plan order.
    async fn fetch_windowed(
        &self,
        ctx: &mut Ctx,
        env: &ExchangeEnv,
        plans: Vec<Fetch>,
    ) -> Result<Vec<Bytes>, ExchangeError> {
        let trace = self.store.trace_sink();
        let parent = trace.current(ctx.pid());
        let jobs: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                let store = Arc::clone(&self.store);
                let bucket = self.bucket.clone();
                let tag = env.tag.clone();
                let links = env.host_links.clone();
                let retries = env.retries;
                let trace = trace.clone();
                async move |cctx: &mut Ctx| {
                    trace.enter(cctx.pid(), parent);
                    let client = store.connect_via_async(cctx, tag, &links).await;
                    let res: Result<Bytes, ExchangeError> = match plan {
                        Fetch::Empty => Ok(Bytes::new()),
                        Fetch::Get(key) => with_retry_async(cctx, retries, async |c: &mut Ctx| {
                            client.get_async(c, &bucket, &key).await
                        })
                        .await
                        .map_err(ExchangeError::from),
                        Fetch::Range(key, off, len) => {
                            with_retry_async(cctx, retries, async |c: &mut Ctx| {
                                client.get_range_async(c, &bucket, &key, off, len).await
                            })
                            .await
                            .map_err(ExchangeError::from)
                        }
                    };
                    trace.exit(cctx.pid());
                    res
                }
            })
            .collect();
        let name = format!("{}-get", env.tag);
        let results = ctx
            .fan_out_async(&name, env.io_window, jobs)
            .await
            .unwrap_or_else(|e| panic!("windowed store read crashed: {}", e));
        results.into_iter().collect()
    }
}

/// A resolved read plan for one `(map, part)` request.
enum Fetch {
    /// Whole-object GET (scatter layout).
    Get(String),
    /// Byte-range GET (coalesced layout).
    Range(String, u64, u64),
    /// Zero-length coalesced partition: no request at all.
    Empty,
}

impl DataExchange for ObjectStoreExchange {
    fn name(&self) -> &'static str {
        match self.layout {
            ExchangeStrategy::Scatter => "cos-scatter",
            ExchangeStrategy::Coalesced => "cos-coalesced",
        }
    }

    fn prepare_async<'a>(
        &'a self,
        _ctx: &'a mut Ctx,
        maps: usize,
        _parts: usize,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        *self.offsets.lock() = vec![Vec::new(); maps];
        Box::pin(async { Ok(()) })
    }

    fn write_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        parts: Vec<Bytes>,
    ) -> LocalBoxFuture<'a, Result<u64, ExchangeError>> {
        Box::pin(async move {
            let mut written = 0u64;
            match self.layout {
                ExchangeStrategy::Scatter if env.io_window > 1 && parts.len() > 1 => {
                    written = parts.iter().map(|d| d.len() as u64).sum();
                    let trace = self.store.trace_sink();
                    let parent = trace.current(ctx.pid());
                    let jobs: Vec<_> = parts
                        .into_iter()
                        .enumerate()
                        .map(|(j, data)| {
                            let store = Arc::clone(&self.store);
                            let bucket = self.bucket.clone();
                            let key = self.scatter_key(map, j);
                            let tag = env.tag.clone();
                            let links = env.host_links.clone();
                            let retries = env.retries;
                            let trace = trace.clone();
                            async move |cctx: &mut Ctx| {
                                trace.enter(cctx.pid(), parent);
                                let client = store.connect_via_async(cctx, tag, &links).await;
                                let res: Result<(), ExchangeError> =
                                    with_retry_async(cctx, retries, async |c: &mut Ctx| {
                                        client.put_async(c, &bucket, &key, data.clone()).await
                                    })
                                    .await
                                    .map(|_| ())
                                    .map_err(ExchangeError::from);
                                trace.exit(cctx.pid());
                                res
                            }
                        })
                        .collect();
                    let name = format!("{}-put", env.tag);
                    ctx.fan_out_async(&name, env.io_window, jobs)
                        .await
                        .unwrap_or_else(|e| panic!("windowed store write crashed: {}", e))
                        .into_iter()
                        .collect::<Result<Vec<()>, ExchangeError>>()?;
                }
                ExchangeStrategy::Scatter => {
                    let client = self
                        .store
                        .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                        .await;
                    for (j, data) in parts.into_iter().enumerate() {
                        written += data.len() as u64;
                        let key = self.scatter_key(map, j);
                        with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                            client.put_async(c, &self.bucket, &key, data.clone()).await
                        })
                        .await?;
                    }
                }
                ExchangeStrategy::Coalesced => {
                    let client = self
                        .store
                        .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                        .await;
                    let mut table = Vec::with_capacity(parts.len());
                    let total: usize = parts.iter().map(Bytes::len).sum();
                    let mut blob = Vec::with_capacity(total);
                    for data in &parts {
                        table.push((blob.len() as u64, data.len() as u64));
                        blob.extend_from_slice(data);
                    }
                    written += blob.len() as u64;
                    let key = self.coalesced_key(map);
                    let blob = Bytes::from(blob);
                    with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client.put_async(c, &self.bucket, &key, blob.clone()).await
                    })
                    .await?;
                    let mut offsets = self.offsets.lock();
                    if offsets.len() <= map {
                        offsets.resize(map + 1, Vec::new());
                    }
                    offsets[map] = table;
                }
            }
            Ok(written)
        })
    }

    fn read_partition_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        map: usize,
        part: usize,
    ) -> LocalBoxFuture<'a, Result<Bytes, ExchangeError>> {
        Box::pin(async move {
            let client = self
                .store
                .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                .await;
            match self.layout {
                ExchangeStrategy::Scatter => {
                    let key = self.scatter_key(map, part);
                    Ok(with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client.get_async(c, &self.bucket, &key).await
                    })
                    .await?)
                }
                ExchangeStrategy::Coalesced => {
                    let (off, len) = *self
                        .offsets
                        .lock()
                        .get(map)
                        .and_then(|table| table.get(part))
                        .ok_or(ExchangeError::MissingPartition { map, part })?;
                    if len == 0 {
                        // Nothing to fetch; skip the request entirely (the
                        // coalesced layout's request saving in action).
                        return Ok(Bytes::new());
                    }
                    let key = self.coalesced_key(map);
                    Ok(with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                        client
                            .get_range_async(c, &self.bucket, &key, off, len)
                            .await
                    })
                    .await?)
                }
            }
        })
    }

    fn read_partitions_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
        reqs: &'a [(usize, usize)],
    ) -> LocalBoxFuture<'a, Result<Vec<Bytes>, ExchangeError>> {
        Box::pin(async move {
            if env.io_window <= 1 || reqs.len() <= 1 {
                let mut out = Vec::with_capacity(reqs.len());
                for &(map, part) in reqs {
                    out.push(self.read_partition_async(ctx, env, map, part).await?);
                }
                return Ok(out);
            }
            // Resolve every request to a fetch plan up front (the coalesced
            // offset lookups can fail, and zero-length partitions must skip
            // the request even on the windowed path).
            let plans = reqs
                .iter()
                .map(|&(map, part)| match self.layout {
                    ExchangeStrategy::Scatter => Ok(Fetch::Get(self.scatter_key(map, part))),
                    ExchangeStrategy::Coalesced => {
                        let (off, len) = *self
                            .offsets
                            .lock()
                            .get(map)
                            .and_then(|table| table.get(part))
                            .ok_or(ExchangeError::MissingPartition { map, part })?;
                        Ok(if len == 0 {
                            Fetch::Empty
                        } else {
                            Fetch::Range(self.coalesced_key(map), off, len)
                        })
                    }
                })
                .collect::<Result<Vec<Fetch>, ExchangeError>>()?;
            self.fetch_windowed(ctx, env, plans).await
        })
    }

    fn list_async<'a>(
        &'a self,
        ctx: &'a mut Ctx,
        env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<Vec<String>, ExchangeError>> {
        Box::pin(async move {
            let client = self
                .store
                .connect_via_async(ctx, env.tag.clone(), &env.host_links)
                .await;
            let objects = with_retry_async(ctx, env.retries, async |c: &mut Ctx| {
                client.list_async(c, &self.bucket, &self.prefix).await
            })
            .await?;
            Ok(objects.into_iter().map(|o| o.key).collect())
        })
    }

    fn cleanup_async<'a>(
        &'a self,
        _ctx: &'a mut Ctx,
        _env: &'a ExchangeEnv,
    ) -> LocalBoxFuture<'a, Result<(), ExchangeError>> {
        // Intentionally retained: see the type-level docs.
        Box::pin(async { Ok(()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;
    use faaspipe_store::StoreConfig;

    fn roundtrip(layout: ExchangeStrategy) -> (Arc<ObjectStore>, Vec<String>) {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = Arc::new(ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            layout,
        ));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex2.prepare(ctx, 2, 2).expect("prepare");
            for m in 0..2usize {
                let parts = vec![
                    Bytes::from(format!("m{}p0", m)),
                    Bytes::from(format!("m{}p1", m)),
                ];
                let written = ex2.write_partitions(ctx, &env, m, parts).expect("write");
                assert_eq!(written, 8);
            }
            for m in 0..2usize {
                for j in 0..2usize {
                    let data = ex2.read_partition(ctx, &env, m, j).expect("read");
                    assert_eq!(data, Bytes::from(format!("m{}p{}", m, j)));
                }
            }
            ex2.cleanup(ctx, &env).expect("cleanup");
        });
        sim.run().expect("sim ok");
        let keys = store.keys_untimed("data", "part/");
        (store, keys)
    }

    #[test]
    fn scatter_layout_writes_w_squared_objects() {
        let (_, keys) = roundtrip(ExchangeStrategy::Scatter);
        assert_eq!(
            keys,
            vec![
                "part/00000/00000",
                "part/00000/00001",
                "part/00001/00000",
                "part/00001/00001"
            ]
        );
    }

    #[test]
    fn coalesced_layout_writes_one_object_per_mapper() {
        let (store, keys) = roundtrip(ExchangeStrategy::Coalesced);
        assert_eq!(keys, vec!["part/00000", "part/00001"]);
        // Far fewer class-A requests than scatter: 2 PUTs, not 4.
        assert_eq!(store.metrics().total().class_a, 2);
    }

    #[test]
    fn coalesced_empty_partition_reads_skip_the_request() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = Arc::new(ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            ExchangeStrategy::Coalesced,
        ));
        let ex2 = Arc::clone(&ex);
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex2.prepare(ctx, 1, 2).expect("prepare");
            ex2.write_partitions(ctx, &env, 0, vec![Bytes::from("xy"), Bytes::new()])
                .expect("write");
            let before = store.metrics().total().class_b;
            let data = ex2.read_partition(ctx, &env, 0, 1).expect("read empty");
            assert!(data.is_empty());
            assert_eq!(store.metrics().total().class_b, before, "no GET issued");
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn unwritten_coalesced_partition_is_missing() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            ExchangeStrategy::Coalesced,
        );
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex.prepare(ctx, 1, 1).expect("prepare");
            let err = ex.read_partition(ctx, &env, 0, 0).expect_err("missing");
            assert_eq!(err, ExchangeError::MissingPartition { map: 0, part: 0 });
        });
        sim.run().expect("sim ok");
    }

    #[test]
    fn list_names_the_intermediates() {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        store.create_bucket("data").expect("bucket");
        let ex = ObjectStoreExchange::new(
            Arc::clone(&store),
            "data",
            "part/",
            ExchangeStrategy::Scatter,
        );
        sim.spawn("driver", move |ctx| {
            let env = ExchangeEnv::driver("test", 3);
            ex.prepare(ctx, 1, 1).expect("prepare");
            ex.write_partitions(ctx, &env, 0, vec![Bytes::from("a")])
                .expect("write");
            let keys = ex.list(ctx, &env).expect("list");
            assert_eq!(keys, vec!["part/00000/00000"]);
        });
        sim.run().expect("sim ok");
    }
}
