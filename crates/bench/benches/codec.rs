//! Criterion micro-benchmarks of the compression kernels, whose measured
//! throughputs ground the simulator's `WorkModel` calibration.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use faaspipe_codec::{gzipish, huffman, range, rle, varint};
use faaspipe_methcomp::codec as mc;
use faaspipe_methcomp::synth::Synthesizer;

fn bed_text(records: usize) -> (faaspipe_methcomp::Dataset, String) {
    let ds = Synthesizer::new(77).generate_records(records);
    let text = ds.to_text();
    (ds, text)
}

fn bench_gzipish(c: &mut Criterion) {
    let (_, text) = bed_text(20_000);
    let packed = gzipish::compress(text.as_bytes());
    let mut g = c.benchmark_group("gzipish");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("compress_bed_1mb", |b| {
        b.iter(|| gzipish::compress(black_box(text.as_bytes())))
    });
    g.bench_function("decompress_bed_1mb", |b| {
        b.iter(|| gzipish::decompress(black_box(&packed)).expect("round trip"))
    });
    g.finish();
}

fn bench_methcomp(c: &mut Criterion) {
    let (ds, text) = bed_text(20_000);
    let packed = mc::compress(&ds);
    let mut g = c.benchmark_group("methcomp");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("compress_bed_1mb", |b| {
        b.iter(|| mc::compress(black_box(&ds)))
    });
    g.bench_function("decompress_bed_1mb", |b| {
        b.iter(|| mc::decompress(black_box(&packed)).expect("round trip"))
    });
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let freqs: Vec<u64> = (0..286u64)
        .map(|i| 1 + (i * 2_654_435_761) % 10_000)
        .collect();
    c.bench_function("huffman/build_lengths_286", |b| {
        b.iter(|| huffman::build_lengths(black_box(&freqs), 15))
    });
}

fn bench_range_coder(c: &mut Criterion) {
    let values: Vec<u64> = (0..10_000u64).map(|i| (i * 48_271) % 1_000).collect();
    let mut g = c.benchmark_group("range");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("uint_model_encode_10k", |b| {
        b.iter(|| {
            let mut enc = range::RangeEncoder::new();
            let mut m = range::UIntModel::new();
            for &v in &values {
                m.encode(&mut enc, black_box(v));
            }
            enc.finish()
        })
    });
    g.finish();
}

fn bench_varint(c: &mut Criterion) {
    let values: Vec<u64> = (0..10_000u64).map(|i| i * i).collect();
    c.bench_function("varint/write_read_10k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(values.len() * 5);
            for &v in &values {
                varint::write_u64(&mut buf, v);
            }
            let mut r = varint::VarintReader::new(&buf);
            let mut sum = 0u64;
            while !r.is_empty() {
                sum = sum.wrapping_add(r.u64().expect("valid"));
            }
            sum
        })
    });
}

fn bench_rle(c: &mut Criterion) {
    let data: Vec<u8> = (0..100_000).map(|i| (i / 1000) as u8).collect();
    c.bench_function("rle/compress_100k_runs", |b| {
        b.iter(|| rle::compress(black_box(&data)))
    });
}

criterion_group!(
    benches,
    bench_gzipish,
    bench_methcomp,
    bench_huffman,
    bench_range_coder,
    bench_varint,
    bench_rle
);
criterion_main!(benches);
