//! Criterion micro-benchmarks of the zero-copy shuffle kernels against
//! the decode-sort-encode path they replaced: wire-record sort +
//! partition, the streaming k-way merge, and the raw key scan.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use faaspipe_methcomp::synth::Synthesizer;
use faaspipe_methcomp::MethRecord;
use faaspipe_shuffle::{
    partition_sorted, scan_keys, sort_concat, streaming_merge, RangePartitioner, SortRecord,
};

const RECORDS: usize = 50_000;
const CHUNKS: usize = 8;
const PARTS: usize = 16;

fn meth_chunks(seed: u64) -> Vec<Bytes> {
    let ds = Synthesizer::new(seed).generate_shuffled(RECORDS);
    let per = RECORDS.div_ceil(CHUNKS);
    ds.records
        .chunks(per)
        .map(|c| Bytes::from(SortRecord::write_all(c)))
        .collect()
}

/// The pre-kernel mapper inner loop: decode every chunk, stable-sort the
/// records, re-encode partition by partition.
fn decode_sort_encode(
    chunks: &[Bytes],
    p: &RangePartitioner<<MethRecord as SortRecord>::Key>,
) -> Vec<Vec<u8>> {
    let mut records: Vec<MethRecord> = Vec::new();
    for chunk in chunks {
        records.append(&mut SortRecord::read_all(chunk).expect("decode"));
    }
    records.sort_by_key(SortRecord::key);
    let mut buckets: Vec<Vec<u8>> = (0..PARTS).map(|_| Vec::new()).collect();
    for r in &records {
        let part = p.part(&r.key()).min(PARTS - 1);
        r.write_to(&mut buckets[part]);
    }
    buckets
}

fn bench_wire_sort(c: &mut Criterion) {
    let chunks = meth_chunks(91);
    let total_bytes: usize = chunks.iter().map(Bytes::len).sum();
    let sample: Vec<_> = chunks[0]
        .chunks_exact(MethRecord::WIRE_SIZE)
        .step_by(11)
        .map(|w| MethRecord::key_from_wire(w).expect("valid"))
        .collect();
    let p = RangePartitioner::from_sample(sample, PARTS);

    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Bytes(total_bytes as u64));
    g.bench_function("partition_sorted_50k", |b| {
        b.iter(|| {
            partition_sorted::<MethRecord>(black_box(&chunks), PARTS, |k| p.part(k))
                .expect("kernel")
        })
    });
    g.bench_function("decode_sort_encode_50k", |b| {
        b.iter(|| decode_sort_encode(black_box(&chunks), &p))
    });
    g.bench_function("sort_concat_50k", |b| {
        b.iter(|| sort_concat::<MethRecord>(black_box(&chunks)).expect("kernel"))
    });
    g.bench_function("scan_keys_50k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for chunk in &chunks {
                scan_keys::<MethRecord>(black_box(chunk), |k| acc ^= k.1).expect("scan");
            }
            acc
        })
    });
    g.finish();
}

fn bench_streaming_merge(c: &mut Criterion) {
    // W pre-sorted runs, as a reducer gathers them from W mappers.
    let ds = Synthesizer::new(92).generate_shuffled(RECORDS);
    let per = RECORDS.div_ceil(PARTS);
    let runs: Vec<Bytes> = ds
        .records
        .chunks(per)
        .map(|c| {
            let mut sorted = c.to_vec();
            sorted.sort_by_key(SortRecord::key);
            Bytes::from(SortRecord::write_all(&sorted))
        })
        .collect();
    let total_bytes: usize = runs.iter().map(Bytes::len).sum();

    let mut g = c.benchmark_group("merge");
    g.throughput(Throughput::Bytes(total_bytes as u64));
    g.bench_function("streaming_16way_50k", |b| {
        b.iter(|| streaming_merge::<MethRecord>(black_box(&runs)).expect("merge"))
    });
    g.finish();
}

criterion_group!(benches, bench_wire_sort, bench_streaming_merge);
criterion_main!(benches);
