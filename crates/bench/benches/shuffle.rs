//! Criterion micro-benchmarks of the shuffle kernels: partitioning,
//! k-way merging (via the public sort path), record wire codecs, and the
//! autotuner's analytic model.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use faaspipe_methcomp::synth::Synthesizer;
use faaspipe_methcomp::MethRecord;
use faaspipe_shuffle::{RangePartitioner, SortRecord, TuningModel};

fn bench_partitioner(c: &mut Criterion) {
    let keys: Vec<u64> = (0..100_000u64)
        .map(|i| (i * 2_654_435_761) % 1_000_000)
        .collect();
    c.bench_function("partitioner/from_sample_100k_x64", |b| {
        b.iter(|| RangePartitioner::from_sample(black_box(keys.clone()), 64))
    });
    let p = RangePartitioner::from_sample(keys.clone(), 64);
    let mut g = c.benchmark_group("partitioner");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("route_100k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &keys {
                acc += p.part(black_box(k));
            }
            acc
        })
    });
    g.finish();
}

fn bench_record_wire(c: &mut Criterion) {
    let ds = Synthesizer::new(88).generate_records(50_000);
    let bytes = SortRecord::write_all(&ds.records);
    let mut g = c.benchmark_group("record");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("write_all_50k", |b| {
        b.iter(|| <MethRecord as SortRecord>::write_all(black_box(&ds.records)))
    });
    g.bench_function("read_all_50k", |b| {
        b.iter(|| <MethRecord as SortRecord>::read_all(black_box(&bytes)).expect("decode"))
    });
    g.finish();
}

fn bench_tuning_model(c: &mut Criterion) {
    let model = TuningModel {
        data_bytes: 3.5e9,
        input_chunks: 8,
        request_latency_s: 0.028,
        conn_bw: 95.0 * 1024.0 * 1024.0,
        agg_bw: 25e9,
        ops_per_sec: 3_000.0,
        startup_s: 0.52,
        cpu_share: 1.0,
        sort_bps: 1e8,
        merge_bps: 1.8e8,
        max_workers: 256,
    };
    c.bench_function("autotune/best_workers_256", |b| {
        b.iter(|| black_box(&model).best_workers())
    });
}

criterion_group!(
    benches,
    bench_partitioner,
    bench_record_wire,
    bench_tuning_model
);
criterion_main!(benches);
