//! Tracing overhead on the Table-1 pipeline: no-op sink vs recording.
//!
//! Guards the zero-cost-when-disabled claim — the `disabled` series must
//! stay within a few percent of the pre-tracing baseline, and `recording`
//! shows what full span/counter capture costs.

use criterion::{criterion_group, criterion_main, Criterion};

use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

fn quick_config(mode: PipelineMode, trace: bool) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = mode;
    cfg.physical_records = 20_000;
    // Match benches/table1.rs so `disabled` is directly comparable to
    // the pre-tracing baseline.
    cfg.verify = false;
    cfg.trace = trace;
    cfg
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    for mode in [PipelineMode::PureServerless, PipelineMode::VmHybrid] {
        let tag = match mode {
            PipelineMode::PureServerless => "serverless",
            PipelineMode::VmHybrid => "hybrid",
        };
        g.bench_function(&format!("{}/disabled", tag), |b| {
            b.iter(|| run_methcomp_pipeline(&quick_config(mode, false)).expect("pipeline runs"))
        });
        g.bench_function(&format!("{}/recording", tag), |b| {
            b.iter(|| run_methcomp_pipeline(&quick_config(mode, true)).expect("pipeline runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
