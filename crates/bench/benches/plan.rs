//! Planner hot-path cost: single model evaluation and the full
//! (W, K, backend, shards) search enumeration.
//!
//! The planner runs inline inside `Executor::plan_stage` before the
//! shuffle stage starts, so its cost must be negligible next to even a
//! quick simulated run — a full search should stay well under a
//! millisecond.

use criterion::{criterion_group, criterion_main, Criterion};

use faaspipe_plan::{Candidate, ModelParams, Planner, Workload};
use faaspipe_shuffle::ExchangeKind;

fn table1_workload() -> Workload {
    // 3.5 GB modeled input split into 8 chunks, as in the Table-1 run.
    Workload {
        data_bytes: 3_500_000_000.0,
        input_chunks: 8,
        sample_read_bytes: 65_536.0,
        encode_workers: 8,
    }
}

fn bench_plan(c: &mut Criterion) {
    let params = ModelParams::default();
    let wl = table1_workload();

    c.bench_function("model_estimate", |b| {
        let cand = Candidate {
            workers: 32,
            io_concurrency: 4,
            exchange: ExchangeKind::Scatter,
        };
        b.iter(|| params.estimate(&wl, &cand))
    });

    c.bench_function("planner_full_search", |b| {
        let planner = Planner::new(params.clone());
        b.iter(|| planner.plan(&wl))
    });
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
