//! Criterion micro-benchmarks of the simulation kernel: event queue
//! throughput, process churn, and fluid-flow rate recomputation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use faaspipe_des::events::{EventQueue, Wake};
use faaspipe_des::flow::{FlowNet, FlowSpec};
use faaspipe_des::{Bandwidth, ByteSize, Sim, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(
                    SimTime::from_nanos((i * 48_271) % 1_000_000),
                    Wake::Process((i % 64) as u32),
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_process_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("spawn_sleep_join_200", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            for i in 0..200u64 {
                sim.spawn(format!("p{}", i), move |ctx| {
                    ctx.sleep(SimDuration::from_millis(i));
                });
            }
            sim.run().expect("sim ok")
        })
    });
    g.finish();
}

fn bench_flow_recompute(c: &mut Criterion) {
    // 64 NIC-limited flows over one backbone; starting each flow triggers
    // a max-min recomputation over all active flows.
    c.bench_function("flow/start_64_shared_backbone", |b| {
        b.iter(|| {
            let mut net = FlowNet::new();
            let backbone = net.add_link(Bandwidth::mib_per_sec(10_000.0));
            for i in 0..64u32 {
                let nic = net.add_link(Bandwidth::mib_per_sec(100.0));
                net.start(
                    SimTime::ZERO,
                    FlowSpec {
                        bytes: ByteSize::mib(64),
                        links: vec![nic, backbone],
                    },
                    i,
                );
            }
            black_box(net.next_completion(SimTime::ZERO))
        })
    });
}

/// Sustained churn at high concurrency: `n` NIC-limited flows over one
/// shared backbone, then a scheduler-style drain loop (advance to the
/// next completion, tick, repeat) that retires every flow. Each start
/// and each tick triggers a rate recompute with ~n flows active, so
/// this is the stress case the incremental flow network must keep
/// proportional to *what changed* — before the rewrite its cost grew
/// with the full active set per event.
fn flow_stress(n: u32) {
    let mut net = FlowNet::new();
    let backbone = net.add_link(Bandwidth::mib_per_sec(10_000.0));
    let mut now = SimTime::ZERO;
    for i in 0..n {
        let nic = net.add_link(Bandwidth::mib_per_sec(100.0));
        // Staggered sizes so completions spread out instead of
        // coalescing into one tick.
        net.start(
            now,
            FlowSpec {
                bytes: ByteSize::kib(64 + (i as u64 % 97) * 16),
                links: vec![nic, backbone],
            },
            i,
        );
    }
    let mut woken = Vec::new();
    while let Some(t) = net.next_completion(now) {
        now = t;
        net.tick(now, &mut woken);
    }
    assert_eq!(net.active_flows(), 0);
}

fn bench_flow_stress(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_stress");
    g.sample_size(10);
    for n in [1_000u32, 10_000] {
        g.throughput(Throughput::Elements(n as u64));
        let name = format!("start_drain_{}_concurrent", n);
        g.bench_function(&name, |b| b.iter(|| flow_stress(black_box(n))));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_process_churn,
    bench_flow_recompute,
    bench_flow_stress
);
criterion_main!(benches);
