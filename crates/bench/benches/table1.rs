//! End-to-end Criterion bench of the Table-1 pipeline runs (small
//! physical dataset, full modelled scale): how long the *simulator*
//! takes to reproduce each configuration.

use criterion::{criterion_group, criterion_main, Criterion};

use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for (name, mode) in [
        ("pure_serverless", PipelineMode::PureServerless),
        ("vm_hybrid", PipelineMode::VmHybrid),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = PipelineConfig::paper_table1();
                cfg.mode = mode;
                cfg.physical_records = 20_000;
                cfg.verify = false;
                run_methcomp_pipeline(&cfg).expect("pipeline run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
