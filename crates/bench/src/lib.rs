//! # faaspipe-bench — experiment harness
//!
//! One binary per paper artifact / claim (see `DESIGN.md` §6 for the
//! experiment index), plus Criterion micro-benchmarks of the kernels.
//!
//! | binary | experiment |
//! |--------|-----------|
//! | `repro_table1` | E1 — Table 1 (latency & cost, both configurations) |
//! | `repro_figure1` | E2 — Figure 1 (per-stage timeline of both architectures) |
//! | `repro_worker_sweep` | E3 — "appropriate number of functions" sweep + autotuner |
//! | `repro_compression` | E4 — METHCOMP vs gzip-class compression ratio |
//! | `repro_aggregate_bw` | E5 — aggregate object-storage bandwidth vs #functions |
//! | `repro_cost_breakdown` | E6 — §2.4 per-stage cost display |
//! | `repro_scaling` | E7 — input-size scaling (ablation) |
//! | `repro_ops_sensitivity` | E8 — ops/s throttle sensitivity (ablation) |
//! | `repro_cold_warm` | E9 — cold vs pre-warmed containers (ablation) |
//! | `repro_exchange` | E10 — coalesced vs scatter all-to-all exchange (ablation) |
//! | `repro_memory` | E12 — function memory sizing (ablation) |
//! | `repro_codec_pipeline` | E13 — codec choice at pipeline level (ablation) |
//! | `repro_exchange_backends` | E15 — exchange backends: object storage vs VM relay vs direct |
//! | `repro_relay_sharding` | E16 — sharded relay fleet: W × shards frontier, cold vs pre-warmed |
//! | `repro_io_concurrency` | E17 — intra-function parallel I/O: makespan vs the per-function I/O window |
//! | `repro_cluster_contention` | E18 — multi-tenant cluster: offered-load → goodput knee, noisy neighbor vs admission |
//! | `repro_autotuner` | E19 — calibrated cost model vs simulated ground truth; `--exchange auto` planner regret |
//! | `bench_sim_wallclock` | BENCH_sim — host wall-clock cost of the simulator itself (non-gating) |
//!
//! Every binary prints a human-readable table and writes the raw rows as
//! JSON under `results/` (created on demand) so EXPERIMENTS.md can cite
//! them.

use std::path::PathBuf;

use faaspipe_json::ToJson;

/// Returns the directory experiment outputs are archived in, creating it
/// if needed. Respects `FAASPIPE_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FAASPIPE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Archives `rows` as pretty JSON under `results/<name>.json`.
pub fn write_json<T: ToJson + ?Sized>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{}.json", name));
    let json = faaspipe_json::to_string_pretty(rows);
    std::fs::write(&path, json).expect("write results file");
    eprintln!("wrote {}", path.display());
}

/// The paper's published Table 1, for side-by-side display.
pub const PAPER_TABLE1: [(&str, f64, f64); 2] = [
    ("\"Purely\" serverless", 83.32, 0.008),
    ("VM-supported", 142.77, 0.010),
];

/// Physical record count used by the full-scale reproduction runs
/// (models the 3.5 GB input; see `PipelineConfig::size_scale`).
pub const REPRO_RECORDS: usize = 150_000;

/// Smaller record count for sweeps that run many configurations.
pub const SWEEP_RECORDS: usize = 60_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        std::env::set_var("FAASPIPE_RESULTS_DIR", "/tmp/faaspipe-test-results");
        let dir = results_dir();
        assert!(dir.exists());
        write_json("unit_test", &vec![1, 2, 3]);
        let back = std::fs::read_to_string(dir.join("unit_test.json")).expect("read");
        assert!(back.contains('2'));
        std::env::remove_var("FAASPIPE_RESULTS_DIR");
    }

    #[test]
    fn paper_constants_match_publication() {
        assert_eq!(PAPER_TABLE1[0].1, 83.32);
        assert_eq!(PAPER_TABLE1[1].1, 142.77);
    }
}
