//! E5 — The "huge aggregated bandwidth" claim (paper §1): serverless
//! functions collectively extract far more throughput from object
//! storage than any single consumer, because each connection is capped
//! but the backbone is wide.
//!
//! Measures achieved aggregate GET throughput vs the number of
//! concurrent functions, and the single-connection VM equivalent. The
//! store's traced counters (`store.bandwidth_in_use`,
//! `store.inflight_flows`) for the widest fan-out are dumped as CSV to
//! `results/aggregate_bw_counters.csv`.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_aggregate_bw
//! ```

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe_bench::{results_dir, write_json};
use faaspipe_core::executor::Services;
use faaspipe_des::{Sim, SimTime};
use faaspipe_faas::{FaasConfig, FunctionPlatform};
use faaspipe_store::{ObjectStore, StoreConfig};
use faaspipe_trace::{counters_csv, TraceData, TraceSink};
use faaspipe_vm::VmFleet;

struct Row {
    consumers: usize,
    kind: String,
    aggregate_mib_s: f64,
}

faaspipe_json::json_object! { Row { req consumers, req kind, req aggregate_mib_s } }

/// Modelled object size each consumer downloads.
const OBJECT_MIB: usize = 256;

fn setup(consumers: usize) -> (Sim, Services) {
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    store.create_bucket("data").expect("bucket");
    for i in 0..consumers {
        store
            .put_untimed(
                "data",
                &format!("blob/{:04}", i),
                Bytes::from(vec![0u8; OBJECT_MIB << 20]),
            )
            .expect("stage blob");
    }
    (
        sim,
        Services {
            store,
            faas,
            fleet: VmFleet::new(),
        },
    )
}

fn functions_aggregate(consumers: usize) -> (f64, TraceData) {
    let (mut sim, services) = setup(consumers);
    let sink = TraceSink::recording();
    services.store.set_trace_sink(sink.clone());
    services.faas.set_trace_sink(sink.clone());
    let span: Arc<Mutex<(SimTime, SimTime)>> = Arc::new(Mutex::new((SimTime::MAX, SimTime::ZERO)));
    let faas = services.faas.clone();
    let store = services.store.clone();
    let span2 = Arc::clone(&span);
    sim.spawn("driver", move |ctx| {
        let hs: Vec<_> = (0..consumers)
            .map(|i| {
                let store = store.clone();
                let span = Arc::clone(&span2);
                faas.invoke_async(ctx, "reader", format!("bw/{}", i), move |fctx, env| {
                    let client = store.connect_via(fctx, "bw", &[env.nic]);
                    let t0 = fctx.now();
                    client
                        .get(fctx, "data", &format!("blob/{:04}", i))
                        .expect("blob read");
                    let t1 = fctx.now();
                    let mut s = span.lock();
                    s.0 = s.0.min(t0);
                    s.1 = s.1.max(t1);
                })
            })
            .collect();
        ctx.join_all(&hs).expect("readers ok");
    });
    sim.run().expect("sim ok");
    let (t0, t1) = *span.lock();
    let secs = t1.saturating_duration_since(t0).as_secs_f64();
    ((consumers * OBJECT_MIB) as f64 / secs, sink.snapshot())
}

fn vm_single_connection(consumers: usize) -> f64 {
    // The same total bytes pulled by one VM over one connection.
    let (mut sim, services) = setup(consumers);
    let span: Arc<Mutex<(SimTime, SimTime)>> = Arc::new(Mutex::new((SimTime::MAX, SimTime::ZERO)));
    let fleet = services.fleet.clone();
    let store = services.store.clone();
    let span2 = Arc::clone(&span);
    sim.spawn("driver", move |ctx| {
        let vm = fleet.provision(ctx, faaspipe_vm::VmProfile::bx2_8x32());
        let client = store.connect_via(ctx, "vm-bw", &[vm.nic]);
        let t0 = ctx.now();
        for i in 0..consumers {
            client
                .get(ctx, "data", &format!("blob/{:04}", i))
                .expect("blob read");
        }
        let t1 = ctx.now();
        *span2.lock() = (t0, t1);
        fleet.release(ctx, vm);
    });
    sim.run().expect("sim ok");
    let (t0, t1) = *span.lock();
    let secs = t1.saturating_duration_since(t0).as_secs_f64();
    (consumers * OBJECT_MIB) as f64 / secs
}

fn main() {
    let mut rows = Vec::new();
    println!("consumers  functions-aggregate(MiB/s)   vm-single-conn(MiB/s)");
    let mut last_fn = 0.0;
    let mut widest_trace = TraceData::default();
    for &n in &[1usize, 2, 4, 8, 16, 32, 64] {
        let (fn_bw, trace) = functions_aggregate(n);
        widest_trace = trace;
        let vm_bw = vm_single_connection(n);
        println!("{:>9}  {:>26.0}   {:>21.0}", n, fn_bw, vm_bw);
        rows.push(Row {
            consumers: n,
            kind: "functions".into(),
            aggregate_mib_s: fn_bw,
        });
        rows.push(Row {
            consumers: n,
            kind: "vm-single-connection".into(),
            aggregate_mib_s: vm_bw,
        });
        last_fn = fn_bw;
    }
    let one = rows
        .iter()
        .find(|r| r.consumers == 1 && r.kind == "functions")
        .expect("n=1 row")
        .aggregate_mib_s;
    println!(
        "aggregate scales {:.1}x from 1 to 64 functions; a VM stays flat at its \
         single-connection cap",
        last_fn / one
    );
    assert!(
        last_fn > one * 8.0,
        "aggregated bandwidth must grow with parallelism: {:.0} -> {:.0}",
        one,
        last_fn
    );
    let peak_bw = widest_trace
        .counter("store.bandwidth_in_use")
        .map(|c| c.points.iter().map(|&(_, v)| v).fold(0.0, f64::max))
        .unwrap_or(0.0);
    let peak_flows = widest_trace
        .counter("store.inflight_flows")
        .map(|c| c.points.iter().map(|&(_, v)| v).fold(0.0, f64::max))
        .unwrap_or(0.0);
    println!(
        "traced peak at 64 functions: {:.0} MiB/s in use across {:.0} concurrent flows",
        peak_bw / (1024.0 * 1024.0),
        peak_flows
    );
    assert!(peak_flows >= 32.0, "wide fan-out must overlap flows");
    let csv_path = results_dir().join("aggregate_bw_counters.csv");
    std::fs::write(&csv_path, counters_csv(&widest_trace)).expect("write counters csv");
    eprintln!("wrote {}", csv_path.display());
    write_json("aggregate_bw", &rows);
}
