//! E7 (ablation) — input-size scaling: how the two architectures'
//! latencies evolve from 0.5 GB to 8 GB, and where (if anywhere) the VM
//! pipeline catches up.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_scaling
//! ```

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

struct Row {
    modeled_gb: f64,
    configuration: String,
    latency_s: f64,
    cost_dollars: f64,
}

faaspipe_json::json_object! { Row { req modeled_gb, req configuration, req latency_s, req cost_dollars } }

fn main() {
    let sizes_gb = [0.5f64, 1.0, 2.0, 3.5, 5.0, 8.0];
    let mut rows = Vec::new();
    println!("size(GB)  serverless(s)  vm(s)   serverless($)  vm($)");
    for &gb in &sizes_gb {
        let mut line = (0.0, 0.0, 0.0, 0.0);
        for mode in [PipelineMode::PureServerless, PipelineMode::VmHybrid] {
            let mut cfg = PipelineConfig::paper_table1();
            cfg.mode = mode;
            cfg.modeled_bytes = (gb * 1e9) as u64;
            cfg.physical_records = SWEEP_RECORDS;
            let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
            let (l, c) = (
                outcome.latency.as_secs_f64(),
                outcome.cost.total().as_dollars(),
            );
            rows.push(Row {
                modeled_gb: gb,
                configuration: mode.to_string(),
                latency_s: l,
                cost_dollars: c,
            });
            match mode {
                PipelineMode::PureServerless => {
                    line.0 = l;
                    line.2 = c;
                }
                PipelineMode::VmHybrid => {
                    line.1 = l;
                    line.3 = c;
                }
            }
        }
        println!(
            "{:>8.1}  {:>13.2}  {:>6.2}  {:>13.4}  {:>6.4}",
            gb, line.0, line.1, line.2, line.3
        );
    }
    // Shape: serverless wins at every size here (the VM's provisioning
    // and single connection dominate), and the absolute gap grows with
    // data size while the *relative* gap shrinks (fixed 44 s boot
    // amortizes).
    for gb in sizes_gb {
        let s = rows
            .iter()
            .find(|r| r.modeled_gb == gb && r.configuration.contains("serverless"))
            .expect("serverless row");
        let v = rows
            .iter()
            .find(|r| r.modeled_gb == gb && r.configuration.contains("VM"))
            .expect("vm row");
        assert!(
            s.latency_s < v.latency_s,
            "at {} GB: {} vs {}",
            gb,
            s.latency_s,
            v.latency_s
        );
    }
    write_json("scaling", &rows);
}
